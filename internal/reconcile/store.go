package reconcile

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The store persists desired state as a JSONL snapshot plus an fsync'd
// append log:
//
//	state.snap  — header line {"format":1,"version":N}, then one Entry
//	              per line (the state at the last compaction)
//	state.log   — one logRecord per line, replayed over the snapshot
//
// Every log append is synced before returning, so a crash loses at most
// the write in flight. Compaction writes state.snap.tmp, syncs, renames
// over state.snap, then truncates the log; a crash between rename and
// truncate merely replays already-folded ops, which is idempotent.
// Loading is corruption-tolerant: an invalid or truncated trailing line
// (the torn write of the crash that killed the previous daemon) is
// skipped with a logged warning, and the last valid state wins — a
// corrupt state file must degrade warm restart, never prevent startup.

// Snapshot and log file names inside the state FS.
const (
	SnapshotFile = "state.snap"
	LogFile      = "state.log"
	tmpFile      = "state.snap.tmp"
	// PolicyFile holds the last-good policy configuration, persisted
	// alongside the desired state so a canary rollback survives a crash
	// (see internal/guard's canary controller).
	PolicyFile    = "policy-lastgood.json"
	policyTmpFile = PolicyFile + ".tmp"
	// EpochFile holds the highest fleet fencing epoch this agent has
	// observed, so fencing against deposed coordinators survives agent
	// restarts (see internal/fleet's EpochGate).
	EpochFile    = "fleet-epoch.json"
	epochTmpFile = EpochFile + ".tmp"
)

// storeFormat is the on-disk format version in the snapshot header.
const storeFormat = 1

// File is a writable, syncable handle from an FS.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem slice the store needs — injectable so tests
// exercise fsync ordering, crash truncation, and corruption without
// touching a real disk.
type FS interface {
	// ReadFile returns a file's full contents; a missing file returns an
	// error satisfying os.IsNotExist / errors.Is(err, fs.ErrNotExist).
	ReadFile(name string) ([]byte, error)
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	// Append opens a file for appending, creating it if needed.
	Append(name string) (File, error)
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
}

// --- real filesystem ---

// OSFS is an FS rooted at a directory on the host filesystem.
type OSFS struct {
	Dir string
}

var _ FS = OSFS{}

// NewOSFS creates the directory (if needed) and returns an FS rooted
// there.
func NewOSFS(dir string) (OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return OSFS{}, fmt.Errorf("state dir: %w", err)
	}
	return OSFS{Dir: dir}, nil
}

func (f OSFS) path(name string) string { return filepath.Join(f.Dir, name) }

// ReadFile implements FS.
func (f OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(f.path(name)) }

// Create implements FS.
func (f OSFS) Create(name string) (File, error) { return os.Create(f.path(name)) }

// Append implements FS.
func (f OSFS) Append(name string) (File, error) {
	return os.OpenFile(f.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Rename implements FS.
func (f OSFS) Rename(oldname, newname string) error {
	return os.Rename(f.path(oldname), f.path(newname))
}

// --- in-memory filesystem (tests) ---

// MemFS is an in-memory FS for tests and simulation. Files are plain
// byte slices that tests may inspect or corrupt directly. Syncs counts
// fsync calls so durability ordering is assertable, and each file
// tracks how many of its bytes have been synced so a simulated crash
// (DropUnsynced) can model the kernel page cache: reads see every
// write immediately, but only fsynced bytes survive power loss.
type MemFS struct {
	mu     sync.Mutex
	files  map[string][]byte
	synced map[string]int
	Syncs  int
}

var _ FS = (*MemFS)(nil)

// NewMemFS returns an empty in-memory FS.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte), synced: make(map[string]int)}
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	m.files[name] = nil
	m.synced[name] = 0
	m.mu.Unlock()
	return &memFile{fs: m, name: name}, nil
}

// Append implements FS.
func (m *MemFS) Append(name string) (File, error) {
	m.mu.Lock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = nil
	}
	m.mu.Unlock()
	return &memFile{fs: m, name: name}, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	m.files[newname] = b
	m.synced[newname] = m.synced[oldname]
	delete(m.files, oldname)
	delete(m.synced, oldname)
	return nil
}

// DropUnsynced simulates a crash: every file is truncated to its last
// fsynced length, and files that were never synced vanish — exactly
// what an OS page cache loses on power failure. A writer following the
// write→fsync→rename discipline (both persistent stores do) loses
// nothing; one that skips the fsync loses its tail, which is the bug
// this hook exists to surface.
func (m *MemFS) DropUnsynced() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, b := range m.files {
		n := m.synced[name]
		if n <= 0 {
			delete(m.files, name)
			delete(m.synced, name)
			continue
		}
		if n < len(b) {
			m.files[name] = b[:n]
			m.synced[name] = n
		}
	}
}

// SetFile overwrites a file's raw contents — the corruption-injection
// hook for tests. The injected bytes count as durable.
func (m *MemFS) SetFile(name string, b []byte) {
	m.mu.Lock()
	m.files[name] = append([]byte(nil), b...)
	m.synced[name] = len(b)
	m.mu.Unlock()
}

// FileBytes returns a copy of a file's raw contents ("" when absent).
func (m *MemFS) FileBytes(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.files[name]...)
}

type memFile struct {
	fs   *MemFS
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	f.fs.mu.Unlock()
	return len(p), nil
}
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.Syncs++
	f.fs.synced[f.name] = len(f.fs.files[f.name])
	f.fs.mu.Unlock()
	return nil
}
func (f *memFile) Close() error { return nil }

// --- log records ---

// Log operation kinds.
const (
	opSet = "set"
	opDel = "del"
)

// logRecord is one line of state.log.
type logRecord struct {
	Op    string `json:"op"`
	Entry *Entry `json:"entry,omitempty"` // set
	Key   string `json:"key,omitempty"`   // del
	// Version stamps del records (set records carry it in the entry).
	Version int64 `json:"version,omitempty"`
}

// snapHeader is the first line of state.snap.
type snapHeader struct {
	Format  int   `json:"format"`
	Version int64 `json:"version"`
}

// --- store ---

// Store persists a DesiredState through an FS. Not safe for concurrent
// use on its own — DesiredState serializes access.
type Store struct {
	fs     FS
	warnf  func(format string, args ...any)
	log    File
	logOps int
}

// NewStore creates a store over fs. warnf receives corruption warnings
// during Load (nil discards them).
func NewStore(fs FS, warnf func(format string, args ...any)) *Store {
	if warnf == nil {
		warnf = func(string, ...any) {}
	}
	return &Store{fs: fs, warnf: warnf}
}

// Load reads the snapshot and replays the log, tolerating corrupt lines.
// It returns the reconstructed entries and the highest version seen.
func (s *Store) Load() (map[string]Entry, int64, error) {
	entries := make(map[string]Entry)
	var version int64

	if raw, err := s.fs.ReadFile(SnapshotFile); err == nil {
		version = s.loadSnapshot(raw, entries)
	} else if !os.IsNotExist(err) {
		return nil, 0, fmt.Errorf("read snapshot: %w", err)
	}

	s.logOps = 0
	if raw, err := s.fs.ReadFile(LogFile); err == nil {
		if v := s.replayLog(raw, entries); v > version {
			version = v
		}
	} else if !os.IsNotExist(err) {
		return nil, 0, fmt.Errorf("read log: %w", err)
	}

	for _, e := range entries {
		if e.Version > version {
			version = e.Version
		}
	}
	return entries, version, nil
}

// loadSnapshot parses snapshot lines into entries, returning the header
// version (0 if the header is unreadable).
func (s *Store) loadSnapshot(raw []byte, entries map[string]Entry) int64 {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var version int64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 {
			var h snapHeader
			if err := json.Unmarshal([]byte(text), &h); err != nil || h.Format != storeFormat {
				// Salvage what we can: the entry lines that follow are
				// individually parseable; only the recorded version is lost
				// (it re-derives from the entries' own version stamps).
				s.warnf("reconcile: snapshot header invalid (line 1), salvaging entries: %.80s", text)
				continue
			}
			version = h.Version
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(text), &e); err != nil || e.Kind == "" {
			s.warnf("reconcile: skipping corrupt snapshot line %d: %.80s", line, text)
			continue
		}
		entries[e.Key()] = e
	}
	return version
}

// replayLog applies log records over entries, returning the highest
// version seen in the log.
func (s *Store) replayLog(raw []byte, entries map[string]Entry) int64 {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var version int64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec logRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			s.warnf("reconcile: skipping corrupt log line %d: %.80s", line, text)
			continue
		}
		switch rec.Op {
		case opSet:
			if rec.Entry == nil || rec.Entry.Kind == "" {
				s.warnf("reconcile: skipping malformed set record at log line %d", line)
				continue
			}
			entries[rec.Entry.Key()] = *rec.Entry
			if rec.Entry.Version > version {
				version = rec.Entry.Version
			}
		case opDel:
			delete(entries, rec.Key)
			if rec.Version > version {
				version = rec.Version
			}
		default:
			s.warnf("reconcile: skipping unknown op %q at log line %d", rec.Op, line)
			continue
		}
		s.logOps++
	}
	return version
}

// AppendLog durably appends one record to the log.
func (s *Store) AppendLog(rec logRecord) error {
	if s.log == nil {
		f, err := s.fs.Append(LogFile)
		if err != nil {
			return fmt.Errorf("open log: %w", err)
		}
		s.log = f
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := s.log.Write(b); err != nil {
		return fmt.Errorf("append log: %w", err)
	}
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("sync log: %w", err)
	}
	s.logOps++
	return nil
}

// LogOps returns the number of log records since the last compaction.
func (s *Store) LogOps() int { return s.logOps }

// Compact folds entries into a fresh snapshot (written to a temp file,
// synced, renamed into place) and truncates the log.
func (s *Store) Compact(entries map[string]Entry, version int64) error {
	f, err := s.fs.Create(tmpFile)
	if err != nil {
		return fmt.Errorf("create snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	if err := enc.Encode(snapHeader{Format: storeFormat, Version: version}); err != nil {
		f.Close()
		return err
	}
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := enc.Encode(entries[k]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(tmpFile, SnapshotFile); err != nil {
		return fmt.Errorf("install snapshot: %w", err)
	}
	// Truncate the log: everything it held is now in the snapshot.
	if s.log != nil {
		_ = s.log.Close()
		s.log = nil
	}
	lf, err := s.fs.Create(LogFile)
	if err != nil {
		return fmt.Errorf("truncate log: %w", err)
	}
	if err := lf.Sync(); err != nil {
		lf.Close()
		return err
	}
	if err := lf.Close(); err != nil {
		return err
	}
	s.logOps = 0
	return nil
}

// SaveLastGoodPolicy atomically persists the last-good policy config
// (written to a temp file, synced, renamed into place) alongside the
// desired-state snapshot. It implements the canary controller's
// PolicyStore so a rollback survives a crash: a restarting daemon loads
// the config that was last promoted, never a half-rolled-out candidate.
func (s *Store) SaveLastGoodPolicy(config []byte) error {
	f, err := s.fs.Create(policyTmpFile)
	if err != nil {
		return fmt.Errorf("create policy file: %w", err)
	}
	if _, err := f.Write(config); err != nil {
		f.Close()
		return fmt.Errorf("write policy file: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sync policy file: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(policyTmpFile, PolicyFile); err != nil {
		return fmt.Errorf("install policy file: %w", err)
	}
	return nil
}

// LoadLastGoodPolicy reads the persisted last-good policy config. A
// missing file is not an error: ok is false and the caller falls back to
// its static configuration.
func (s *Store) LoadLastGoodPolicy() ([]byte, bool, error) {
	raw, err := s.fs.ReadFile(PolicyFile)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("read policy file: %w", err)
	}
	return raw, true, nil
}

// SaveFleetEpoch atomically persists the highest fleet fencing epoch
// this agent has observed (same temp-write/sync/rename ritual as the
// policy file). It implements the fleet EpochGate's EpochStore, so a
// restarted agent still rejects a deposed coordinator's stale pushes.
func (s *Store) SaveFleetEpoch(epoch int64) error {
	f, err := s.fs.Create(epochTmpFile)
	if err != nil {
		return fmt.Errorf("create epoch file: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", epoch); err != nil {
		f.Close()
		return fmt.Errorf("write epoch file: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sync epoch file: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(epochTmpFile, EpochFile); err != nil {
		return fmt.Errorf("install epoch file: %w", err)
	}
	return nil
}

// LoadFleetEpoch reads the persisted fleet fencing epoch. A missing or
// unparsable file is not an error: ok is false and fencing starts from
// epoch 0 (degrades open — a damaged file must never lock a node out of
// accepting policy).
func (s *Store) LoadFleetEpoch() (int64, bool, error) {
	raw, err := s.fs.ReadFile(EpochFile)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("read epoch file: %w", err)
	}
	e, perr := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
	if perr != nil || e < 0 {
		return 0, false, nil
	}
	return e, true, nil
}

// Close releases the append handle (the files themselves need no
// shutdown ritual — every append was already synced).
func (s *Store) Close() error {
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}
