// Command lachesisd runs the Lachesis middleware against a real Linux
// host: it periodically enforces user-defined priorities on the threads of
// running stream processing queries through nice and cgroup cpu.shares,
// exactly as the simulated experiments do through internal/simctl.
//
// The daemon reads a JSON config describing the deployed entities
// (operator name -> thread id, per the SPE's monitoring API) and a static
// priority assignment per logical operator (the §5.1 "high-level policy" +
// transformation rule path). It defaults to -dry-run, printing the control
// operations it would perform.
//
// Example config:
//
//	{
//	  "periodMillis": 1000,
//	  "cgroupRoot": "/sys/fs/cgroup/cpu/lachesis",
//	  "cgroupVersion": 1,
//	  "translator": "nice",
//	  "entities": [
//	    {"name": "q.count.0", "query": "q", "tid": 4242, "logical": ["count"]},
//	    {"name": "q.toll.0",  "query": "q", "tid": 4243, "logical": ["toll"]}
//	  ],
//	  "priorities": {"count": 10, "toll": 1}
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/oslinux"
)

// entityConfig is one physical operator in the config file.
type entityConfig struct {
	Name       string   `json:"name"`
	Query      string   `json:"query"`
	TID        int      `json:"tid"`
	Logical    []string `json:"logical"`
	Downstream []string `json:"downstream"`
}

// daemonConfig is the lachesisd config file format.
type daemonConfig struct {
	PeriodMillis  int                `json:"periodMillis"`
	CgroupRoot    string             `json:"cgroupRoot"`
	CgroupVersion int                `json:"cgroupVersion"`
	Translator    string             `json:"translator"`
	Entities      []entityConfig     `json:"entities"`
	Priorities    map[string]float64 `json:"priorities"`
}

// staticDriver exposes the configured entities; it provides no metrics
// (the static policy needs none).
type staticDriver struct {
	entities []core.Entity
}

var _ core.Driver = (*staticDriver)(nil)

func (d *staticDriver) Name() string            { return "static" }
func (d *staticDriver) Entities() []core.Entity { return d.entities }
func (d *staticDriver) Provides(string) bool    { return false }
func (d *staticDriver) Fetch(metric string, _ time.Duration) (core.EntityValues, error) {
	return nil, &core.UnknownMetricError{Metric: metric, Driver: "static"}
}

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, sigs); err != nil {
		fmt.Fprintln(os.Stderr, "lachesisd:", err)
		os.Exit(1)
	}
}

// run is the daemon body. sigs delivers shutdown signals (injectable so
// tests can exercise the graceful-shutdown path); nil never fires.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) error {
	fs := flag.NewFlagSet("lachesisd", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "path to JSON config (required)")
		dryRun     = fs.Bool("dry-run", true, "print control operations instead of performing them")
		iterations = fs.Int("iterations", 1, "scheduling iterations to run (0 = forever)")
		introspect = fs.String("introspect", "", "serve /metrics, /health and /debug/audit on this address (e.g. :9090)")
		auditPath  = fs.String("audit", "", "append the decision-audit trail as JSONL to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		fs.Usage()
		return fmt.Errorf("missing -config")
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}
	var cfg daemonConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fmt.Errorf("parse config: %w", err)
	}
	if cfg.PeriodMillis <= 0 {
		cfg.PeriodMillis = 1000
	}
	if cfg.CgroupRoot == "" {
		cfg.CgroupRoot = "/sys/fs/cgroup/cpu/lachesis"
	}

	osCfg := oslinux.Config{
		Root:    cfg.CgroupRoot,
		Version: oslinux.CgroupVersion(cfg.CgroupVersion),
	}
	if *dryRun {
		osCfg.System = oslinux.DryRunSystem{W: stdout}
	}
	ctl, err := oslinux.New(osCfg)
	if err != nil {
		return err
	}

	// The audit trail is always on (it backs /debug/audit); the JSONL sink
	// only when -audit names a file.
	var sink *core.JSONLSink
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("audit log: %w", err)
		}
		defer f.Close()
		sink = core.NewJSONLSink(f)
	}
	var trailSink core.AuditSink
	if sink != nil {
		trailSink = sink
	}
	trail := core.NewAuditTrail(0, trailSink)
	osIface := core.AuditOS(ctl, trail)

	drv := &staticDriver{}
	for _, e := range cfg.Entities {
		drv.entities = append(drv.entities, core.Entity{
			Name:       e.Name,
			Driver:     "static",
			Query:      e.Query,
			Thread:     e.TID,
			Logical:    e.Logical,
			Downstream: e.Downstream,
		})
	}

	var tr core.Translator
	switch cfg.Translator {
	case "", "nice":
		tr = core.NewNiceTranslator(osIface)
	case "cpu.shares":
		tr = core.NewSharesTranslator(osIface, 0, 0)
	case "nice+cpu.shares":
		tr = core.NewCombinedTranslator(osIface, 0, 0)
	default:
		return fmt.Errorf("unknown translator %q", cfg.Translator)
	}

	policy := core.Transformed(&core.StaticLogicalPolicy{
		PolicyName: "configured",
		Priorities: core.LogicalSchedule(cfg.Priorities),
		Default:    0,
	}, core.MaxPriorityRule)

	mw := core.NewMiddleware(nil)
	mw.SetAudit(trail)
	ctl.SetTelemetry(mw.Telemetry())
	period := time.Duration(cfg.PeriodMillis) * time.Millisecond
	if err := mw.Bind(core.Binding{
		Policy:     policy,
		Translator: tr,
		Drivers:    []core.Driver{drv},
		Period:     period,
	}); err != nil {
		return err
	}

	// mu serializes the step loop with the introspection handlers.
	var mu sync.Mutex
	if *introspect != "" {
		srv, err := startIntrospection(*introspect, &mu, mw, trail)
		if err != nil {
			return fmt.Errorf("introspection: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "lachesisd: introspection listening on http://%s\n", srv.addr)
	}

	fmt.Fprintf(stderr, "lachesisd: %d entities, translator %s, period %v, dry-run=%v\n",
		len(drv.entities), tr.Name(), period, *dryRun)
	start := time.Now()
	interrupted := false
loop:
	// Errors do not stop the loop: the middleware's resilience layer
	// degrades the failing binding, and the daemon keeps retrying every
	// period until the binding recovers or the daemon is told to stop.
	for i := 0; *iterations == 0 || i < *iterations; i++ {
		mu.Lock()
		stats, err := mw.Step(time.Since(start))
		mu.Unlock()
		if err != nil {
			fmt.Fprintln(stderr, "lachesisd: step:", err)
		}
		if *iterations != 0 && i == *iterations-1 {
			break
		}
		timer := time.NewTimer(time.Until(start.Add(stats.Next)))
		select {
		case <-sigs:
			timer.Stop()
			interrupted = true
			break loop
		case <-timer.C:
		}
	}

	mu.Lock()
	health := mw.Health()
	mu.Unlock()
	printHealth(stderr, health)
	if sink != nil {
		if err := sink.Err(); err != nil {
			fmt.Fprintln(stderr, "lachesisd: audit log:", err)
		}
	}
	if interrupted {
		fmt.Fprintln(stderr, "lachesisd: shutting down, restoring scheduling defaults")
		if r, ok := tr.(core.Resetter); ok {
			ents := make(map[string]core.Entity, len(drv.entities))
			for _, e := range drv.entities {
				ents[e.Name] = e
			}
			if err := r.Reset(ents); err != nil {
				fmt.Fprintln(stderr, "lachesisd: reset:", err)
			}
		}
	}
	return nil
}

// printHealth writes the middleware health snapshot, one line per binding
// and driver.
func printHealth(w io.Writer, h core.Health) {
	for _, b := range h.Bindings {
		fmt.Fprintf(w, "lachesisd: health: binding %s/%s %s (failures %d, last success %v)\n",
			b.Policy, b.Translator, b.State, b.ConsecutiveFailures, b.LastSuccess)
	}
	for _, d := range h.Drivers {
		fmt.Fprintf(w, "lachesisd: health: driver %s (stale %v, last success %v)\n",
			d.Driver, d.ServingStale, d.LastSuccess)
	}
}
