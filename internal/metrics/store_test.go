package metrics

import (
	"testing"
	"time"
)

func TestRecordAndLatest(t *testing.T) {
	s := NewStore(time.Second)
	s.Record(1500*time.Millisecond, "a.queue", 5)
	p, ok := s.Latest("a.queue")
	if !ok {
		t.Fatal("series missing")
	}
	if p.At != time.Second {
		t.Errorf("sample quantized to %v, want 1s", p.At)
	}
	if p.Value != 5 {
		t.Errorf("value = %v", p.Value)
	}
	if _, ok := s.Latest("nope"); ok {
		t.Error("unknown series should not exist")
	}
}

func TestSameBucketOverwrites(t *testing.T) {
	s := NewStore(time.Second)
	s.Record(1100*time.Millisecond, "x", 1)
	s.Record(1900*time.Millisecond, "x", 2)
	p, _ := s.Latest("x")
	if p.Value != 2 {
		t.Errorf("second sample in bucket should win, got %v", p.Value)
	}
	if got := len(s.Range("x", 0, time.Minute)); got != 1 {
		t.Errorf("one bucket expected, got %d", got)
	}
}

func TestAtReturnsNearestEarlier(t *testing.T) {
	s := NewStore(time.Second)
	s.Record(2*time.Second, "x", 10)
	s.Record(5*time.Second, "x", 50)
	tests := []struct {
		at   time.Duration
		want float64
		ok   bool
	}{
		{time.Second, 0, false},
		{2 * time.Second, 10, true},
		{3500 * time.Millisecond, 10, true},
		{5 * time.Second, 50, true},
		{time.Minute, 50, true},
	}
	for _, tt := range tests {
		p, ok := s.At("x", tt.at)
		if ok != tt.ok || (ok && p.Value != tt.want) {
			t.Errorf("At(%v) = (%v,%v), want (%v,%v)", tt.at, p.Value, ok, tt.want, tt.ok)
		}
	}
}

func TestRange(t *testing.T) {
	s := NewStore(time.Second)
	for i := 1; i <= 5; i++ {
		s.Record(time.Duration(i)*time.Second, "x", float64(i))
	}
	pts := s.Range("x", 2*time.Second, 4*time.Second)
	if len(pts) != 3 {
		t.Fatalf("range length = %d, want 3", len(pts))
	}
	if pts[0].Value != 2 || pts[2].Value != 4 {
		t.Errorf("range = %v", pts)
	}
}

func TestRetentionBounded(t *testing.T) {
	s := NewStore(time.Second)
	for i := 0; i < 1000; i++ {
		s.Record(time.Duration(i)*time.Second, "x", float64(i))
	}
	pts := s.Range("x", 0, 2000*time.Second)
	if len(pts) > defaultRetention {
		t.Errorf("retention not enforced: %d points", len(pts))
	}
	// Newest data survives.
	p, _ := s.Latest("x")
	if p.Value != 999 {
		t.Errorf("latest = %v, want 999", p.Value)
	}
}

func TestSeriesNamesSorted(t *testing.T) {
	s := NewStore(0)
	s.Record(0, "b", 1)
	s.Record(0, "a", 1)
	names := s.SeriesNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	if !s.HasSeries("a") || s.HasSeries("zzz") {
		t.Error("HasSeries wrong")
	}
	if s.Resolution() != DefaultResolution {
		t.Errorf("default resolution = %v", s.Resolution())
	}
	if s.Records() != 2 {
		t.Errorf("records = %d", s.Records())
	}
}

func TestRetentionWindowOffByDefault(t *testing.T) {
	s := NewStore(time.Second)
	if s.RetentionWindow() != 0 {
		t.Fatalf("window = %v, want 0 (off by default)", s.RetentionWindow())
	}
	// With the window off only the count bound applies: samples far apart
	// in time all survive up to defaultRetention.
	for i := 0; i < 100; i++ {
		s.Record(time.Duration(i)*time.Minute, "x", float64(i))
	}
	if got := len(s.Range("x", 0, 200*time.Minute)); got != 100 {
		t.Errorf("retained %d samples, want all 100 with the window off", got)
	}
	if s.Evicted() != 0 {
		t.Errorf("evicted = %d, want 0", s.Evicted())
	}
}

func TestRetentionWindowEvictsByAge(t *testing.T) {
	s := NewStore(time.Second)
	s.SetRetentionWindow(10 * time.Second)
	for i := 0; i <= 30; i++ {
		s.Record(time.Duration(i)*time.Second, "x", float64(i))
	}
	pts := s.Range("x", 0, time.Hour)
	if len(pts) != 11 {
		t.Fatalf("retained %d samples, want 11 (30s..20s window)", len(pts))
	}
	if pts[0].At != 20*time.Second {
		t.Errorf("oldest retained = %v, want 20s", pts[0].At)
	}
	p, _ := s.Latest("x")
	if p.Value != 30 {
		t.Errorf("latest = %v, want 30", p.Value)
	}
	if s.Evicted() != 20 {
		t.Errorf("evicted = %d, want 20", s.Evicted())
	}
	// The newest sample is always retained, even when a huge time jump
	// puts every earlier sample outside the window.
	s.Record(time.Hour, "x", 99)
	pts = s.Range("x", 0, 2*time.Hour)
	if len(pts) != 1 || pts[0].Value != 99 {
		t.Errorf("after jump retained %v, want just the newest sample", pts)
	}
	// Disabling the window stops further eviction.
	s.SetRetentionWindow(0)
	for i := 0; i < 50; i++ {
		s.Record(time.Hour+time.Duration(i+1)*time.Minute, "x", float64(i))
	}
	if got := len(s.Range("x", 0, 3*time.Hour)); got != 51 {
		t.Errorf("retained %d samples after disabling, want 51", got)
	}
}

func TestRetentionWindowComposesWithCountBound(t *testing.T) {
	s := NewStore(time.Second)
	s.SetRetentionWindow(time.Hour) // generous window: count bound wins
	for i := 0; i < 1000; i++ {
		s.Record(time.Duration(i)*time.Second, "x", float64(i))
	}
	if got := len(s.Range("x", 0, 2000*time.Second)); got > defaultRetention {
		t.Errorf("count bound not enforced with window on: %d points", got)
	}
}
