// Package window implements the windowed aggregations the benchmark
// queries build on: count-based tumbling windows and sliding windows with
// incremental aggregation, plus the small online estimators (running
// average, Kalman filter, linear regression) used by the RIoTBench STATS
// operators (§6.1).
package window

import (
	"errors"
)

// Tumbling is a count-based tumbling window: every Size values it emits
// one aggregate and restarts.
type Tumbling struct {
	size  int
	agg   func(values []float64) float64
	buf   []float64
	emits int64
}

// NewTumbling creates a tumbling window of the given size; agg folds a
// full window into one output (nil = mean).
func NewTumbling(size int, agg func([]float64) float64) (*Tumbling, error) {
	if size < 1 {
		return nil, errors.New("window: size must be >= 1")
	}
	if agg == nil {
		agg = Mean
	}
	return &Tumbling{size: size, agg: agg, buf: make([]float64, 0, size)}, nil
}

// Add appends a value; when the window fills it returns (aggregate, true).
func (t *Tumbling) Add(v float64) (float64, bool) {
	t.buf = append(t.buf, v)
	if len(t.buf) < t.size {
		return 0, false
	}
	out := t.agg(t.buf)
	t.buf = t.buf[:0]
	t.emits++
	return out, true
}

// Emitted returns how many windows have closed.
func (t *Tumbling) Emitted() int64 { return t.emits }

// Len returns the number of buffered values of the open window.
func (t *Tumbling) Len() int { return len(t.buf) }

// Mean folds a window into its arithmetic mean.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Max folds a window into its maximum.
func Max(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sliding is a count-based sliding window with O(1) incremental sum and
// mean: every Slide values it emits the aggregate of the last Size values.
type Sliding struct {
	size  int
	slide int
	ring  []float64
	n     int // values seen
	sum   float64
}

// NewSliding creates a sliding window (slide <= size).
func NewSliding(size, slide int) (*Sliding, error) {
	if size < 1 || slide < 1 || slide > size {
		return nil, errors.New("window: need 1 <= slide <= size")
	}
	return &Sliding{size: size, slide: slide, ring: make([]float64, size)}, nil
}

// Add appends a value; on slide boundaries (once the window has filled)
// it returns (mean of the window, true).
func (s *Sliding) Add(v float64) (float64, bool) {
	idx := s.n % s.size
	if s.n >= s.size {
		s.sum -= s.ring[idx]
	}
	s.ring[idx] = v
	s.sum += v
	s.n++
	if s.n >= s.size && (s.n-s.size)%s.slide == 0 {
		return s.sum / float64(s.size), true
	}
	return 0, false
}

// Kalman is a 1-D Kalman filter smoothing a noisy scalar stream (the
// STATS query's kalman-filter operator).
type Kalman struct {
	q, r    float64 // process / measurement noise
	x, p    float64 // state estimate and covariance
	started bool
}

// NewKalman creates a filter with process noise q and measurement noise r
// (must be positive).
func NewKalman(q, r float64) (*Kalman, error) {
	if q <= 0 || r <= 0 {
		return nil, errors.New("window: kalman noise must be positive")
	}
	return &Kalman{q: q, r: r, p: 1}, nil
}

// Update feeds one measurement and returns the filtered estimate.
func (k *Kalman) Update(z float64) float64 {
	if !k.started {
		k.x = z
		k.started = true
		return k.x
	}
	// Predict.
	k.p += k.q
	// Update.
	gain := k.p / (k.p + k.r)
	k.x += gain * (z - k.x)
	k.p *= 1 - gain
	return k.x
}

// Estimate returns the current state estimate.
func (k *Kalman) Estimate() float64 { return k.x }

// Regression is an online simple linear regression y = a + b·x over a
// sliding count window (the STATS sliding-linear-regression operator).
type Regression struct {
	size int
	xs   []float64
	ys   []float64
	n    int
}

// NewRegression creates a regression over the last size points.
func NewRegression(size int) (*Regression, error) {
	if size < 2 {
		return nil, errors.New("window: regression needs size >= 2")
	}
	return &Regression{size: size, xs: make([]float64, size), ys: make([]float64, size)}, nil
}

// Add appends a point and returns the current (intercept, slope, ok);
// ok is false until two points are present.
func (r *Regression) Add(x, y float64) (a, b float64, ok bool) {
	idx := r.n % r.size
	r.xs[idx] = x
	r.ys[idx] = y
	r.n++
	n := r.n
	if n > r.size {
		n = r.size
	}
	if n < 2 {
		return 0, 0, false
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		sx += r.xs[i]
		sy += r.ys[i]
		sxx += r.xs[i] * r.xs[i]
		sxy += r.xs[i] * r.ys[i]
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return sy / fn, 0, true
	}
	b = (fn*sxy - sx*sy) / den
	a = (sy - b*sx) / fn
	return a, b, true
}
