package simctl

import "lachesis/internal/telemetry"

// Telemetry metric names exported by the simulated control backend.
const (
	// MetricSimControlOps counts effective control operations — calls that
	// actually changed kernel state.
	MetricSimControlOps = "lachesis_sim_control_ops_total"
	// MetricSimControlCached counts control calls answered from the
	// adapter's cache with no kernel interaction (redundant re-applies the
	// real middleware would have saved as syscalls). The ratio of cached
	// to effective ops is the dedup win of the caching layer.
	MetricSimControlCached = "lachesis_sim_control_cached_total"
)

// SetTelemetry attaches a metric registry: effective and cache-absorbed
// control operations are counted from then on. nil detaches (the plain
// ControlOps/CachedOps fields always count).
func (a *OSAdapter) SetTelemetry(reg *telemetry.Registry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if reg == nil {
		a.ctrOps, a.ctrCached = nil, nil
		return
	}
	a.ctrOps = reg.Counter(MetricSimControlOps)
	a.ctrCached = reg.Counter(MetricSimControlCached)
}

// countOp records one effective control operation. Callers hold a.mu.
func (a *OSAdapter) countOp() {
	a.ControlOps++
	if a.ctrOps != nil {
		a.ctrOps.Inc()
	}
}

// countCached records one control call absorbed by the cache. Callers
// hold a.mu.
func (a *OSAdapter) countCached() {
	a.CachedOps++
	if a.ctrCached != nil {
		a.ctrCached.Inc()
	}
}
