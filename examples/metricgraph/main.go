// Metric dependency graph (paper Fig. 4 / Algorithm 3): different SPEs
// expose different raw metrics, and the metric provider derives what a
// policy needs from whatever is available. Here the same HR policy — which
// needs per-operator cost and selectivity — runs against a Storm-flavor
// driver (cumulative counts + execute latency) and a Flink-flavor driver
// (rates + busy time). Neither exposes selectivity directly; the provider
// traverses each driver's dependency graph and both arrive at the same
// schedule.
//
//	go run ./examples/metricgraph
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/driver"
	"lachesis/internal/metrics"
	"lachesis/internal/simos"
	"lachesis/internal/spe"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metricgraph:", err)
		os.Exit(1)
	}
}

// buildQuery is a pipeline whose middle operators have clearly different
// costs and selectivities, so HR produces a distinctive ordering.
func buildQuery() *spe.LogicalQuery {
	q := spe.NewQuery("mg")
	q.MustAddOp(&spe.LogicalOp{Name: "src", Kind: spe.KindIngress, Cost: 20 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&spe.LogicalOp{Name: "expand", Cost: 100 * time.Microsecond, Selectivity: 3})
	q.MustAddOp(&spe.LogicalOp{Name: "heavy", Cost: 900 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&spe.LogicalOp{Name: "filter", Cost: 80 * time.Microsecond, Selectivity: 0.4})
	q.MustAddOp(&spe.LogicalOp{Name: "sink", Kind: spe.KindEgress, Cost: 30 * time.Microsecond})
	if err := q.Pipeline("src", "expand", "heavy", "filter", "sink"); err != nil {
		panic(err)
	}
	return q
}

// hrInputs are the canonical metrics the HR policy requires, plus the raw
// pieces they may be derived from.
var interesting = []string{
	core.MetricCostMs, core.MetricSelectivity,
	core.MetricInRate, core.MetricOutRate,
	core.MetricInCount, core.MetricOutCount, core.MetricBusyMsPerS,
}

func run() error {
	fmt.Println("metric dependency graph (Fig. 4): HR needs cost_ms and selectivity")
	for _, flavor := range []spe.Flavor{spe.FlavorStorm, spe.FlavorFlink} {
		k := simos.New(simos.OdroidXU4())
		engine, err := spe.New(k, spe.Config{Name: flavor.String(), Flavor: flavor, Seed: 12})
		if err != nil {
			return err
		}
		if _, err := engine.Deploy(buildQuery(), spe.NewRateSource(600, nil)); err != nil {
			return err
		}
		store := metrics.NewStore(time.Second)
		if err := engine.StartReporter(store, time.Second); err != nil {
			return err
		}
		drv, err := driver.New(engine, store)
		if err != nil {
			return err
		}

		fmt.Printf("\n=== %s-flavor driver\n", flavor)
		fmt.Print("provides directly: ")
		for _, m := range interesting {
			if drv.Provides(m) {
				fmt.Printf("%s ", m)
			}
		}
		fmt.Print("\nderived by the provider: ")
		for _, m := range interesting {
			if !drv.Provides(m) {
				fmt.Printf("%s ", m)
			}
		}
		fmt.Println()

		// Let the engine run and report, then compute the HR inputs and
		// schedule through the provider (two periods so rates exist).
		provider := core.NewProvider(nil)
		policy := core.NewHRPolicy()
		if err := provider.Register(policy.Metrics()...); err != nil {
			return err
		}
		k.RunUntil(3 * time.Second)
		if _, err := provider.Update(k.Now(), []core.Driver{drv}); err != nil {
			return err
		}
		k.RunUntil(6 * time.Second)
		values, err := provider.Update(k.Now(), []core.Driver{drv})
		if err != nil {
			return err
		}

		entities := make(map[string]core.Entity)
		for _, ent := range drv.Entities() {
			entities[ent.Name] = ent
		}
		view := core.NewView(k.Now(), entities, values[drv.Name()])
		sched, err := policy.Schedule(view)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(sched.Single))
		for name := range sched.Single {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			return sched.Single[names[i]] > sched.Single[names[j]]
		})
		fmt.Println("HR priority order (computed identically from different raw metrics):")
		for i, name := range names {
			sel, _ := view.Value(core.MetricSelectivity, name)
			cost, _ := view.Value(core.MetricCostMs, name)
			fmt.Printf("  %d. %-16s selectivity=%.2f cost=%.2fms\n", i+1, name, sel, cost)
		}
	}
	return nil
}
