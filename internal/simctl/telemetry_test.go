package simctl

import (
	"testing"
	"time"

	"lachesis/internal/simos"
	"lachesis/internal/telemetry"
)

func TestAdapterTelemetryCounts(t *testing.T) {
	k := simos.New(simos.Config{CPUs: 1})
	tid, err := k.Spawn("w", simos.RootCgroup, simos.RunnerFunc(
		func(ctx *simos.RunContext, granted time.Duration) simos.Decision {
			return simos.Decision{Used: granted, Action: simos.ActionYield}
		}))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewOSAdapter(k)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	a.SetTelemetry(reg)

	// 1 effective renice + 4 cache hits.
	for i := 0; i < 5; i++ {
		if err := a.SetNice(int(tid), -7); err != nil {
			t.Fatal(err)
		}
	}
	// 1 effective create + 2 cache hits, 1 effective shares + 1 cache hit.
	for i := 0; i < 3; i++ {
		if err := a.EnsureCgroup("g"); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.SetShares("g", 2048); err != nil {
		t.Fatal(err)
	}
	if err := a.SetShares("g", 2048); err != nil {
		t.Fatal(err)
	}

	ops := reg.Counter(MetricSimControlOps).Value()
	cached := reg.Counter(MetricSimControlCached).Value()
	if ops != 3 || cached != 7 {
		t.Errorf("ops=%d cached=%d, want 3 effective and 7 cached", ops, cached)
	}
	// The counters mirror the plain fields (and vice versa).
	if ops != a.ControlOps || cached != a.CachedOps {
		t.Errorf("counters (%d/%d) diverge from fields (%d/%d)", ops, cached, a.ControlOps, a.CachedOps)
	}
}
