// Command lachesis-trace captures benchmark input traces to CSV files so
// experiment inputs are durable, inspectable artifacts (the paper's data
// sources replay recorded traces). Traces written here can be replayed
// with internal/trace.Trace.Source.
//
// With -spans it instead reads causal span logs — the JSONL written by a
// daemon's -span-log flag or a flight-recorder bundle — reconstructs the
// span trees, and prints each trace with its critical path and per-phase
// latency attribution. Logs from several processes can be merged to view
// one cross-process rollout trace end to end.
//
// Usage:
//
//	lachesis-trace -workload lr -rate 5000 -tuples 100000 -out lr.csv
//	lachesis-trace -spans fleet.jsonl,agent.jsonl [-trace <id>]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lachesis/internal/spe"
	"lachesis/internal/trace"
	"lachesis/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lachesis-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("lachesis-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "lr", "source to capture: iot, lr, vs, syn")
		rate     = fs.Float64("rate", 1000, "production rate (tuples/s)")
		tuples   = fs.Int("tuples", 10000, "number of tuples to capture")
		seed     = fs.Int64("seed", 1, "generator seed")
		out      = fs.String("out", "", "output CSV path (default stdout)")
		replay   = fs.String("replay", "", "read an existing trace CSV and print its summary instead of capturing")
		spans    = fs.String("spans", "", "comma-separated span JSONL files (daemon -span-log output or flight bundles); print span trees instead of capturing")
		traceID  = fs.String("trace", "", "with -spans: show only this trace ID")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spans != "" {
		return runSpans(strings.Split(*spans, ","), *traceID, stderr)
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return err
		}
		fmt.Fprintln(stderr, summary("replayed", tr.Len(), *replay, tr.Duration()))
		return nil
	}
	var src spe.Source
	switch *workload {
	case "iot":
		src = workloads.IoTSource(*rate, *seed)
	case "lr":
		src = workloads.LRSource(*rate, *seed)
	case "vs":
		src = workloads.VSSource(*rate, *seed)
	case "syn":
		src = workloads.SynSource(*rate, *seed)
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}
	tr, err := trace.Capture(src, *tuples)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	if err := tr.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(stderr, summary("captured", tr.Len(), *workload, tr.Duration()))
	return nil
}

// summary is the one-line trace report: record count, time span, and the
// effective tuple rate over that span.
func summary(verb string, n int, what string, span time.Duration) string {
	rate := 0.0
	if span > 0 {
		rate = float64(n) / span.Seconds()
	}
	return fmt.Sprintf("%s %d %s tuples spanning %v (%.0f tuples/s)", verb, n, what, span, rate)
}
