package core_test

import (
	"fmt"
	"sort"
	"time"

	"lachesis/internal/core"
)

// ExampleNormalizeToNice shows the §5.3 normalization: linear priorities
// are min-max mapped onto the 40 nice values, with the highest priority
// getting the strongest (lowest) nice.
func ExampleNormalizeToNice() {
	priorities := map[string]float64{
		"bottleneck": 120, // longest queue
		"mid":        60,
		"idle":       0,
	}
	nices := core.NormalizeToNice(priorities, core.ScaleLinear)
	names := []string{"bottleneck", "mid", "idle"}
	for _, n := range names {
		fmt.Printf("%s -> nice %d\n", n, nices[n])
	}
	// Output:
	// bottleneck -> nice -20
	// mid -> nice -1
	// idle -> nice 19
}

// ExampleMaxPriorityRule shows Algorithm 2: a fused physical operator
// inherits the highest priority of its logical operators, and fission
// replicas inherit their logical operator's priority.
func ExampleMaxPriorityRule() {
	entities := map[string]core.Entity{
		"cde": {Name: "cde", Logical: []string{"C", "D", "E"}}, // fusion
		"f0":  {Name: "f0", Logical: []string{"F"}},            // fission
		"f1":  {Name: "f1", Logical: []string{"F"}},
	}
	logical := core.LogicalSchedule{"C": 1, "D": 9, "E": 2, "F": 5}
	physical := core.MaxPriorityRule(logical, entities)
	var names []string
	for name := range physical {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s -> %.0f\n", name, physical[name])
	}
	// Output:
	// cde -> 9
	// f0 -> 5
	// f1 -> 5
}

// ExampleQSPolicy shows a policy run over a metric view: queue sizes in,
// priorities out.
func ExampleQSPolicy() {
	entities := map[string]core.Entity{
		"parse": {Name: "parse", Thread: 11},
		"count": {Name: "count", Thread: 12},
	}
	view := core.NewView(time.Second, entities, map[string]core.EntityValues{
		core.MetricQueueSize: {"parse": 3, "count": 250},
	})
	sched, err := core.NewQSPolicy().Schedule(view)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("parse priority %.0f, count priority %.0f\n",
		sched.Single["parse"], sched.Single["count"])
	// Output:
	// parse priority 3, count priority 250
}

// ExampleProvider shows Algorithm 3 deriving a metric a driver does not
// provide directly: selectivity from cumulative in/out counts over two
// scheduling periods.
func ExampleProvider() {
	drv := &countsDriver{in: 1000, out: 500}
	p := core.NewProvider(nil)
	if err := p.Register(core.MetricSelectivity); err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := p.Update(1*time.Second, []core.Driver{drv}); err != nil {
		fmt.Println("error:", err)
		return
	}
	drv.in, drv.out = 3000, 1500
	vals, err := p.Update(2*time.Second, []core.Driver{drv})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("derived selectivity: %.2f\n", vals["storm"][core.MetricSelectivity]["op"])
	// Output:
	// derived selectivity: 0.50
}

// countsDriver is a Storm-like driver providing only cumulative counters.
type countsDriver struct {
	in, out float64
}

func (d *countsDriver) Name() string { return "storm" }
func (d *countsDriver) Entities() []core.Entity {
	return []core.Entity{{Name: "op", Driver: "storm", Thread: 1}}
}
func (d *countsDriver) Provides(metric string) bool {
	return metric == core.MetricInCount || metric == core.MetricOutCount
}
func (d *countsDriver) Fetch(metric string, _ time.Duration) (core.EntityValues, error) {
	switch metric {
	case core.MetricInCount:
		return core.EntityValues{"op": d.in}, nil
	case core.MetricOutCount:
		return core.EntityValues{"op": d.out}, nil
	}
	return nil, &core.UnknownMetricError{Metric: metric, Driver: "storm"}
}
