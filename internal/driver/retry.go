package driver

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lachesis/internal/core"
)

// Shared retry/backoff machinery for the control backends. Every surface
// that talks to something flaky — the Linux backend's syscalls, the
// simulated kernel adapter, the fleet coordinator's per-agent policy
// pushes — used to grow its own copy of the same three lines: classify
// the error onto the core taxonomy, retry while it is transient, count
// the extra attempts. This file is the one copy. Backends keep their own
// classifiers (an errno and a simos.NotFoundError are not the same
// animal) and share the loop, the backoff curve, and the jitter.

// MarkVanished wraps err with core.ErrEntityVanished: the operation's
// target exited or was torn down concurrently, which callers treat as a
// benign race rather than a failure.
func MarkVanished(err error) error {
	return fmt.Errorf("%w: %w", core.ErrEntityVanished, err)
}

// MarkTransient wraps err with core.ErrTransient: the operation is worth
// retrying (EAGAIN-style exhaustion, a timeout, a flapping endpoint).
func MarkTransient(err error) error {
	return fmt.Errorf("%w: %w", core.ErrTransient, err)
}

// RetryPolicy runs an operation with bounded retries and exponential
// backoff. The zero value retries nothing; fill in Attempts (and, for
// paced retries, BaseDelay) to get behaviour. All fields are optional
// knobs with safe defaults so call sites stay one-liners.
type RetryPolicy struct {
	// Attempts is the total number of tries (first call included).
	// Values below 1 mean a single attempt.
	Attempts int
	// Classify maps a backend-native error onto the core taxonomy before
	// the retry decision (nil = use the error as is).
	Classify func(error) error
	// Retryable decides whether a classified error deserves another
	// attempt (nil = core.IsTransient).
	Retryable func(error) bool
	// BaseDelay is the sleep before the first retry; each further retry
	// doubles it, capped at MaxDelay. Zero retries immediately — the
	// historical behaviour of the Linux backend, whose transients
	// (EAGAIN/EINTR) clear in microseconds.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 30s when BaseDelay
	// is set).
	MaxDelay time.Duration
	// Jitter spreads each delay by ±Jitter fraction (e.g. 0.2 = ±20%) so
	// a fleet of retriers never phase-locks against a recovering target.
	Jitter float64
	// Sleep implements the delays (nil = time.Sleep; tests inject a
	// recorder, virtual-time callers a no-op).
	Sleep func(time.Duration)
	// Rand supplies jitter randomness in [0,1) (nil = a shared
	// math/rand source).
	Rand func() float64
	// OnRetry observes each extra attempt before it runs: attempt is
	// 1-based over the retries (not the first call), err is the
	// classified failure that triggered it. Telemetry hooks go here.
	OnRetry func(attempt int, err error)
}

// sharedRand backs RetryPolicy.Rand when the caller does not inject one.
var (
	sharedRandMu sync.Mutex
	sharedRand   = rand.New(rand.NewSource(1))
)

func defaultRand() float64 {
	sharedRandMu.Lock()
	defer sharedRandMu.Unlock()
	return sharedRand.Float64()
}

// Do runs op under the policy and returns the final classified error
// (nil on success). Non-retryable errors surface immediately.
func (p RetryPolicy) Do(op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	retryable := p.Retryable
	if retryable == nil {
		retryable = core.IsTransient
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if p.OnRetry != nil {
				p.OnRetry(attempt, err)
			}
			if d := p.Delay(attempt); d > 0 {
				sleep := p.Sleep
				if sleep == nil {
					sleep = time.Sleep
				}
				sleep(d)
			}
		}
		err = op()
		if p.Classify != nil {
			err = p.Classify(err)
		}
		if err == nil || !retryable(err) {
			return err
		}
	}
	return err
}

// Delay returns the backoff before the attempt-th retry (1-based):
// BaseDelay * 2^(attempt-1), capped at MaxDelay, spread by ±Jitter.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 30 * time.Second
	}
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max || d <= 0 { // <=0: overflow
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	if p.Jitter > 0 {
		r := p.Rand
		if r == nil {
			r = defaultRand
		}
		d += time.Duration((r()*2 - 1) * p.Jitter * float64(d))
		if d < 0 {
			d = 0
		}
	}
	return d
}
