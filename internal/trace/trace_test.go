package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"lachesis/internal/simos"
	"lachesis/internal/spe"
	"lachesis/internal/workloads"
)

func sample() []Record {
	return []Record{
		{At: 0, Key: 1, Value: 1.5},
		{At: 10 * time.Millisecond, Key: 2, Value: -3},
		{At: 10 * time.Millisecond, Key: 3, Value: 0.25},
		{At: 50 * time.Millisecond, Key: 4, Value: 1e9},
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrEmptyTrace) {
		t.Error("empty trace should be ErrEmptyTrace")
	}
	bad := sample()
	bad[2].At = time.Millisecond
	if _, err := New(bad); err == nil {
		t.Error("unordered trace should fail")
	}
}

func TestRoundTrip(t *testing.T) {
	tr, err := New(sample())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), tr.Len())
	}
	got := back.Records()
	for i, want := range tr.Records() {
		if got[i] != want {
			t.Errorf("row %d = %+v, want %+v", i, got[i], want)
		}
	}
	if back.Duration() != 50*time.Millisecond {
		t.Errorf("duration = %v", back.Duration())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"bad,header,row\n1,2,3\n",
		"at_us,key,value\nx,2,3\n",
		"at_us,key,value\n1,x,3\n",
		"at_us,key,value\n1,2,x\n",
		"at_us,key,value\n1,2\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestCaptureFromWorkloadSource(t *testing.T) {
	src := workloads.LRSource(1000, 7)
	tr, err := Capture(src, 500)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatalf("len = %d", tr.Len())
	}
	// ~500 tuples at 1000/s span ~0.5s.
	if d := tr.Duration(); d < 450*time.Millisecond || d > 550*time.Millisecond {
		t.Errorf("duration = %v, want ~0.5s", d)
	}
	if _, err := Capture(src, 0); err == nil {
		t.Error("capture of 0 should fail")
	}
}

func TestReplayDrivesEngine(t *testing.T) {
	// Capture a VS trace, persist it, reload it, and replay it through the
	// engine at 2x speed.
	tr, err := Capture(workloads.VSSource(500, 3), 1000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src, err := loaded.Source(2)
	if err != nil {
		t.Fatal(err)
	}

	k := simos.New(simos.Config{CPUs: 2})
	e, err := spe.New(k, spe.Config{Name: "storm", Flavor: spe.FlavorStorm, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := spe.NewQuery("q")
	q.MustAddOp(&spe.LogicalOp{Name: "src", Kind: spe.KindIngress, Cost: 10 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&spe.LogicalOp{Name: "sink", Kind: spe.KindEgress, Cost: 10 * time.Microsecond})
	if err := q.Pipeline("src", "sink"); err != nil {
		t.Fatal(err)
	}
	d, err := e.Deploy(q, src)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(3 * time.Second)
	// 1000 tuples captured at 500/s = 2s of trace; replayed at 2x = 1s per
	// iteration; 3 virtual seconds = ~3000 tuples.
	if got := d.Ingested(); got < 2800 || got > 3200 {
		t.Errorf("replayed %d tuples, want ~3000", got)
	}
}
