// Package lachesis_test benchmarks regenerate every table and figure of
// the paper's evaluation (one benchmark per figure; run with
// -benchtime=1x), report micro-costs of the middleware's hot paths, and
// include ablation benchmarks for the simulator design choices called out
// in DESIGN.md.
//
//	go test -bench=. -benchmem -benchtime=1x
package lachesis_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"lachesis/internal/bloom"
	"lachesis/internal/core"
	"lachesis/internal/driver"
	"lachesis/internal/harness"
	"lachesis/internal/metrics"
	"lachesis/internal/simctl"
	"lachesis/internal/simos"
	"lachesis/internal/spe"
	"lachesis/internal/workloads"
)

// benchScale trims the experiment windows so a full -bench=. run stays
// tractable while preserving steady-state behaviour.
var benchScale = harness.Scale{
	Warmup:  5 * time.Second,
	Measure: 15 * time.Second,
	Reps:    1,
}

// runExperiment executes one figure's experiment per benchmark iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01Motivation(b *testing.B)       { runExperiment(b, "fig1") }
func BenchmarkFig05ETLStorm(b *testing.B)         { runExperiment(b, "fig5") }
func BenchmarkFig06ETLQueues(b *testing.B)        { runExperiment(b, "fig6") }
func BenchmarkFig07STATSStorm(b *testing.B)       { runExperiment(b, "fig7") }
func BenchmarkFig08STATSQueues(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkFig09LRStorm(b *testing.B)          { runExperiment(b, "fig9") }
func BenchmarkFig10VSStorm(b *testing.B)          { runExperiment(b, "fig10") }
func BenchmarkFig11LRFlink(b *testing.B)          { runExperiment(b, "fig11") }
func BenchmarkFig12VSFlink(b *testing.B)          { runExperiment(b, "fig12") }
func BenchmarkFig13TailLatency(b *testing.B)      { runExperiment(b, "fig13") }
func BenchmarkFig14MultiQuery(b *testing.B)       { runExperiment(b, "fig14") }
func BenchmarkFig15HarenGranularity(b *testing.B) { runExperiment(b, "fig15") }
func BenchmarkFig16Blocking(b *testing.B)         { runExperiment(b, "fig16") }
func BenchmarkFig17ScaleOut(b *testing.B)         { runExperiment(b, "fig17") }
func BenchmarkFig18MultiSPE(b *testing.B)         { runExperiment(b, "fig18") }
func BenchmarkTable1Summary(b *testing.B)         { runExperiment(b, "table1") }

// --- ablations: the simulator design choices of DESIGN.md ---

// lrGapAt measures the Lachesis-QS vs OS throughput gap on the LR query at
// overload for a given machine configuration.
func lrGapAt(b *testing.B, machine simos.Config) float64 {
	b.Helper()
	var tput [2]float64
	for i, sched := range []harness.Scheduler{harness.SchedOS, harness.SchedLachesisQS} {
		s := harness.Setup{
			Name:    string(sched),
			Machine: machine,
			Engines: []harness.EngineSpec{{Flavor: spe.FlavorStorm}},
			Queries: []harness.QuerySpec{{
				Build:  func() *spe.LogicalQuery { return workloads.LinearRoad(1) },
				Source: workloads.LRSource,
			}},
			Scheduler: sched,
			Warmup:    benchScale.Warmup,
			Measure:   benchScale.Measure,
			Seed:      3,
		}
		r, err := harness.Run(s, 6200, 0)
		if err != nil {
			b.Fatal(err)
		}
		tput[i] = r.Throughput
	}
	return tput[1]/tput[0] - 1
}

// BenchmarkAblationSwitchCost sweeps the context-switch cost model: with 0
// cost the simulated OS is perfectly work-conserving and the Lachesis
// throughput gain collapses, showing the gain is rooted in scheduling
// overheads, as on real hardware.
func BenchmarkAblationSwitchCost(b *testing.B) {
	for _, sw := range []time.Duration{0, 10 * time.Microsecond, 40 * time.Microsecond, 80 * time.Microsecond} {
		b.Run(fmt.Sprintf("switch=%v", sw), func(b *testing.B) {
			machine := simos.OdroidXU4()
			machine.SwitchCost = sw
			var gap float64
			for i := 0; i < b.N; i++ {
				gap = lrGapAt(b, machine)
			}
			b.ReportMetric(gap*100, "tput-gain-%")
		})
	}
}

// BenchmarkAblationQuantum sweeps the dispatch timeslice (fidelity vs
// simulation cost).
func BenchmarkAblationQuantum(b *testing.B) {
	for _, q := range []time.Duration{500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond} {
		b.Run(fmt.Sprintf("quantum=%v", q), func(b *testing.B) {
			machine := simos.OdroidXU4()
			machine.Quantum = q
			var gap float64
			for i := 0; i < b.N; i++ {
				gap = lrGapAt(b, machine)
			}
			b.ReportMetric(gap*100, "tput-gain-%")
		})
	}
}

// BenchmarkAblationSchedulingPeriod sweeps Lachesis' scheduling period
// (the paper fixes it to the 1s Graphite resolution; §6.1 argues that is
// usually sufficient).
func BenchmarkAblationSchedulingPeriod(b *testing.B) {
	for _, period := range []time.Duration{250 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second} {
		b.Run(fmt.Sprintf("period=%v", period), func(b *testing.B) {
			var proc float64
			for i := 0; i < b.N; i++ {
				s := harness.Setup{
					Name:    "lachesis-qs",
					Machine: simos.OdroidXU4(),
					Engines: []harness.EngineSpec{{Flavor: spe.FlavorStorm}},
					Queries: []harness.QuerySpec{{
						Build:  func() *spe.LogicalQuery { return workloads.LinearRoad(1) },
						Source: workloads.LRSource,
					}},
					Scheduler: harness.SchedLachesisQS,
					Period:    period,
					Warmup:    benchScale.Warmup,
					Measure:   benchScale.Measure,
					Seed:      3,
				}
				r, err := harness.Run(s, 5500, 0)
				if err != nil {
					b.Fatal(err)
				}
				proc = r.MeanProc.Seconds() * 1e3
			}
			b.ReportMetric(proc, "lat-ms")
		})
	}
}

// BenchmarkAblationTranslator compares the OS mechanisms enforcing the
// same QS schedule near the LR saturation point: nice, per-operator
// cpu.shares, CPU quotas, and SCHED_FIFO (the §8 future-work mechanisms).
func BenchmarkAblationTranslator(b *testing.B) {
	for _, tr := range []harness.Translator{
		harness.TranslateNice, harness.TranslateShares,
		harness.TranslateQuota, harness.TranslateRT,
	} {
		b.Run(string(tr), func(b *testing.B) {
			var tput, lat float64
			for i := 0; i < b.N; i++ {
				s := harness.Setup{
					Name:    "lachesis-qs/" + string(tr),
					Machine: simos.OdroidXU4(),
					Engines: []harness.EngineSpec{{Flavor: spe.FlavorStorm}},
					Queries: []harness.QuerySpec{{
						Build:  func() *spe.LogicalQuery { return workloads.LinearRoad(1) },
						Source: workloads.LRSource,
					}},
					Scheduler:  harness.SchedLachesisQS,
					Translator: tr,
					Warmup:     benchScale.Warmup,
					Measure:    benchScale.Measure,
					Seed:       3,
				}
				r, err := harness.Run(s, 5500, 0)
				if err != nil {
					b.Fatal(err)
				}
				tput = r.Throughput
				lat = r.MeanProc.Seconds() * 1e3
			}
			b.ReportMetric(tput, "tput-t/s")
			b.ReportMetric(lat, "lat-ms")
		})
	}
}

// linearizedPolicy forces a policy's schedule to be normalized linearly,
// for the normalization ablation below.
type linearizedPolicy struct{ inner core.Policy }

func (p linearizedPolicy) Name() string      { return p.inner.Name() + "-linear" }
func (p linearizedPolicy) Metrics() []string { return p.inner.Metrics() }
func (p linearizedPolicy) Schedule(v *core.View) (core.Schedule, error) {
	s, err := p.inner.Schedule(v)
	s.Scale = core.ScaleLinear
	return s, err
}

// BenchmarkAblationNormalization compares HR under its proper logarithmic
// normalization (§5.3: "for logarithmically-spaced priorities ... min-max
// normalization on the logarithms") against naive linear min-max, which
// lets one huge priority crush all distinctions.
func BenchmarkAblationNormalization(b *testing.B) {
	run := func(b *testing.B, policy core.Policy) (float64, float64) {
		k := simos.New(simos.OdroidXU4())
		eng, err := spe.New(k, spe.Config{Name: "storm", Flavor: spe.FlavorStorm, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		d, err := eng.Deploy(workloads.VoipStream(), workloads.VSSource(2800, 5))
		if err != nil {
			b.Fatal(err)
		}
		store := metrics.NewStore(time.Second)
		if err := eng.StartReporter(store, time.Second); err != nil {
			b.Fatal(err)
		}
		drv, err := driver.New(eng, store)
		if err != nil {
			b.Fatal(err)
		}
		osa, err := simctl.NewOSAdapter(k)
		if err != nil {
			b.Fatal(err)
		}
		mw := core.NewMiddleware(nil)
		if err := mw.Bind(core.Binding{
			Policy:     policy,
			Translator: core.NewNiceTranslator(osa),
			Drivers:    []core.Driver{drv},
			Period:     time.Second,
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := simctl.StartMiddleware(k, mw); err != nil {
			b.Fatal(err)
		}
		k.RunUntil(benchScale.Warmup)
		d.ResetStats()
		base := d.EgressCount()
		k.RunUntil(benchScale.Warmup + benchScale.Measure)
		tput := float64(d.EgressCount()-base) / benchScale.Measure.Seconds()
		return tput, d.Latencies().MeanProc.Seconds() * 1e3
	}
	for _, cfg := range []struct {
		name   string
		policy core.Policy
	}{
		{"hr-log", core.NewHRPolicy()},
		{"hr-linear", linearizedPolicy{core.NewHRPolicy()}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var tput, lat float64
			for i := 0; i < b.N; i++ {
				tput, lat = run(b, cfg.policy)
			}
			b.ReportMetric(tput, "egress-t/s")
			b.ReportMetric(lat, "lat-ms")
		})
	}
}

// --- microbenchmarks of the middleware hot paths ---

func BenchmarkKernelDispatch(b *testing.B) {
	k := simos.New(simos.Config{CPUs: 4})
	for i := 0; i < 16; i++ {
		if _, err := k.Spawn("w", simos.RootCgroup, simos.RunnerFunc(
			func(ctx *simos.RunContext, granted time.Duration) simos.Decision {
				return simos.Decision{Used: granted, Action: simos.ActionYield}
			})); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Step() {
			b.Fatal("kernel stalled")
		}
	}
}

func BenchmarkEngineSimulationSecond(b *testing.B) {
	// Cost of simulating one virtual second of the LR query at load.
	k := simos.New(simos.OdroidXU4())
	e, err := spe.New(k, spe.Config{Name: "storm", Flavor: spe.FlavorStorm, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Deploy(workloads.LinearRoad(1), workloads.LRSource(5000, 1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunUntil(time.Duration(i+1) * time.Second)
	}
}

func BenchmarkProviderUpdate(b *testing.B) {
	// Full metric-derivation pass (Algorithm 3) over a 15-operator query.
	k := simos.New(simos.OdroidXU4())
	e, err := spe.New(k, spe.Config{Name: "storm", Flavor: spe.FlavorStorm, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Deploy(workloads.VoipStream(), workloads.VSSource(1000, 1)); err != nil {
		b.Fatal(err)
	}
	store := metrics.NewStore(time.Second)
	if err := e.StartReporter(store, time.Second); err != nil {
		b.Fatal(err)
	}
	drv, err := driver.New(e, store)
	if err != nil {
		b.Fatal(err)
	}
	k.RunUntil(3 * time.Second)
	p := core.NewProvider(nil)
	if err := p.Register(core.MetricQueueSize, core.MetricSelectivity, core.MetricCostMs, core.MetricHeadWaitMs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Update(k.Now(), []core.Driver{drv}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQSPolicySchedule(b *testing.B) {
	view := syntheticView(100)
	pol := core.NewQSPolicy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Schedule(view); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHRPolicySchedule(b *testing.B) {
	view := syntheticView(100)
	pol := core.NewHRPolicy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Schedule(view); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalizeToNice(b *testing.B) {
	prios := make(map[string]float64, 100)
	for i := 0; i < 100; i++ {
		prios[fmt.Sprintf("op%03d", i)] = float64(i * i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NormalizeToNice(prios, core.ScaleLog)
	}
}

func BenchmarkStoreRecord(b *testing.B) {
	s := metrics.NewStore(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Record(time.Duration(i)*time.Millisecond, "engine.op.queue", float64(i))
	}
}

func BenchmarkBloomAddContains(b *testing.B) {
	f := bloom.NewWithEstimates(1<<20, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
		if !f.Contains(uint64(i)) {
			b.Fatal("false negative")
		}
	}
}

// syntheticView builds a linear 100-operator view for policy benchmarks.
func syntheticView(n int) *core.View {
	ents := make(map[string]core.Entity, n)
	qs := make(core.EntityValues, n)
	costs := make(core.EntityValues, n)
	sels := make(core.EntityValues, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("op%03d", i)
		e := core.Entity{Name: name, Query: "q", Thread: i + 1}
		if i+1 < n {
			e.Downstream = []string{fmt.Sprintf("op%03d", i+1)}
		}
		ents[name] = e
		qs[name] = float64(i % 17)
		costs[name] = 0.1 + float64(i%5)
		sels[name] = 0.5 + float64(i%3)
	}
	return core.NewView(time.Second, ents, map[string]core.EntityValues{
		core.MetricQueueSize:   qs,
		core.MetricCostMs:      costs,
		core.MetricSelectivity: sels,
	})
}
