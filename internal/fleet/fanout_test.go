package fleet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"lachesis/internal/driver"
	"lachesis/internal/guard"
)

// flakyAgent fails transiently a set number of times before succeeding.
type flakyAgent struct {
	mu        sync.Mutex
	failures  int
	proposals int
	status    guard.Status
}

func (f *flakyAgent) Propose([]byte) (guard.Status, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failures > 0 {
		f.failures--
		return guard.Status{}, driver.MarkTransient(errors.New("timeout"))
	}
	f.proposals++
	return f.status, nil
}
func (f *flakyAgent) Status() (guard.Status, error)  { return f.status, nil }
func (f *flakyAgent) SLO() (guard.SLOSample, error)  { return guard.SLOSample{}, nil }
func (f *flakyAgent) proposalsMade() int             { f.mu.Lock(); defer f.mu.Unlock(); return f.proposals }

func oneAgent(c AgentClient) ConnFactory {
	return func(AgentRecord) AgentClient { return c }
}

func TestFanoutRetriesTransientFailures(t *testing.T) {
	ag := &flakyAgent{failures: 2}
	f := NewFanout(noSleep(FanoutConfig{Attempts: 3}))
	outs := f.Push(0, []AgentRecord{{ID: "a"}}, oneAgent(ag), "v1", []byte("{}"))
	if len(outs) != 1 || !outs[0].OK || outs[0].Attempts != 3 {
		t.Fatalf("outcome = %+v, want OK after 3 attempts", outs)
	}
	if ag.proposalsMade() != 1 {
		t.Fatalf("proposals = %d, want 1", ag.proposalsMade())
	}
}

func TestFanoutConflictWithOwnVersionIsIdempotentSuccess(t *testing.T) {
	// The agent 409s (our earlier push landed, the response was lost) but
	// reports our candidate in flight: the push is already complete.
	ag := &fakeAgent{busy: true, st: guard.Status{Active: true, Candidate: "v1"}}
	f := NewFanout(noSleep(FanoutConfig{Attempts: 2}))
	outs := f.Push(0, []AgentRecord{{ID: "a"}}, oneAgent(ag), "v1", []byte("{}"))
	if !outs[0].OK || outs[0].Conflict {
		t.Fatalf("outcome = %+v, want idempotent OK", outs[0])
	}
}

func TestFanoutForeignConflictIsNotSuccess(t *testing.T) {
	ag := &fakeAgent{busy: true, st: guard.Status{Active: true, Candidate: "other"}}
	f := NewFanout(noSleep(FanoutConfig{Attempts: 2}))
	outs := f.Push(0, []AgentRecord{{ID: "a"}}, oneAgent(ag), "v1", []byte("{}"))
	if outs[0].OK || !outs[0].Conflict {
		t.Fatalf("outcome = %+v, want conflict", outs[0])
	}
}

func TestFanoutBreakerOpensSkipsAndProbes(t *testing.T) {
	ag := &fakeAgent{down: true}
	f := NewFanout(noSleep(FanoutConfig{
		Attempts: 1, BreakerThreshold: 2, BreakerCooldown: 10 * time.Second,
	}))
	rec := []AgentRecord{{ID: "a"}}

	// Two failed rounds open the breaker.
	now := time.Duration(0)
	for i := 0; i < 2; i++ {
		outs := f.Push(now, rec, oneAgent(ag), "v1", []byte("{}"))
		if outs[0].OK || outs[0].Skipped {
			t.Fatalf("round %d = %+v, want plain failure", i, outs[0])
		}
		now += time.Second
	}
	if !f.BreakerOpen(now, "a") {
		t.Fatal("breaker must be open after threshold failures")
	}

	// Within the cooldown: skipped without touching the agent.
	outs := f.Push(now, rec, oneAgent(ag), "v1", []byte("{}"))
	if !outs[0].Skipped || outs[0].Attempts != 0 {
		t.Fatalf("outcome = %+v, want skipped with zero attempts", outs[0])
	}

	// After the cooldown the probe goes through; the agent recovered, so
	// the breaker closes again.
	ag.setDown(false)
	now += 11 * time.Second
	outs = f.Push(now, rec, oneAgent(ag), "v1", []byte("{}"))
	if !outs[0].OK {
		t.Fatalf("probe = %+v, want OK", outs[0])
	}
	if f.BreakerOpen(now, "a") {
		t.Fatal("breaker must close after a successful probe")
	}
}

func TestFanoutPushesAgentsInParallelOrderPreserved(t *testing.T) {
	ff := newFakeFleet("a", "b", "c")
	f := NewFanout(noSleep(FanoutConfig{Attempts: 1, Parallel: 2}))
	recs := []AgentRecord{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	outs := f.Push(0, recs, ff.conns, "v1", []byte("{}"))
	if len(outs) != 3 {
		t.Fatalf("outcomes = %d, want 3", len(outs))
	}
	for i, o := range outs {
		if o.Agent != recs[i].ID || !o.OK {
			t.Fatalf("outcome %d = %+v, want OK for %s (input order)", i, o, recs[i].ID)
		}
	}
}
