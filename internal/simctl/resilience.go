package simctl

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/driver"
	"lachesis/internal/simos"
)

// Error classification and chaos hooks for the simulated node. The adapter
// maps the simulated kernel's NotFoundError onto core.ErrEntityVanished so
// that translators and the middleware treat a killed simulated SPE thread
// exactly like a real exited thread returning ESRCH.

// classify maps simulated-kernel errors onto the core error taxonomy
// through the shared marking helpers in internal/driver.
func classify(err error) error {
	if err == nil {
		return nil
	}
	var nf *simos.NotFoundError
	if errors.As(err, &nf) {
		return driver.MarkVanished(err)
	}
	return err
}

// evictIfVanished drops cached state for a thread the kernel no longer
// knows, so a recycled tid never inherits stale cache entries. Callers
// hold a.mu.
func (a *OSAdapter) evictIfVanished(tid int, err error) {
	var nf *simos.NotFoundError
	if !errors.As(err, &nf) {
		return
	}
	delete(a.nices, tid)
	delete(a.placed, tid)
	delete(a.orig, tid)
}

var _ core.PlacementRestorer = (*OSAdapter)(nil)

// RestoreThread implements core.PlacementRestorer: it moves a thread back
// to the cgroup it lived in before Lachesis first moved it. Threads never
// moved by this adapter are left alone.
func (a *OSAdapter) RestoreThread(tid int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	orig, ok := a.orig[tid]
	if !ok {
		return nil
	}
	if err := a.kernel.MoveThread(simos.ThreadID(tid), orig); err != nil {
		a.evictIfVanished(tid, err)
		return classify(err)
	}
	delete(a.placed, tid)
	delete(a.orig, tid)
	a.countOp()
	return nil
}

// --- chaos agent ---

// ChaosEvent is one scripted fault action at a virtual time: killing an SPE
// thread, restarting it, toggling a fault-injection window, and so on. Do
// runs inside the simulation at (or just after) At.
type ChaosEvent struct {
	At   time.Duration
	Name string
	Do   func() error
}

// ChaosAgent replays a scripted fault timeline as a simulated thread, so
// chaos unfolds at deterministic virtual times interleaved with the
// middleware's own steps.
type ChaosAgent struct {
	events []ChaosEvent
	next   int

	// Applied counts events whose Do returned nil.
	Applied int
	// Errs retains failed events for diagnostics.
	Errs []error
}

// chaosStepCost is the simulated CPU charged per agent wakeup.
const chaosStepCost = 10 * time.Microsecond

// StartChaosAgent spawns a thread on kernel k that fires the given events
// in virtual-time order. Events are sorted by At; ties fire in input order.
func StartChaosAgent(k *simos.Kernel, events []ChaosEvent) (*ChaosAgent, error) {
	sorted := make([]ChaosEvent, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	agent := &ChaosAgent{events: sorted}
	cg, err := k.CreateCgroup(simos.RootCgroup, "chaos")
	if err != nil {
		return nil, fmt.Errorf("chaos cgroup: %w", err)
	}
	if _, err := k.Spawn("chaos", cg, simos.RunnerFunc(agent.run)); err != nil {
		return nil, fmt.Errorf("spawn chaos agent: %w", err)
	}
	return agent, nil
}

func (c *ChaosAgent) run(ctx *simos.RunContext, granted time.Duration) simos.Decision {
	now := ctx.Now()
	cost := chaosStepCost
	if cost > granted {
		cost = granted
	}
	for c.next < len(c.events) && c.events[c.next].At <= now {
		ev := c.events[c.next]
		c.next++
		if err := ev.Do(); err != nil {
			c.Errs = append(c.Errs, fmt.Errorf("chaos event %q at %v: %w", ev.Name, ev.At, err))
			continue
		}
		c.Applied++
	}
	if c.next >= len(c.events) {
		return simos.Decision{Used: cost, Action: simos.ActionExit}
	}
	return simos.Decision{Used: cost, Action: simos.ActionSleep, WakeAt: c.events[c.next].At}
}
