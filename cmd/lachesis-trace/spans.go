package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"lachesis/internal/span"
)

// runSpans is the -spans mode: merge span JSONL files (possibly from
// several processes), rebuild the causal trees, and print each trace
// with its critical path attributed phase by phase.
func runSpans(paths []string, traceID string, w io.Writer) error {
	var all []span.Span
	var triggers []span.Trigger
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		spans, trips, err := span.ReadSpans(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		all = append(all, spans...)
		triggers = append(triggers, trips...)
	}
	// A flight bundle tripped before any span completed carries only its
	// trigger line; that is still worth printing, not an error.
	if len(all) == 0 && len(triggers) == 0 {
		return fmt.Errorf("no spans in %s", strings.Join(paths, ","))
	}

	roots := span.BuildTrees(all)
	if traceID != "" {
		roots = span.FilterTrace(roots, traceID)
		if len(roots) == 0 {
			return fmt.Errorf("trace %s not found (have %d spans)", traceID, len(all))
		}
	}

	// Flight bundles carry the trigger that tripped the recorder; lead
	// with it so the reader knows why this dump exists.
	for _, tr := range triggers {
		fmt.Fprintf(w, "trigger %s at %v: %s", tr.Kind, tr.At, tr.Detail)
		if tr.Trace != "" {
			fmt.Fprintf(w, " (trace %s)", tr.Trace)
		}
		fmt.Fprintln(w)
	}

	lastTrace := ""
	for _, r := range roots {
		if r.Trace != lastTrace {
			fmt.Fprintf(w, "trace %s\n", r.Trace)
			lastTrace = r.Trace
		}
		printTree(w, r, 1)
		path := span.CriticalPath(r)
		if len(path) > 1 {
			fmt.Fprintf(w, "  critical path (%v):\n", r.Wall)
			for _, pc := range span.Attribution(path) {
				fmt.Fprintf(w, "    %-24s wall %-12v self %v\n", pc.Name, pc.Wall, pc.Self)
			}
		}
	}
	fmt.Fprintf(w, "%d spans, %d traces\n", len(all), countTraces(roots))
	return nil
}

// printTree renders one span subtree, two spaces per depth level.
func printTree(w io.Writer, n *span.Node, depth int) {
	fmt.Fprintf(w, "%s%s", strings.Repeat("  ", depth), n.Name)
	if n.Process != "" {
		fmt.Fprintf(w, " [%s]", n.Process)
	}
	fmt.Fprintf(w, " %v", n.Wall)
	if n.Err != "" {
		fmt.Fprintf(w, " err=%q", n.Err)
	}
	fmt.Fprintln(w)
	for _, c := range n.Children {
		printTree(w, c, depth+1)
	}
}

// countTraces counts the distinct trace IDs among the roots.
func countTraces(roots []*span.Node) int {
	seen := map[string]bool{}
	for _, r := range roots {
		seen[r.Trace] = true
	}
	return len(seen)
}
