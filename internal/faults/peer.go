package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lachesis/internal/driver"
	"lachesis/internal/fleet"
)

// PeerPlan configures a fault-injecting wrapper around a
// fleet.PeerClient: one coordinator's flaky view of another. It drives
// the HA failure modes the failover experiment needs — a dead or
// partitioned leader (Partitions), a standby that loses only lease
// observation (LeaseLoss: GET /lease fails while replication still
// flows), and replication lag (ReplicationLag: checkpoints dropped
// while the lease stays observable, so a promoting standby resumes
// from slightly stale state and must rely on the idempotent 409
// handshake). Windows run on virtual time, so failover chaos replays
// deterministically.
type PeerPlan struct {
	// Seed drives all probabilistic faults (0 is a valid seed).
	Seed int64
	// FailRate is the probability in [0,1] that any one call fails with
	// a transient transport error.
	FailRate float64
	// Partitions are virtual-time windows during which every call fails —
	// the inter-coordinator link is down.
	Partitions Windows
	// LeaseLoss are windows during which only Lease() fails: the standby
	// goes blind on leader liveness while checkpoints still arrive.
	LeaseLoss Windows
	// ReplicationLag are windows during which only Replicate() fails:
	// checkpoints are dropped, the standby's state falls behind while the
	// lease stays fresh.
	ReplicationLag Windows
	// Clock supplies virtual time for window checks (nil = all windows
	// inactive unless they contain 0).
	Clock func() time.Duration
}

// Peer wraps a fleet.PeerClient with the faults of a PeerPlan.
type Peer struct {
	inner fleet.PeerClient
	plan  PeerPlan

	mu       sync.Mutex
	rng      *rand.Rand
	calls    int
	injected int
}

var _ fleet.PeerClient = (*Peer)(nil)

// WrapPeer wraps a peer client with a fault plan.
func WrapPeer(inner fleet.PeerClient, plan PeerPlan) *Peer {
	return &Peer{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Lease implements fleet.PeerClient.
func (p *Peer) Lease() (fleet.LeaseInfo, error) {
	if err := p.gate("lease", p.plan.LeaseLoss); err != nil {
		return fleet.LeaseInfo{}, err
	}
	return p.inner.Lease()
}

// Replicate implements fleet.PeerClient.
func (p *Peer) Replicate(cp fleet.Checkpoint) error {
	if err := p.gate("replicate", p.plan.ReplicationLag); err != nil {
		return err
	}
	return p.inner.Replicate(cp)
}

// Injected returns how many calls this wrapper failed.
func (p *Peer) Injected() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// Calls returns how many calls the wrapper saw.
func (p *Peer) Calls() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// gate applies the plan to one call: a partition, the call-specific
// window, or a probabilistic failure returns a transient error.
func (p *Peer) gate(op string, specific Windows) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	var now time.Duration
	if p.plan.Clock != nil {
		now = p.plan.Clock()
	}
	kind := ""
	switch {
	case p.plan.Partitions.Contains(now):
		kind = "partitioned"
	case specific.Contains(now):
		kind = op + "-window"
	case p.plan.FailRate > 0 && p.rng.Float64() < p.plan.FailRate:
		kind = "flaky"
	}
	if kind == "" {
		return nil
	}
	p.injected++
	return driver.MarkTransient(fmt.Errorf("%w: peer %s (%s)", ErrInjected, kind, op))
}
