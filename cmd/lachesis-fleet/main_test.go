package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"lachesis/internal/driver"
	"lachesis/internal/fleet"
	"lachesis/internal/guard"
	"lachesis/internal/reconcile"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-tick", "0s"},
		{"-heartbeat", "-1s"},
		{"-canary-fraction", "1.5"},
		{"-canary-fraction", "0"},
		{"-suspect-after", "0"},
		{"-suspect-after", "5", "-evict-after", "5"},
		{"-window", "0"},
		{"-push-ticks", "-1"},
	}
	for _, args := range cases {
		var errBuf bytes.Buffer
		sigs := make(chan os.Signal, 1)
		if err := run(args, &bytes.Buffer{}, &errBuf, sigs); err == nil {
			t.Errorf("run(%v) succeeded, want fail-fast validation error", args)
		}
	}
}

func TestRunIterationsBoundedExit(t *testing.T) {
	var out, errBuf bytes.Buffer
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	dir := t.TempDir()
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-tick", "5ms", "-iterations", "3",
			"-pprof", "-span-log", dir + "/spans.jsonl", "-flight-dir", dir,
		}, &out, &errBuf, sigs)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run = %v\nstderr: %s", err, errBuf.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not exit after -iterations ticks")
	}
	if !strings.Contains(errBuf.String(), "listening on") {
		t.Fatalf("stderr missing listen line: %s", errBuf.String())
	}
}

// policyAgent is a minimal fake lachesisd policy surface over HTTP.
type policyAgent struct {
	mu        sync.Mutex
	proposals []string
	st        guard.Status
	srv       *httptest.Server
}

func newPolicyAgent(t *testing.T) *policyAgent {
	t.Helper()
	a := &policyAgent{}
	mux := http.NewServeMux()
	mux.HandleFunc("/policy", func(w http.ResponseWriter, r *http.Request) {
		a.mu.Lock()
		defer a.mu.Unlock()
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, a.st)
		case http.MethodPost:
			buf := new(bytes.Buffer)
			_, _ = buf.ReadFrom(r.Body)
			a.proposals = append(a.proposals, buf.String())
			writeJSON(w, http.StatusAccepted, a.st)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("lachesis_node_latency_p95 1\nlachesis_node_throughput 100\n"))
	})
	a.srv = httptest.NewServer(mux)
	t.Cleanup(a.srv.Close)
	return a
}

func (a *policyAgent) addr() string { return strings.TrimPrefix(a.srv.URL, "http://") }
func (a *policyAgent) proposalCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.proposals)
}
func (a *policyAgent) lastProposal() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.proposals) == 0 {
		return ""
	}
	return a.proposals[len(a.proposals)-1]
}

func quickDaemon(conns fleet.ConnFactory) *fleetDaemon {
	return newFleetDaemon(fleetOptions{
		registry: fleet.RegistryConfig{HeartbeatInterval: time.Second},
		rollout: fleet.RolloutConfig{
			CanaryFraction: 0.34, Waves: 2, WindowTicks: 1, PushTicks: 1,
			Fanout: fleet.FanoutConfig{Attempts: 1, Sleep: func(time.Duration) {}},
		},
		conns: conns,
	})
}

func TestCoordinatorEndToEndOverHTTP(t *testing.T) {
	agents := map[string]*policyAgent{
		"n1": newPolicyAgent(t), "n2": newPolicyAgent(t), "n3": newPolicyAgent(t),
	}
	d := quickDaemon(fleet.HTTPConnFactory(time.Second))
	srv := httptest.NewServer(d.handler())
	defer srv.Close()

	// Agents register and heartbeat through the wire API.
	for id, a := range agents {
		body, _ := json.Marshal(fleet.RegisterRequest{ID: id, Addr: a.addr()})
		resp, err := http.Post(srv.URL+"/register", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var rr fleet.RegisterResponse
		_ = json.NewDecoder(resp.Body).Decode(&rr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || rr.Generation != 1 || rr.IntervalMs != 1000 {
			t.Fatalf("register %s = %d %+v", id, resp.StatusCode, rr)
		}
		hb, _ := json.Marshal(fleet.HeartbeatRequest{ID: id})
		resp, err = http.Post(srv.URL+"/heartbeat", "application/json", bytes.NewReader(hb))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("heartbeat %s = %d", id, resp.StatusCode)
		}
	}
	hb, _ := json.Marshal(fleet.HeartbeatRequest{ID: "ghost"})
	resp, err := http.Post(srv.URL+"/heartbeat", "application/json", bytes.NewReader(hb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown heartbeat = %d, want 404 (re-register signal)", resp.StatusCode)
	}

	// Propose a fleet-wide policy and drive the coordinator to promotion.
	payload := `{"priorities":{"q1":2}}`
	resp, err = http.Post(srv.URL+"/fleet/policy?version=v2", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /fleet/policy = %d, want 202", resp.StatusCode)
	}
	// A second proposal during the rollout conflicts.
	resp, err = http.Post(srv.URL+"/fleet/policy", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent POST /fleet/policy = %d, want 409", resp.StatusCode)
	}

	for i := 0; i < 30 && d.co.Status().Active; i++ {
		d.tick()
	}
	st := d.co.Status()
	if st.LastDecision != guard.DecisionPromoted {
		t.Fatalf("rollout = %+v, want promoted", st)
	}
	for id, a := range agents {
		if a.proposalCount() != 1 || a.lastProposal() != payload {
			t.Fatalf("agent %s proposals = %d (%q), want the fleet payload once",
				id, a.proposalCount(), a.lastProposal())
		}
	}

	// Health and metrics expose the fleet state.
	resp, err = http.Get(srv.URL + "/fleet/health")
	if err != nil {
		t.Fatal(err)
	}
	var h fleetHealth
	_ = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Agents[fleet.LeaseActive] != 3 {
		t.Fatalf("health = %d %+v", resp.StatusCode, h)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), fleet.MetricFleetAgents) ||
		!strings.Contains(buf.String(), fleet.MetricFleetPushesTotal) {
		t.Fatalf("metrics missing fleet instruments:\n%s", buf.String())
	}
}

// memAgent is an in-process fleet.AgentClient for restart tests.
type memAgent struct {
	mu        sync.Mutex
	proposals []string
	down      bool
}

func (m *memAgent) Propose(p []byte) (guard.Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return guard.Status{}, driver.MarkTransient(errors.New("down"))
	}
	m.proposals = append(m.proposals, string(p))
	return guard.Status{}, nil
}
func (m *memAgent) Status() (guard.Status, error) { return guard.Status{}, nil }
func (m *memAgent) SLO() (guard.SLOSample, error) {
	return guard.SLOSample{LatencyP95: 1, Throughput: 100, OK: true}, nil
}
func (m *memAgent) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.proposals)
}

func TestCoordinatorWarmRestartMidRollout(t *testing.T) {
	mfs := reconcile.NewMemFS()
	agents := map[string]*memAgent{"n1": {}, "n2": {}, "n3": {}}
	conns := func(a fleet.AgentRecord) fleet.AgentClient { return agents[a.ID] }

	d1 := quickDaemon(conns)
	if err := d1.attachState(fleet.NewStore(mfs, nil), reconcile.NewStore(mfs, nil)); err != nil {
		t.Fatal(err)
	}
	for id := range agents {
		if _, err := d1.reg.Register(d1.now(), id, id+":1"); err != nil {
			t.Fatal(err)
		}
	}
	if err := d1.propose("v2", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	d1.tick() // canary staged; registry + rollout persisted — then "crash"

	d2 := quickDaemon(conns)
	if err := d2.attachState(fleet.NewStore(mfs, nil), reconcile.NewStore(mfs, nil)); err != nil {
		t.Fatal(err)
	}
	if got := len(d2.reg.Agents()); got != 3 {
		t.Fatalf("restarted registry has %d agents, want 3", got)
	}
	st := d2.co.Status()
	if !st.Active || st.Version != "v2" {
		t.Fatalf("restarted rollout = %+v, want active v2", st)
	}
	// The restarted coordinator does not know the pending payload (it
	// died before promotion), so the rollout must still converge and no
	// agent may be pushed twice.
	for i := 0; i < 30 && d2.co.Status().Active; i++ {
		d2.tick()
	}
	if st := d2.co.Status(); st.LastDecision != guard.DecisionPromoted {
		t.Fatalf("rollout after restart = %+v, want promoted", st)
	}
	for id, a := range agents {
		if a.count() != 1 {
			t.Fatalf("agent %s pushed %d times across restart, want once", id, a.count())
		}
	}
}
