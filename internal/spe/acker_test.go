package spe

import (
	"strings"
	"testing"
	"time"

	"lachesis/internal/simos"
)

func TestAckerThreadProcessesAcks(t *testing.T) {
	k := simos.New(simos.Config{CPUs: 2})
	e := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm, AckerThreads: true})
	d := deploy(t, e, pipelineQuery(t, "q", 100*time.Microsecond, 1.0), NewRateSource(500, nil))
	k.RunUntil(5 * time.Second)

	var acker *PhysicalOp
	for _, op := range d.Ops() {
		if strings.Contains(op.Name(), ackerOpName) {
			acker = op
		}
	}
	if acker == nil {
		t.Fatal("acker operator missing")
	}
	if acker.ThreadID() == 0 {
		t.Fatal("acker has no dedicated thread")
	}
	snap := acker.Snapshot(k.Now())
	// ~500 t/s, each tuple moves through ingress + 2 pushes: ~1500 acks/s.
	if snap.Ingested < 6500 || snap.Ingested > 8500 {
		t.Errorf("acker processed %d acks in 5s, want ~7500", snap.Ingested)
	}
	// The query itself is unaffected.
	if got := d.EgressCount(); got < 2400 {
		t.Errorf("egress = %d, want ~2500", got)
	}
	if k.ContractViolations() != 0 {
		t.Errorf("contract violations: %d", k.ContractViolations())
	}
}

func TestAckerOnlyForStormWhenEnabled(t *testing.T) {
	k := simos.New(simos.Config{CPUs: 2})
	// Flink flavor: no acker even when requested.
	e := newEngine(t, k, Config{Name: "flink", Flavor: FlavorFlink, AckerThreads: true})
	d := deploy(t, e, pipelineQuery(t, "q", 100*time.Microsecond, 1.0), NewRateSource(100, nil))
	for _, op := range d.Ops() {
		if strings.Contains(op.Name(), ackerOpName) {
			t.Fatal("flink deployment must not get an acker")
		}
	}
	// Storm without the flag: no acker either.
	e2 := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm})
	d2 := deploy(t, e2, pipelineQuery(t, "q2", 100*time.Microsecond, 1.0), NewRateSource(100, nil))
	if got := len(d2.Ops()); got != 3 {
		t.Errorf("ops = %d, want 3 without acker", got)
	}
}

func TestAckerIsSchedulableEntity(t *testing.T) {
	// The acker must be reniceable like any operator (footnote 3).
	k := simos.New(simos.Config{CPUs: 2})
	e := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm, AckerThreads: true})
	d := deploy(t, e, pipelineQuery(t, "q", 100*time.Microsecond, 1.0), NewRateSource(200, nil))
	for _, op := range d.PhysicalFor(ackerOpName) {
		if err := k.SetNice(op.ThreadID(), 15); err != nil {
			t.Fatalf("renice acker: %v", err)
		}
		if n, _ := k.Nice(op.ThreadID()); n != 15 {
			t.Errorf("acker nice = %d", n)
		}
	}
}
