package window

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTumblingEmitsEverySize(t *testing.T) {
	w, err := NewTumbling(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var emits []float64
	for i := 1; i <= 12; i++ {
		if v, ok := w.Add(float64(i)); ok {
			emits = append(emits, v)
		}
	}
	want := []float64{2.5, 6.5, 10.5}
	if len(emits) != len(want) {
		t.Fatalf("emits = %v", emits)
	}
	for i := range want {
		if emits[i] != want[i] {
			t.Errorf("emit %d = %v, want %v", i, emits[i], want[i])
		}
	}
	if w.Emitted() != 3 || w.Len() != 0 {
		t.Errorf("emitted=%d len=%d", w.Emitted(), w.Len())
	}
}

func TestTumblingMaxAggregate(t *testing.T) {
	w, err := NewTumbling(3, Max)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(5)
	w.Add(9)
	v, ok := w.Add(2)
	if !ok || v != 9 {
		t.Errorf("max = (%v,%v)", v, ok)
	}
	if _, err := NewTumbling(0, nil); err == nil {
		t.Error("size 0 should fail")
	}
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Error("empty folds should be 0")
	}
}

func TestSlidingWindowMeans(t *testing.T) {
	w, err := NewSliding(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var emits []float64
	for i := 1; i <= 10; i++ {
		if v, ok := w.Add(float64(i)); ok {
			emits = append(emits, v)
		}
	}
	// Windows: [1..4]=2.5, [3..6]=4.5, [5..8]=6.5, [7..10]=8.5.
	want := []float64{2.5, 4.5, 6.5, 8.5}
	if len(emits) != len(want) {
		t.Fatalf("emits = %v", emits)
	}
	for i := range want {
		if math.Abs(emits[i]-want[i]) > 1e-9 {
			t.Errorf("emit %d = %v, want %v", i, emits[i], want[i])
		}
	}
	if _, err := NewSliding(2, 3); err == nil {
		t.Error("slide > size should fail")
	}
}

func TestQuickSlidingMatchesNaive(t *testing.T) {
	// Property: incremental sliding mean equals the naive recomputation.
	err := quick.Check(func(seed int64, sizeRaw, slideRaw uint8) bool {
		size := int(sizeRaw%20) + 1
		slide := int(slideRaw)%size + 1
		w, err := NewSliding(size, slide)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var history []float64
		for i := 0; i < 200; i++ {
			v := rng.Float64() * 100
			history = append(history, v)
			got, ok := w.Add(v)
			wantOK := len(history) >= size && (len(history)-size)%slide == 0
			if ok != wantOK {
				return false
			}
			if ok {
				want := Mean(history[len(history)-size:])
				if math.Abs(got-want) > 1e-6 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestKalmanConvergesToConstant(t *testing.T) {
	k, err := NewKalman(1e-4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var last float64
	for i := 0; i < 5000; i++ {
		last = k.Update(42 + rng.NormFloat64())
	}
	if math.Abs(last-42) > 0.5 {
		t.Errorf("kalman estimate = %v, want ~42", last)
	}
	if math.Abs(k.Estimate()-last) > 1e-12 {
		t.Error("Estimate should return the latest state")
	}
	if _, err := NewKalman(0, 1); err == nil {
		t.Error("zero noise should fail")
	}
}

func TestKalmanSmoothsNoise(t *testing.T) {
	k, _ := NewKalman(1e-3, 1.0)
	rng := rand.New(rand.NewSource(4))
	var rawVar, filtVar float64
	prevRaw, prevFilt := 0.0, 0.0
	for i := 0; i < 10000; i++ {
		raw := 10 + rng.NormFloat64()
		filt := k.Update(raw)
		if i > 100 {
			rawVar += (raw - prevRaw) * (raw - prevRaw)
			filtVar += (filt - prevFilt) * (filt - prevFilt)
		}
		prevRaw, prevFilt = raw, filt
	}
	if filtVar >= rawVar/4 {
		t.Errorf("filter should smooth: filt step var %v vs raw %v", filtVar, rawVar)
	}
}

func TestRegressionRecoversLine(t *testing.T) {
	r, err := NewRegression(50)
	if err != nil {
		t.Fatal(err)
	}
	var a, b float64
	var ok bool
	for i := 0; i < 200; i++ {
		x := float64(i)
		a, b, ok = r.Add(x, 3+2*x)
	}
	if !ok || math.Abs(a-3) > 1e-6 || math.Abs(b-2) > 1e-9 {
		t.Errorf("fit = (%v, %v, %v), want (3, 2)", a, b, ok)
	}
	if _, err := NewRegression(1); err == nil {
		t.Error("size 1 should fail")
	}
}

func TestRegressionDegenerateX(t *testing.T) {
	r, _ := NewRegression(4)
	var a, b float64
	var ok bool
	for i := 0; i < 4; i++ {
		a, b, ok = r.Add(5, float64(i)) // constant x
	}
	if !ok || b != 0 || math.Abs(a-1.5) > 1e-9 {
		t.Errorf("degenerate fit = (%v,%v,%v), want mean 1.5 slope 0", a, b, ok)
	}
}
