package spe

import (
	"testing"
	"time"

	"lachesis/internal/simos"
)

func TestStopQueryOSThreads(t *testing.T) {
	k := newTestKernel(t)
	e := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm})
	d1 := deploy(t, e, pipelineQuery(t, "keep", 100*time.Microsecond, 1), NewRateSource(300, nil))
	d2 := deploy(t, e, pipelineQuery(t, "gone", 100*time.Microsecond, 1), NewRateSource(300, nil))
	k.RunUntil(3 * time.Second)
	if len(e.Ops()) != 6 {
		t.Fatalf("ops = %d", len(e.Ops()))
	}

	d2.Stop()
	frozen := d2.EgressCount()
	k.RunUntil(10 * time.Second)

	if got := len(e.Ops()); got != 3 {
		t.Errorf("ops after stop = %d, want 3", got)
	}
	if d2.EgressCount() > frozen+2 {
		t.Errorf("stopped query advanced: %d -> %d", frozen, d2.EgressCount())
	}
	// Stopped threads exit so their CPU time freezes.
	for _, p := range d2.Ops() {
		info, err := k.ThreadInfo(p.ThreadID())
		if err != nil {
			t.Fatal(err)
		}
		if info.Alive {
			t.Errorf("thread of %s still alive after stop", p.Name())
		}
	}
	if d1.EgressCount() < 2800 {
		t.Errorf("survivor egress = %d", d1.EgressCount())
	}
	if !d2.Stopped() || d1.Stopped() {
		t.Error("Stopped flags wrong")
	}
}

func TestStopQueryWorkerPool(t *testing.T) {
	k := newTestKernel(t)
	e := newEngine(t, k, Config{
		Name: "liebre", Flavor: FlavorLiebre,
		Mode: ModeWorkerPool, Scheduler: &greedyScheduler{}, Workers: 2,
	})
	d1 := deploy(t, e, pipelineQuery(t, "keep", 100*time.Microsecond, 1), NewRateSource(300, nil))
	d2 := deploy(t, e, pipelineQuery(t, "gone", 100*time.Microsecond, 1), NewRateSource(300, nil))
	k.RunUntil(3 * time.Second)
	d2.Stop()
	frozen := d2.EgressCount()
	k.RunUntil(10 * time.Second)
	if d2.EgressCount() > frozen+2 {
		t.Errorf("stopped pooled query advanced: %d -> %d", frozen, d2.EgressCount())
	}
	if d1.EgressCount() < 2800 {
		t.Errorf("survivor egress = %d", d1.EgressCount())
	}
	if k.ContractViolations() != 0 {
		t.Errorf("contract violations: %d", k.ContractViolations())
	}
}

func TestKindAndFlavorStrings(t *testing.T) {
	tests := map[string]string{
		KindTransform.String(): "transform",
		KindIngress.String():   "ingress",
		KindEgress.String():    "egress",
		OpKind(99).String():    "OpKind(99)",
		FlavorStorm.String():   "storm",
		FlavorFlink.String():   "flink",
		FlavorLiebre.String():  "liebre",
		Flavor(99).String():    "Flavor(99)",
	}
	for got, want := range tests {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestSnapshotFields(t *testing.T) {
	k := newTestKernel(t)
	e := newEngine(t, k, Config{Name: "liebre", Flavor: FlavorLiebre})
	d := deploy(t, e, pipelineQuery(t, "q", 200*time.Microsecond, 2), NewRateSource(400, nil))
	k.RunUntil(5 * time.Second)
	work := d.PhysicalFor("work")[0]
	snap := work.Snapshot(k.Now())
	if snap.Query != "q" || snap.Kind != KindTransform || snap.Replica != 0 {
		t.Errorf("identity fields: %+v", snap)
	}
	if snap.InCount == 0 || snap.OutCount < snap.InCount {
		t.Errorf("counts: in=%d out=%d (sel 2)", snap.InCount, snap.OutCount)
	}
	if snap.Busy <= 0 {
		t.Error("busy time missing")
	}
	if snap.CostHint != 200*time.Microsecond || snap.SelectivityHint != 2 {
		t.Errorf("hints: %v %v", snap.CostHint, snap.SelectivityHint)
	}
	if len(snap.Downstream) != 1 {
		t.Errorf("downstream: %v", snap.Downstream)
	}
	// The engine accessors.
	if e.Name() != "liebre" || e.Flavor() != FlavorLiebre || e.Kernel() != k {
		t.Error("engine accessors wrong")
	}
	if e.Cgroup() == simos.RootCgroup {
		t.Error("engine must have its own cgroup")
	}
	if len(e.Deployments()) != 1 {
		t.Errorf("deployments = %d", len(e.Deployments()))
	}
}

func TestIngressSnapshotBacklog(t *testing.T) {
	// An ingress that cannot keep up with the source accumulates external
	// backlog, visible via QueueLen and OldestWait on the ingress itself.
	k := simos.New(simos.Config{CPUs: 1})
	e := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm})
	q := NewQuery("q")
	q.MustAddOp(&LogicalOp{Name: "src", Kind: KindIngress, Cost: 2 * time.Millisecond, Selectivity: 1})
	q.MustAddOp(&LogicalOp{Name: "sink", Kind: KindEgress, Cost: 10 * time.Microsecond})
	if err := q.Pipeline("src", "sink"); err != nil {
		t.Fatal(err)
	}
	d := deploy(t, e, q, NewRateSource(1000, nil))
	k.RunUntil(2 * time.Second)
	ing := d.Ingresses()[0]
	if got := ing.QueueLen(k.Now()); got < 100 {
		t.Errorf("ingress backlog = %d, want large", got)
	}
	if got := ing.OldestWait(k.Now()); got < 100*time.Millisecond {
		t.Errorf("ingress oldest wait = %v, want large", got)
	}
}
