package core

import (
	"errors"
	"testing"
)

// failingLogicalPolicy always errors.
type failingLogicalPolicy struct{}

func (failingLogicalPolicy) Name() string      { return "boom" }
func (failingLogicalPolicy) Metrics() []string { return []string{MetricQueueSize} }
func (failingLogicalPolicy) ScheduleLogical(*View) (LogicalSchedule, Scale, error) {
	return nil, 0, errors.New("boom")
}

func TestTransformedPropagatesErrors(t *testing.T) {
	p := Transformed(failingLogicalPolicy{}, nil)
	if _, err := p.Schedule(viewWith(nil, nil)); err == nil {
		t.Error("logical policy error must propagate")
	}
	if got := p.Metrics(); len(got) != 1 || got[0] != MetricQueueSize {
		t.Errorf("metrics passthrough = %v", got)
	}
}

func TestGroupPerQueryPropagatesErrors(t *testing.T) {
	p := GroupPerQuery(erroringPolicy{})
	if _, err := p.Schedule(viewWith(nil, nil)); err == nil {
		t.Error("inner policy error must propagate")
	}
}

func TestMaxPriorityRuleSkipsUnknownLogical(t *testing.T) {
	ents := map[string]Entity{
		"known":   {Name: "known", Logical: []string{"a"}},
		"unknown": {Name: "unknown", Logical: []string{"zzz"}},
		"empty":   {Name: "empty"},
	}
	out := MaxPriorityRule(LogicalSchedule{"a": 5}, ents)
	if out["known"] != 5 {
		t.Errorf("known = %v", out["known"])
	}
	if _, ok := out["unknown"]; ok {
		t.Error("entity with no scheduled logical ops must be omitted")
	}
	if _, ok := out["empty"]; ok {
		t.Error("entity without logical ops must be omitted")
	}
}

func TestStaticLogicalPolicyDefaults(t *testing.T) {
	lp := &StaticLogicalPolicy{Priorities: LogicalSchedule{"a": 9}, Default: 2}
	if lp.Name() != "static" {
		t.Errorf("default name = %q", lp.Name())
	}
	ents := map[string]Entity{
		"x": {Name: "x", Logical: []string{"a", "b"}},
	}
	sched, scale, err := lp.ScheduleLogical(viewWith(ents, nil))
	if err != nil {
		t.Fatal(err)
	}
	if scale != ScaleLinear {
		t.Errorf("scale = %v", scale)
	}
	if sched["a"] != 9 || sched["b"] != 2 {
		t.Errorf("schedule = %v", sched)
	}
}
