package span

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is a deterministic wall clock advancing 1ms per call.
func testClock() func() time.Time {
	var mu sync.Mutex
	t := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func newTestRecorder(capacity int, sink Sink) *Recorder {
	return New(Config{Capacity: capacity, Process: "test", Seed: 42, Clock: testClock(), Sink: sink})
}

func TestRootAndChildLinkage(t *testing.T) {
	r := newTestRecorder(0, nil)
	root := r.StartRoot(time.Second, "cycle")
	child := r.StartChild(root.Context(), time.Second, "fetch")
	child.SetAttr("driver", "node")
	child.End(nil)
	root.End(errors.New("boom"))

	spans := r.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	c, ro := spans[0], spans[1]
	if c.Trace != ro.Trace {
		t.Fatalf("child trace %q != root trace %q", c.Trace, ro.Trace)
	}
	if c.Parent != ro.ID {
		t.Fatalf("child parent %q, want root id %q", c.Parent, ro.ID)
	}
	if len(c.Trace) != 32 || len(c.ID) != 16 {
		t.Fatalf("malformed ids: trace %q id %q", c.Trace, c.ID)
	}
	if c.Attrs.Get("driver") != "node" {
		t.Fatalf("attrs = %v", c.Attrs)
	}
	if ro.Err != "boom" {
		t.Fatalf("root err = %q", ro.Err)
	}
	if c.Wall <= 0 || ro.Wall <= 0 {
		t.Fatalf("non-positive walls: %v %v", c.Wall, ro.Wall)
	}
	if ro.Process != "test" {
		t.Fatalf("process = %q", ro.Process)
	}
	if r.LastTrace() != ro.Trace {
		t.Fatalf("LastTrace = %q, want %q", r.LastTrace(), ro.Trace)
	}
}

func TestChildOfInvalidContextStartsFreshTrace(t *testing.T) {
	r := newTestRecorder(0, nil)
	a := r.StartChild(Context{}, 0, "orphan")
	a.End(nil)
	sp := r.Snapshot()[0]
	if sp.Parent != "" || len(sp.Trace) != 32 {
		t.Fatalf("orphan span = %+v", sp)
	}
}

func TestRingBoundsAndOrder(t *testing.T) {
	r := newTestRecorder(4, nil)
	for i := 0; i < 10; i++ {
		a := r.StartRoot(time.Duration(i), fmt.Sprintf("s%d", i))
		a.End(nil)
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	spans := r.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := fmt.Sprintf("s%d", 6+i); sp.Name != want {
			t.Fatalf("span %d = %q, want %q", i, sp.Name, want)
		}
	}
	last := r.Last(2)
	if len(last) != 2 || last[0].Name != "s8" || last[1].Name != "s9" {
		t.Fatalf("Last(2) = %v", last)
	}
}

func TestTraceSpans(t *testing.T) {
	r := newTestRecorder(0, nil)
	a := r.StartRoot(0, "a")
	b := r.StartRoot(0, "b")
	r.StartChild(a.Context(), 0, "a.child").End(nil)
	a.End(nil)
	b.End(nil)
	got := r.TraceSpans(a.Context().Trace)
	if len(got) != 2 {
		t.Fatalf("got %d spans for trace a, want 2", len(got))
	}
	for _, sp := range got {
		if sp.Trace != a.Context().Trace {
			t.Fatalf("wrong trace on %+v", sp)
		}
	}
}

func TestIDUniqueness(t *testing.T) {
	r := newTestRecorder(0, nil)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		a := r.StartRoot(0, "s")
		ctx := a.Context()
		if seen[ctx.Trace] || seen[ctx.Span] {
			t.Fatalf("duplicate id at %d", i)
		}
		seen[ctx.Trace] = true
		seen[ctx.Span] = true
	}
}

func TestNilRecorderAndActiveAreInert(t *testing.T) {
	var r *Recorder
	a := r.StartRoot(0, "x")
	if a != nil {
		t.Fatal("nil recorder minted a span")
	}
	a.SetAttr("k", "v")
	a.End(nil)
	if a.Context().Valid() {
		t.Fatal("nil active has a valid context")
	}
	if r.Total() != 0 || r.LastTrace() != "" || r.Snapshot() != nil || r.Last(5) != nil {
		t.Fatal("nil recorder not inert")
	}
	c := r.StartChild(Context{}, 0, "y")
	if c != nil {
		t.Fatal("nil recorder minted a child")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	r := newTestRecorder(0, nil)
	a := r.StartRoot(0, "x")
	tp := a.Context().Traceparent()
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent = %q", tp)
	}
	got, ok := ParseTraceparent(tp)
	if !ok || got != a.Context() {
		t.Fatalf("round trip: %v %v, want %v", got, ok, a.Context())
	}
	for _, bad := range []string{
		"", "00-zz-xx-01", "01-" + a.Context().Trace + "-" + a.Context().Span + "-01",
		"00-" + strings.Repeat("0", 32) + "-" + a.Context().Span + "-01",
		"00-" + a.Context().Trace + "-" + a.Context().Span,
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("accepted malformed traceparent %q", bad)
		}
	}
	if (Context{}).Traceparent() != "" {
		t.Fatal("invalid context rendered a traceparent")
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	r := newTestRecorder(0, sink)
	root := r.StartRoot(time.Second, "cycle")
	r.StartChild(root.Context(), time.Second, "apply").End(nil)
	root.End(nil)
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	spans, triggers, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || len(triggers) != 0 {
		t.Fatalf("read %d spans %d triggers", len(spans), len(triggers))
	}
	if spans[0].Name != "apply" || spans[1].Name != "cycle" {
		t.Fatalf("spans = %v", spans)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := newTestRecorder(256, &MemorySink{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				root := r.StartRoot(time.Duration(i), "cycle")
				c := r.StartChild(root.Context(), time.Duration(i), "child")
				c.SetAttr("g", fmt.Sprint(g))
				c.End(nil)
				root.End(nil)
				_ = r.Last(8)
				_ = r.LastTrace()
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 1600 {
		t.Fatalf("total = %d, want 1600", r.Total())
	}
}

func TestFlightRecorderDumpAndCap(t *testing.T) {
	dir := t.TempDir()
	r := newTestRecorder(0, nil)
	root := r.StartRoot(5*time.Second, "cycle")
	r.StartChild(root.Context(), 5*time.Second, "apply").End(errors.New("blocked"))
	root.End(nil)

	f := NewFlightRecorder(r, filepath.Join(dir, "dumps"), 2)
	path, err := f.Trip(Trigger{At: 5 * time.Second, Kind: TriggerGuardBlock, Detail: "nice out of bounds"})
	if err != nil {
		t.Fatal(err)
	}
	if path == "" || f.LastDump() != path {
		t.Fatalf("path = %q lastDump = %q", path, f.LastDump())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spans, triggers, err := ReadSpans(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(triggers) != 1 || triggers[0].Kind != TriggerGuardBlock {
		t.Fatalf("triggers = %v", triggers)
	}
	if triggers[0].Trace != root.Context().Trace {
		t.Fatalf("trigger trace = %q, want last root %q", triggers[0].Trace, root.Context().Trace)
	}
	if len(spans) != 2 {
		t.Fatalf("bundle holds %d spans, want 2", len(spans))
	}

	// The cap: dump 2 is written, dump 3 is counted but dropped.
	if p, err := f.Trip(Trigger{Kind: TriggerWatchdog}); err != nil || p == "" {
		t.Fatalf("second dump: %q %v", p, err)
	}
	if p, err := f.Trip(Trigger{Kind: TriggerWatchdog}); err != nil || p != "" {
		t.Fatalf("capped dump: %q %v", p, err)
	}
	if f.Trips() != 3 {
		t.Fatalf("trips = %d", f.Trips())
	}
	entries, _ := os.ReadDir(filepath.Join(dir, "dumps"))
	if len(entries) != 2 {
		t.Fatalf("%d bundle files, want 2", len(entries))
	}

	// Nil flight recorder is inert.
	var nilF *FlightRecorder
	if p, err := nilF.Trip(Trigger{}); p != "" || err != nil || nilF.Trips() != 0 || nilF.LastDump() != "" {
		t.Fatal("nil flight recorder not inert")
	}
}

func TestBuildTreesAndCriticalPath(t *testing.T) {
	r := newTestRecorder(0, nil)
	root := r.StartRoot(0, "cycle")
	fast := r.StartChild(root.Context(), 0, "fetch")
	fast.End(nil) // 1ms by the test clock
	slow := r.StartChild(root.Context(), 0, "binding")
	leaf := r.StartChild(slow.Context(), 0, "apply")
	leaf.End(nil)
	// Make the binding span clearly the slowest child: its window spans
	// the leaf's plus the clock ticks around it.
	slow.End(nil)
	root.End(nil)
	other := r.StartRoot(0, "reconcile")
	other.End(nil)

	trees := BuildTrees(r.Snapshot())
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	sel := FilterTrace(trees, root.Context().Trace)
	if len(sel) != 1 || sel[0].Name != "cycle" {
		t.Fatalf("FilterTrace = %v", sel)
	}
	cy := sel[0]
	if len(cy.Children) != 2 {
		t.Fatalf("cycle has %d children", len(cy.Children))
	}
	path := CriticalPath(cy)
	if len(path) != 3 || path[0].Name != "cycle" || path[1].Name != "binding" || path[2].Name != "apply" {
		names := make([]string, len(path))
		for i, n := range path {
			names[i] = n.Name
		}
		t.Fatalf("critical path = %v", names)
	}
	attr := Attribution(path)
	if len(attr) != 3 {
		t.Fatalf("attribution = %v", attr)
	}
	for i, pc := range attr[:2] {
		if pc.Self != path[i].Wall-path[i+1].Wall {
			t.Fatalf("self[%d] = %v", i, pc.Self)
		}
	}
	if attr[2].Self != path[2].Wall {
		t.Fatalf("leaf self = %v, want full wall %v", attr[2].Self, path[2].Wall)
	}
}

func TestBuildTreesOrphanBecomesRoot(t *testing.T) {
	spans := []Span{
		{Trace: strings.Repeat("a", 32), ID: strings.Repeat("1", 16), Parent: strings.Repeat("9", 16), Name: "orphan"},
	}
	trees := BuildTrees(spans)
	if len(trees) != 1 || trees[0].Name != "orphan" {
		t.Fatalf("trees = %v", trees)
	}
}

// TestSequentialSeedsDoNotCollide: recorders seeded 1..N (the natural
// thing for a test or a host numbering its processes) must not mint
// overlapping ID streams — the raw SplitMix64 counter stream shifted by
// one seed unit is the same stream, so the seed must be avalanched.
func TestSequentialSeedsDoNotCollide(t *testing.T) {
	seen := map[string]int{}
	for seed := uint64(1); seed <= 8; seed++ {
		rec := New(Config{Process: "p", Seed: seed, Clock: func() time.Time { return time.Unix(0, 0) }})
		for i := 0; i < 64; i++ {
			sp := rec.StartRoot(0, "s")
			id := sp.Context().Span
			if prev, dup := seen[id]; dup {
				t.Fatalf("seed %d re-minted span ID %s first seen from seed %d", seed, id, prev)
			}
			seen[id] = int(seed)
			sp.End(nil)
		}
	}
}
