// Package telemetry is Lachesis' self-observation layer: a lock-cheap
// registry of counters, gauges, and log2-bucketed latency histograms that
// the middleware uses to measure its own decision cycle. The paper argues
// Lachesis' overhead is negligible (§6.7, ~1% CPU) but offers no way to
// verify that from inside; this package is that instrument. Hot-path
// operations (Counter.Add, Histogram.Observe) are single atomic updates on
// cached instrument pointers — safe for concurrent use from every Step
// loop, reporter thread, and HTTP exporter at once.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value dimension of an instrument.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the bucket count of the log2 histogram: bucket i counts
// observations whose duration in nanoseconds has bit length i, i.e. values
// in [2^(i-1), 2^i). 64 buckets cover the full int64 nanosecond range
// (bucket 40 is already ~18 minutes).
const histBuckets = 64

// Histogram is a log2-bucketed latency histogram. Observe is one atomic
// add; quantiles are estimated by linear interpolation inside the matching
// power-of-two bucket, so they carry at most a factor-2 relative error —
// plenty for the "is the decision cycle microseconds or milliseconds"
// question the overhead experiment asks.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	// exemplars[i] holds the most recent exemplar (e.g. a trace ID)
	// attached to an observation in bucket i, linking an outlier bucket
	// back to the trace that produced it.
	exemplars [histBuckets]atomic.Pointer[string]
}

// Observe records one duration (negative durations count as zero).
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	if d < 0 {
		d = 0
	}
	h.sum.Add(int64(d))
}

// ObserveExemplar records d like Observe and attaches exemplar to d's
// bucket (an empty exemplar records nothing extra), so Exemplar can name
// the trace behind a quantile.
func (h *Histogram) ObserveExemplar(d time.Duration, exemplar string) {
	h.Observe(d)
	if exemplar != "" {
		e := exemplar
		h.exemplars[bucketIndex(d)].Store(&e)
	}
}

// bucketIndex maps a duration to its log2 bucket (negatives map to 0).
func bucketIndex(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	idx := bits.Len64(uint64(d))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-quantile (0 <= q <= 1; out-of-range values
// are clamped) of the observations. It returns 0 for an empty histogram.
// Within the matching bucket the observation ranks are treated as
// uniformly spread over the bucket's representable values [lo, hi-1], so
// the estimate never exceeds the largest duration the bucket can hold —
// in particular a single observation yields the bucket midpoint for
// every q, instead of the old behavior of returning the exclusive upper
// bound hi (a value that cannot have been observed).
func (h *Histogram) Quantile(q float64) time.Duration {
	idx, frac, ok := h.locate(q)
	if !ok {
		return 0
	}
	lo, hi := bucketBounds(idx)
	upper := hi
	if hi > lo {
		// hi is exclusive: the largest value bucket idx can hold is hi-1.
		upper = hi - 1
	}
	return lo + time.Duration(frac*float64(upper-lo))
}

// Exemplar returns the most recent exemplar attached to the bucket
// containing the q-quantile (ok is false when the histogram is empty or
// that bucket never carried an exemplar).
func (h *Histogram) Exemplar(q float64) (string, bool) {
	idx, _, ok := h.locate(q)
	if !ok {
		return "", false
	}
	p := h.exemplars[idx].Load()
	if p == nil {
		return "", false
	}
	return *p, true
}

// locate finds the bucket holding the q-quantile and the interpolation
// fraction within it. Rank r of n in-bucket observations sits at
// fractional position (r - 0.5) / n — rank centers, clamped to [0, 1] —
// which keeps q=0 at the low edge and q=1 at the high edge of the data
// rather than overshooting the bucket.
func (h *Histogram) locate(q float64) (idx int, frac float64, ok bool) {
	total := h.count.Load()
	if total == 0 {
		return 0, 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i := 0; i < histBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			frac = (target - cum - 0.5) / n
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return i, frac, true
		}
		cum += n
	}
	return histBuckets - 1, 1, true
}

// bucketBounds returns the [lo, hi) duration range of bucket i.
func bucketBounds(i int) (lo, hi time.Duration) {
	if i == 0 {
		return 0, 0
	}
	if i >= 63 {
		return time.Duration(1) << 62, math.MaxInt64
	}
	return time.Duration(1) << (i - 1), time.Duration(1) << i
}

// HistogramSummary is a point-in-time quantile summary of a histogram.
type HistogramSummary struct {
	Count         int64
	Sum           time.Duration
	Mean          time.Duration
	P50, P95, P99 time.Duration
}

// Summary returns the histogram's count, sum, mean, and p50/p95/p99.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// instrumentKind discriminates the registry's families.
type instrumentKind int

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindHistogram
)

func (k instrumentKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("instrumentKind(%d)", int(k))
	}
}

// family groups all labeled instances of one metric name.
type family struct {
	kind  instrumentKind
	items map[string]any // rendered label string -> instrument
}

// Registry is a concurrent collection of named instruments. Get-or-create
// lookups take a read lock on the fast path; callers on hot paths should
// cache the returned instrument pointer and use it directly.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter with the given name and labels, creating it
// on first use. It panics if the name is already registered with a
// different instrument kind (a programming error).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if v, ok := r.lookup(name, kindCounter, labels); ok {
		return v.(*Counter)
	}
	return r.create(name, kindCounter, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if v, ok := r.lookup(name, kindGauge, labels); ok {
		return v.(*Gauge)
	}
	return r.create(name, kindGauge, labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram with the given name and labels, creating
// it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if v, ok := r.lookup(name, kindHistogram, labels); ok {
		return v.(*Histogram)
	}
	return r.create(name, kindHistogram, labels, func() any { return &Histogram{} }).(*Histogram)
}

// lookup is the read-locked fast path.
func (r *Registry) lookup(name string, kind instrumentKind, labels []Label) (any, bool) {
	key := renderLabels(labels)
	r.mu.RLock()
	defer r.mu.RUnlock()
	fam, ok := r.families[name]
	if !ok {
		return nil, false
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: %q registered as %v, requested as %v", name, fam.kind, kind))
	}
	item, ok := fam.items[key]
	return item, ok
}

// create is the write-locked slow path.
func (r *Registry) create(name string, kind instrumentKind, labels []Label, mk func() any) any {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{kind: kind, items: make(map[string]any)}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: %q registered as %v, requested as %v", name, fam.kind, kind))
	}
	if item, ok := fam.items[key]; ok {
		return item
	}
	item := mk()
	fam.items[key] = item
	return item
}

// renderLabels serializes labels in sorted key order: `{k1="v1",k2="v2"}`
// or "" for none.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders every instrument in the Prometheus text exposition
// format (version 0.0.4), with families and label sets in sorted order so
// the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type snap struct {
		name string
		kind instrumentKind
		keys []string
		m    map[string]any
	}
	snaps := make([]snap, 0, len(names))
	for _, name := range names {
		fam := r.families[name]
		keys := make([]string, 0, len(fam.items))
		for k := range fam.items {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snaps = append(snaps, snap{name: name, kind: fam.kind, keys: keys, m: fam.items})
	}
	r.mu.RUnlock()

	for _, s := range snaps {
		if _, err := fmt.Fprintf(w, "# TYPE %s %v\n", s.name, s.kind); err != nil {
			return err
		}
		for _, key := range s.keys {
			switch item := s.m[key].(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", s.name, key, item.Value()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %g\n", s.name, key, item.Value()); err != nil {
					return err
				}
			case *Histogram:
				if err := writePromHistogram(w, s.name, key, item); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writePromHistogram renders one histogram instance as cumulative
// `_bucket{le=...}` lines (seconds) plus `_sum` and `_count`.
func writePromHistogram(w io.Writer, name, labelKey string, h *Histogram) error {
	var cum int64
	lastNonZero := -1
	counts := make([]int64, histBuckets)
	for i := 0; i < histBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			lastNonZero = i
		}
	}
	for i := 0; i <= lastNonZero; i++ {
		cum += counts[i]
		if counts[i] == 0 && i != lastNonZero {
			continue // keep the output short: only emit buckets that changed
		}
		_, hi := bucketBounds(i)
		le := float64(hi) / float64(time.Second)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, withLE(labelKey, fmt.Sprintf("%g", le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labelKey, "+Inf"), h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labelKey, h.Sum().Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelKey, h.Count())
	return err
}

// withLE splices an le label into a rendered label set.
func withLE(labelKey, le string) string {
	if labelKey == "" {
		return `{le="` + le + `"}`
	}
	return labelKey[:len(labelKey)-1] + `,le="` + le + `"}`
}
