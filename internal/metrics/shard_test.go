package metrics

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestShardedStoreConcurrentAccess hammers the store from concurrent
// writers and readers over disjoint and overlapping series. Run under
// -race this is the store's thread-safety proof.
func TestShardedStoreConcurrentAccess(t *testing.T) {
	s := NewStore(time.Second)
	const (
		goroutines = 8
		series     = 32
		samples    = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < samples; i++ {
				name := fmt.Sprintf("series.%d", (g*7+i)%series)
				s.Record(time.Duration(i)*time.Second, name, float64(i))
				s.Latest(name)
				s.HasSeries(name)
				if i%50 == 0 {
					s.SeriesNames()
					s.Range(name, 0, time.Duration(i)*time.Second)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Records(); got != goroutines*samples {
		t.Fatalf("Records() = %d, want %d", got, goroutines*samples)
	}
	if got := len(s.SeriesNames()); got != series {
		t.Fatalf("SeriesNames() returned %d series, want %d", got, series)
	}
}

// TestShardedStoreSemantics checks the sharded store preserves the
// single-map semantics: bucket overwrite, count retention, and lookup
// across shard boundaries.
func TestShardedStoreSemantics(t *testing.T) {
	s := NewShardedStore(time.Second, 4)
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", s.Shards())
	}
	// Same-bucket overwrite.
	s.Record(1500*time.Millisecond, "a", 1)
	s.Record(1900*time.Millisecond, "a", 2)
	p, ok := s.Latest("a")
	if !ok || p.Value != 2 || p.At != time.Second {
		t.Fatalf("Latest(a) = %+v, %v; want {1s 2}, true", p, ok)
	}
	// Series land in their own shards but resolve through the store API.
	for i := 0; i < 64; i++ {
		s.Record(time.Duration(i)*time.Second, fmt.Sprintf("s%d", i), float64(i))
	}
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("s%d", i)
		if p, ok := s.Latest(name); !ok || p.Value != float64(i) {
			t.Fatalf("Latest(%s) = %+v, %v", name, p, ok)
		}
	}
	if got := len(s.SeriesNames()); got != 65 {
		t.Fatalf("SeriesNames() = %d names, want 65", got)
	}
}

// BenchmarkStoreContention guards the sharded store against
// lock-contention regression: concurrent mixed record/read load over many
// series. If the store ever collapses back to a single lock, the
// sharded/1-shard ratio in this benchmark's output degrades toward 1.
func BenchmarkStoreContention(b *testing.B) {
	for _, shards := range []int{1, DefaultShards} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := NewShardedStore(time.Second, shards)
			names := make([]string, 64)
			for i := range names {
				names[i] = fmt.Sprintf("engine.op%d.queue", i)
				s.Record(0, names[i], 1)
			}
			b.SetParallelism(4 * runtime.GOMAXPROCS(0))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					name := names[i%len(names)]
					if i%4 == 0 {
						s.Record(time.Duration(i)*time.Millisecond, name, float64(i))
					} else {
						s.Latest(name)
					}
					i++
				}
			})
		})
	}
}
