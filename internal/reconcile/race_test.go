package reconcile

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/driver"
)

// raceDriver exposes fixed entities; it provides no metrics.
type raceDriver struct{ ents []core.Entity }

func (d *raceDriver) Name() string            { return "race" }
func (d *raceDriver) Entities() []core.Entity { return d.ents }
func (d *raceDriver) Provides(string) bool    { return false }
func (d *raceDriver) Fetch(metric string, _ time.Duration) (core.EntityValues, error) {
	return nil, &core.UnknownMetricError{Metric: metric, Driver: "race"}
}

// TestMiddlewareReconcilerRace is the satellite-2 scenario under the race
// detector: the middleware's step loop (whose breaker half-open probes
// re-apply through the translator) runs concurrently with reconcile
// passes repairing the same entities, both writing through one shared
// ApplyGate chain, while an interference goroutine scribbles over kernel
// state. Run with -race; correctness check: once interference stops, one
// final pass converges kernel state onto desired state.
func TestMiddlewareReconcilerRace(t *testing.T) {
	runMiddlewareReconcilerRace(t, nil)
}

// TestMiddlewareReconcilerRaceQueued is the same scenario with the
// backend fronted by a submission queue: concurrent binding applies and
// reconciler repairs must funnel through the queue's single writer
// goroutine without deadlock or lost writes, and cache invalidations
// (which bypass the queue by design) must stay race-free against it.
func TestMiddlewareReconcilerRaceQueued(t *testing.T) {
	runMiddlewareReconcilerRace(t, func(os core.OSInterface) core.OSInterface {
		q := driver.NewQueuedOS(os, 8)
		t.Cleanup(q.Close)
		return q
	})
}

func runMiddlewareReconcilerRace(t *testing.T, wrap func(core.OSInterface) core.OSInterface) {
	kernel := newFakeKernel()
	cached := newCachedOS(kernel)
	state, err := NewDesiredState(nil)
	if err != nil {
		t.Fatal(err)
	}
	trail := core.NewAuditTrail(64, nil)
	ident := func(tid int) uint64 {
		id, err := kernel.ThreadIdentity(tid)
		if err != nil {
			return 0
		}
		return id
	}
	var backend core.OSInterface = cached
	if wrap != nil {
		backend = wrap(backend)
	}
	gate := core.NewApplyGate(RecordOS(core.AuditOS(backend, trail), state, ident, nil))

	drv := &raceDriver{}
	prios := core.LogicalSchedule{}
	for i := 0; i < 6; i++ {
		tid := 100 + i
		kernel.spawn(tid, uint64(5000+tid))
		name := string(rune('a' + i))
		drv.ents = append(drv.ents, core.Entity{
			Name: name, Driver: "race", Query: "q", Thread: tid, Logical: []string{name},
		})
		prios[name] = float64(10 * (i + 1))
	}

	mw := core.NewMiddleware(nil)
	policy := core.Transformed(&core.StaticLogicalPolicy{
		PolicyName: "race", Priorities: prios, Default: 0,
	}, core.MaxPriorityRule)
	period := time.Millisecond
	if err := mw.Bind(core.Binding{
		Policy:     policy,
		Translator: core.NewNiceTranslator(gate),
		Drivers:    []core.Driver{drv},
		Period:     period,
	}); err != nil {
		t.Fatal(err)
	}

	rec := New(Config{OS: gate, Observer: kernel, State: state})

	const rounds = 300
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // the daemon's step loop
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := mw.Step(time.Duration(i) * period); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // the reconcile loop
		defer wg.Done()
		for i := 0; i < rounds/3; i++ {
			rec.Reconcile()
		}
	}()
	go func() { // the adversary
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < rounds; i++ {
			kernel.interfereNice(100+rng.Intn(6), rng.Intn(40)-20)
		}
	}()
	wg.Wait()

	// Interference has stopped; one pass must restore every entity.
	rec.Reconcile()
	final := rec.Reconcile()
	if !final.Converged {
		t.Fatalf("post-race pass did not converge: %+v", final)
	}
	for _, e := range state.Entries() {
		if e.Kind != KindNice {
			continue
		}
		if got := kernel.niceOf(e.TID); got != e.Value {
			t.Fatalf("tid %d: kernel nice %d != desired %d", e.TID, got, e.Value)
		}
	}
}
