package dst

import (
	"bytes"
	"os"
	"reflect"
	"strconv"
	"testing"
)

// corpusSize resolves the randomized-corpus budget: LACHESIS_DST_SEEDS
// (the CI/nightly knob), else a quick local default.
func corpusSize(t *testing.T, def int) int {
	t.Helper()
	if v := os.Getenv("LACHESIS_DST_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad LACHESIS_DST_SEEDS=%q", v)
		}
		return n
	}
	return def
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	s := Generate(12345)
	data, err := s.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("schedule did not survive the JSON round trip")
	}
}

func TestCloneDoesNotAlias(t *testing.T) {
	s := Generate(6) // any seed; aliasing is structural
	c := s.clone()
	for ri := range c.Replicas {
		c.Replicas[ri].PeerPartitions = append(c.Replicas[ri].PeerPartitions, Window{1, 2})
		c.Replicas[ri].Crashes = append(c.Replicas[ri].Crashes, Crash{1, 2})
	}
	for ai := range c.AgentFaults {
		c.AgentFaults[ai].OSOutages = append(c.AgentFaults[ai].OSOutages, Window{1, 2})
	}
	if !reflect.DeepEqual(s, Generate(6)) {
		t.Fatal("mutating the clone changed the original")
	}
}

// TestReplayByteIdentical is the determinism contract: the same seed
// must produce a byte-identical event log on every run, with and
// without the injected regression.
func TestReplayByteIdentical(t *testing.T) {
	cases := []struct {
		seed int64
		opts Options
	}{
		{3, Options{}},
		{5, Options{}},
		{42, Options{Spans: true}},
		{1, Options{DisableFencing: true}},
	}
	for _, tc := range cases {
		a, err := RunSeed(tc.seed, tc.opts)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		b, err := RunSeed(tc.seed, tc.opts)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		if !bytes.Equal(a.Log.EncodeJSONL(), b.Log.EncodeJSONL()) {
			t.Fatalf("seed %d (opts %+v): replay diverged (%d vs %d events)",
				tc.seed, tc.opts, a.Events, b.Events)
		}
		if a.Events == 0 {
			t.Fatalf("seed %d: empty event log", tc.seed)
		}
	}
}

// TestCorpusClean runs the randomized corpus on the real stack: zero
// invariant violations, and the corpus must actually exercise the
// failure space (failovers and fenced pushes happen).
func TestCorpusClean(t *testing.T) {
	n := corpusSize(t, 50)
	if testing.Short() {
		n = 10
	}
	rep, err := RunCorpus(1, n, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("seed %d: %s at tick %d: %s",
			v.Seed, v.Violation.Invariant, v.Violation.Tick, v.Violation.Detail)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("%d violating seeds; reproduce with `lachesis-dst replay -seed N`", len(rep.Violations))
	}
	if n >= 50 && (rep.Failovers == 0 || rep.GateRejects == 0) {
		t.Fatalf("corpus exercised no failovers (%d) or fenced rejects (%d) — generator regressed",
			rep.Failovers, rep.GateRejects)
	}
}

// TestTeethFencingRegression proves the harness catches a real injected
// bug within the quick budget, and that the shrinker reduces the
// failing schedule to a small deterministic reproducer.
func TestTeethFencingRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("teeth run skipped in -short")
	}
	opts := Options{DisableFencing: true}
	budget := corpusSize(t, 200)
	var failing *Result
	for seed := int64(1); seed <= int64(budget); seed++ {
		r, err := RunSeed(seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		if r.Violation != nil {
			failing = r
			break
		}
	}
	if failing == nil {
		t.Fatalf("fencing regression not caught within %d seeds", budget)
	}
	t.Logf("seed %d: %s at tick %d (%d events)",
		failing.Seed, failing.Violation.Invariant, failing.Violation.Tick, failing.Events)

	sr, err := Shrink(Generate(failing.Seed), opts, DefaultShrinkBudget)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Invariant != failing.Violation.Invariant {
		t.Fatalf("shrink drifted to invariant %s, original %s", sr.Invariant, failing.Violation.Invariant)
	}
	if r := sr.Ratio(); r > 0.25 {
		t.Fatalf("shrink ratio %.2f (%d -> %d events), want <= 0.25",
			r, sr.OriginalEvents, sr.MinimalEvents)
	}
	// The minimal reproducer must fail the same way, deterministically.
	a, err := RunSchedule(sr.Minimal, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSchedule(sr.Minimal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violation == nil || a.Violation.Invariant != sr.Invariant {
		t.Fatalf("minimal reproducer does not fail %s", sr.Invariant)
	}
	if !bytes.Equal(a.Log.EncodeJSONL(), b.Log.EncodeJSONL()) {
		t.Fatal("minimal reproducer replay diverged")
	}
	t.Logf("shrunk to %d events (ratio %.2f) in %d runs", sr.MinimalEvents, sr.Ratio(), sr.Runs)
}

// TestViolationFlightDump wires a failing run into the flight recorder:
// the reproducer bundle ships with its causal trace.
func TestViolationFlightDump(t *testing.T) {
	opts := Options{DisableFencing: true, Spans: true}
	res, err := RunSeed(1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Skip("seed 1 no longer fails under the regression; dump covered elsewhere")
	}
	dir := t.TempDir()
	path, err := DumpViolation(res, dir)
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("no flight-recorder dump written")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("invariant-violation")) {
		t.Fatalf("dump %s does not carry the trigger kind", path)
	}
}

func TestInvariantsTable(t *testing.T) {
	inv := Invariants()
	if len(inv) < 6 {
		t.Fatalf("expected >= 6 invariants, got %d", len(inv))
	}
	seen := map[string]bool{}
	for _, i := range inv {
		if i.Name == "" || i.Layer == "" || i.Desc == "" {
			t.Fatalf("incomplete invariant entry %+v", i)
		}
		if seen[i.Name] {
			t.Fatalf("duplicate invariant %s", i.Name)
		}
		seen[i.Name] = true
	}
}

// TestAdversarialContained pins the containment path: a seed whose
// schedule injects the adversarial candidate must end rolled back with
// no agent keeping it as last-good. (The corpus covers this too; the
// explicit case keeps a fast regression signal.)
func TestAdversarialContained(t *testing.T) {
	var seed int64
	for s := int64(1); s <= 500; s++ {
		if Generate(s).Proposal.Adversarial {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no adversarial schedule in 500 seeds — generator regressed")
	}
	res, err := RunSeed(seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("seed %d: %s: %s", seed, res.Violation.Invariant, res.Violation.Detail)
	}
	if res.Decision != "rolled-back" {
		t.Fatalf("adversarial rollout ended %q, want rolled-back", res.Decision)
	}
}
