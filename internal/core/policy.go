package core

import (
	"math"
	"math/rand"
	"time"
)

// View is what a policy sees at scheduling time: the entities of the
// drivers in its scope and the metric values the provider computed for the
// current period.
type View struct {
	// Now is the current virtual (or wall) time.
	Now time.Duration
	// Entities maps entity names to entity descriptions, across all
	// drivers in the policy's scope.
	Entities map[string]Entity
	// values: metric -> entity -> value.
	values map[string]EntityValues
}

// NewView assembles a view. It is exported for tests and custom loops; the
// Middleware builds views internally.
func NewView(now time.Duration, entities map[string]Entity, values map[string]EntityValues) *View {
	return &View{Now: now, Entities: entities, values: values}
}

// Value returns one metric value for one entity.
func (v *View) Value(metric, entity string) (float64, bool) {
	m, ok := v.values[metric]
	if !ok {
		return 0, false
	}
	val, ok := m[entity]
	return val, ok
}

// Metric returns all entities' values for one metric (may be nil).
func (v *View) Metric(metric string) EntityValues { return v.values[metric] }

// Policy is a scheduling policy (Definition 3.2): it turns a metric view
// into priorities for physical operators. Policies are OS-agnostic (they
// output real-valued priorities; translators handle OS units) and
// SPE-agnostic (they read canonical metrics resolved by the provider).
type Policy interface {
	// Name identifies the policy in logs and experiment output.
	Name() string
	// Metrics lists the canonical metrics the policy requires.
	Metrics() []string
	// Schedule computes priorities for the entities in view.
	Schedule(view *View) (Schedule, error)
}

// --- Queue Size (QS) ---

// QSPolicy prioritizes operators with longer input queues, balancing queue
// sizes to raise egress throughput and lower latency (EdgeWise's policy
// [18], §5.1).
type QSPolicy struct{}

var _ Policy = QSPolicy{}

// NewQSPolicy returns the QS policy.
func NewQSPolicy() QSPolicy { return QSPolicy{} }

// Name implements Policy.
func (QSPolicy) Name() string { return "qs" }

// Metrics implements Policy.
func (QSPolicy) Metrics() []string { return []string{MetricQueueSize} }

// Schedule implements Policy.
func (QSPolicy) Schedule(view *View) (Schedule, error) {
	qs := view.Metric(MetricQueueSize)
	single := make(map[string]float64, len(view.Entities))
	for name := range view.Entities {
		single[name] = qs[name]
	}
	return Schedule{Scale: ScaleLinear, Single: single}, nil
}

// ScheduleInto implements InPlaceScheduler: same priorities as Schedule,
// written into the caller's reusable buffers.
func (QSPolicy) ScheduleInto(view *View, out *Schedule) error {
	qs := view.Metric(MetricQueueSize)
	for name := range view.Entities {
		out.Single[name] = qs[name]
	}
	out.Scale = ScaleLinear
	return nil
}

// InPlaceTarget implements InPlaceScheduler.
func (p QSPolicy) InPlaceTarget() Policy { return p }

// --- First-Come-First-Serve (FCFS) ---

// FCFSPolicy prioritizes operators whose head input tuple has waited
// longest, minimizing maximum latency ([7], §5.1).
type FCFSPolicy struct{}

var _ Policy = FCFSPolicy{}

// NewFCFSPolicy returns the FCFS policy.
func NewFCFSPolicy() FCFSPolicy { return FCFSPolicy{} }

// Name implements Policy.
func (FCFSPolicy) Name() string { return "fcfs" }

// Metrics implements Policy.
func (FCFSPolicy) Metrics() []string { return []string{MetricHeadWaitMs} }

// Schedule implements Policy.
func (FCFSPolicy) Schedule(view *View) (Schedule, error) {
	waits := view.Metric(MetricHeadWaitMs)
	single := make(map[string]float64, len(view.Entities))
	for name := range view.Entities {
		single[name] = waits[name]
	}
	return Schedule{Scale: ScaleLinear, Single: single}, nil
}

// ScheduleInto implements InPlaceScheduler.
func (FCFSPolicy) ScheduleInto(view *View, out *Schedule) error {
	waits := view.Metric(MetricHeadWaitMs)
	for name := range view.Entities {
		out.Single[name] = waits[name]
	}
	out.Scale = ScaleLinear
	return nil
}

// InPlaceTarget implements InPlaceScheduler.
func (p FCFSPolicy) InPlaceTarget() Policy { return p }

// --- Highest Rate (HR) ---

// HRPolicy prioritizes operators on "productive and inexpensive" paths to
// the sinks, minimizing average tuple latency (Sharaf et al. [50], §5.1).
// An operator's priority is the best output rate of any downstream path:
// max over paths of (product of selectivities) / (sum of costs).
type HRPolicy struct{}

var _ Policy = HRPolicy{}

// NewHRPolicy returns the HR policy.
func NewHRPolicy() HRPolicy { return HRPolicy{} }

// Name implements Policy.
func (HRPolicy) Name() string { return "hr" }

// Metrics implements Policy.
func (HRPolicy) Metrics() []string { return []string{MetricCostMs, MetricSelectivity} }

// Schedule implements Policy.
func (HRPolicy) Schedule(view *View) (Schedule, error) {
	costs := view.Metric(MetricCostMs)
	sels := view.Metric(MetricSelectivity)
	memo := make(map[string][2]float64, len(view.Entities)) // name -> {pathSel, pathCost}
	single := make(map[string]float64, len(view.Entities))
	for name := range view.Entities {
		sel, cost := hrPath(name, view, costs, sels, memo, 0)
		if cost <= 0 {
			cost = 1e-6
		}
		single[name] = sel / cost
	}
	return Schedule{Scale: ScaleLog, Single: single}, nil
}

// hrPath returns the (selectivity product, cost sum) of the best path from
// entity `name` to any sink. depth caps traversal against malformed graphs.
func hrPath(name string, view *View, costs, sels EntityValues, memo map[string][2]float64, depth int) (float64, float64) {
	if v, ok := memo[name]; ok {
		return v[0], v[1]
	}
	const maxDepth = 1000
	ent, ok := view.Entities[name]
	cost := math.Max(costs[name], 1e-6)
	sel := sels[name]
	if sel <= 0 {
		sel = 1e-6
	}
	if !ok || len(ent.Downstream) == 0 || depth > maxDepth {
		memo[name] = [2]float64{sel, cost}
		return sel, cost
	}
	bestRate := math.Inf(-1)
	bestSel, bestCost := sel, cost
	for _, ds := range ent.Downstream {
		dSel, dCost := hrPath(ds, view, costs, sels, memo, depth+1)
		pSel := sel * dSel
		pCost := cost + dCost
		if rate := pSel / pCost; rate > bestRate {
			bestRate = rate
			bestSel, bestCost = pSel, pCost
		}
	}
	memo[name] = [2]float64{bestSel, bestCost}
	return bestSel, bestCost
}

// --- RANDOM ---

// RandomPolicy assigns uniformly random priorities; the paper uses it to
// show that Lachesis' gains are not an artifact of merely perturbing
// thread priorities (§6.3).
type RandomPolicy struct {
	rng *rand.Rand
}

var _ Policy = (*RandomPolicy)(nil)

// NewRandomPolicy returns a seeded RANDOM policy.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (*RandomPolicy) Name() string { return "random" }

// Metrics implements Policy.
func (*RandomPolicy) Metrics() []string { return nil }

// Schedule implements Policy.
func (p *RandomPolicy) Schedule(view *View) (Schedule, error) {
	single := make(map[string]float64, len(view.Entities))
	// Iterate in sorted order so a seed reproduces the same priorities
	// regardless of map iteration order.
	for _, name := range sortedKeys(view.Entities) {
		single[name] = p.rng.Float64()
	}
	return Schedule{Scale: ScaleLinear, Single: single}, nil
}
