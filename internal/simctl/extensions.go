package simctl

import (
	"fmt"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/simos"
)

// Optional capability implementations for the future-work translators
// (§8): CPU bandwidth quotas and real-time scheduling on the simulated
// kernel.

var (
	_ core.QuotaController = (*OSAdapter)(nil)
	_ core.RTController    = (*OSAdapter)(nil)
	_ core.CgroupRemover   = (*OSAdapter)(nil)
)

// RemoveCgroup implements core.CgroupRemover. Threads still placed in the
// group would make removal fail, so their placements are evicted from the
// cache only on success.
func (a *OSAdapter) RemoveCgroup(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	id, ok := a.groups[name]
	if !ok {
		return nil // never created (or already removed): nothing to do
	}
	if err := a.kernel.RemoveCgroup(id); err != nil {
		return classify(err)
	}
	delete(a.groups, name)
	for tid, placed := range a.placed {
		if placed == name {
			delete(a.placed, tid)
		}
	}
	a.countOp()
	return nil
}

// SetQuota implements core.QuotaController.
func (a *OSAdapter) SetQuota(cgroupName string, quota, period time.Duration) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	id, ok := a.groups[cgroupName]
	if !ok {
		return fmt.Errorf("simctl: unknown cgroup %q", cgroupName)
	}
	if err := a.kernel.SetQuota(id, quota, period); err != nil {
		return err
	}
	a.countOp()
	return nil
}

// SetRealtime implements core.RTController.
func (a *OSAdapter) SetRealtime(tid, prio int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.kernel.SetRealtime(simos.ThreadID(tid), prio); err != nil {
		a.evictIfVanished(tid, err)
		return classify(err)
	}
	a.countOp()
	return nil
}

// SetNormal implements core.RTController.
func (a *OSAdapter) SetNormal(tid int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.kernel.SetNormal(simos.ThreadID(tid)); err != nil {
		a.evictIfVanished(tid, err)
		return classify(err)
	}
	a.countOp()
	return nil
}
