package reconcile

import (
	"testing"

	"lachesis/internal/core"
)

func TestRecordingOSCapturesIntent(t *testing.T) {
	k := newFakeKernel()
	k.spawn(11, 100)
	state, _ := NewDesiredState(nil)
	ident := func(tid int) uint64 {
		id, _ := k.ThreadIdentity(tid)
		return id
	}
	entity := func(tid int) string { return "op-a" }
	os := RecordOS(k, state, ident, entity)

	if err := os.SetNice(11, -5); err != nil {
		t.Fatal(err)
	}
	e, ok := state.Nice(11)
	if !ok || e.Value != -5 || e.Start != 100 || e.Entity != "op-a" {
		t.Fatalf("nice intent not recorded: %+v ok=%v", e, ok)
	}

	if err := os.EnsureCgroup("q1"); err != nil {
		t.Fatal(err)
	}
	if state.Len() != 1 {
		t.Fatal("EnsureCgroup alone must record nothing")
	}
	if err := os.SetShares("q1", 512); err != nil {
		t.Fatal(err)
	}
	if err := os.MoveThread(11, "q1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := state.Shares("q1"); !ok {
		t.Fatal("shares intent not recorded")
	}
	if p, ok := state.Placement(11); !ok || p.Cgroup != "q1" || p.Start != 100 {
		t.Fatalf("placement intent not recorded: %+v", p)
	}
}

func TestRecordingOSForgetsOnVanish(t *testing.T) {
	k := newFakeKernel()
	k.spawn(11, 100)
	state, _ := NewDesiredState(nil)
	os := RecordOS(k, state, nil, nil)
	if err := os.SetNice(11, -5); err != nil {
		t.Fatal(err)
	}

	// The thread dies; the next apply fails vanished and the intent
	// dissolves — a failed write on a dead thread is not desired state.
	k.kill(11)
	if err := os.SetNice(11, -5); !core.IsVanished(err) {
		t.Fatalf("expected vanished, got %v", err)
	}
	if _, ok := state.Nice(11); ok {
		t.Fatal("vanished thread's intent not forgotten")
	}
}

func TestRecordingOSRemoveCgroupForgets(t *testing.T) {
	k := newFakeKernel()
	k.spawn(11, 100)
	state, _ := NewDesiredState(nil)
	// fakeKernel lacks RemoveCgroup: the recording wrapper still forgets
	// (the middleware decided the group should not exist; reconciliation
	// must not resurrect it).
	os := RecordOS(k, state, nil, nil)
	if err := os.EnsureCgroup("q1"); err != nil {
		t.Fatal(err)
	}
	if err := os.SetShares("q1", 512); err != nil {
		t.Fatal(err)
	}
	if err := os.MoveThread(11, "q1"); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveCgroup("q1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := state.Shares("q1"); ok {
		t.Fatal("removed group's shares intent survived")
	}
	if _, ok := state.Placement(11); ok {
		t.Fatal("removed group's placement intent survived")
	}

	if err := os.SetNice(11, -3); err != nil {
		t.Fatal(err)
	}
	if err := os.RestoreThread(11); err != nil {
		t.Fatal(err)
	}
	if _, ok := state.Nice(11); !ok {
		t.Fatal("RestoreThread must keep the nice intent")
	}
	if _, ok := state.Placement(11); ok {
		t.Fatal("RestoreThread must drop the placement intent")
	}
}
