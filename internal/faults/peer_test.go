package faults

import (
	"errors"
	"testing"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/fleet"
)

// stubPeer is a healthy fleet.PeerClient for wrapping.
type stubPeer struct {
	leases     int
	replicates int
}

func (s *stubPeer) Lease() (fleet.LeaseInfo, error) {
	s.leases++
	return fleet.LeaseInfo{Epoch: 1, Holder: "a", RenewedSeq: int64(s.leases)}, nil
}

func (s *stubPeer) Replicate(fleet.Checkpoint) error {
	s.replicates++
	return nil
}

func TestPeerPartitionGatesBothCalls(t *testing.T) {
	now := time.Duration(0)
	inner := &stubPeer{}
	p := WrapPeer(inner, PeerPlan{
		Partitions: Windows{{From: 10 * time.Second, To: 20 * time.Second}},
		Clock:      func() time.Duration { return now },
	})

	if _, err := p.Lease(); err != nil {
		t.Fatalf("Lease outside partition = %v", err)
	}
	if err := p.Replicate(fleet.Checkpoint{Seq: 1}); err != nil {
		t.Fatalf("Replicate outside partition = %v", err)
	}

	now = 15 * time.Second
	if _, err := p.Lease(); !errors.Is(err, ErrInjected) || !core.IsTransient(err) {
		t.Fatalf("Lease inside partition = %v, want injected transient", err)
	}
	if err := p.Replicate(fleet.Checkpoint{Seq: 2}); !errors.Is(err, ErrInjected) {
		t.Fatalf("Replicate inside partition = %v, want injected", err)
	}
	if inner.leases != 1 || inner.replicates != 1 {
		t.Fatalf("inner saw %d/%d calls, want 1/1 (partition must not leak through)", inner.leases, inner.replicates)
	}

	now = 25 * time.Second
	if _, err := p.Lease(); err != nil {
		t.Fatalf("Lease after partition = %v", err)
	}
	if p.Calls() != 5 || p.Injected() != 2 {
		t.Fatalf("calls=%d injected=%d, want 5/2", p.Calls(), p.Injected())
	}
}

func TestPeerLeaseLossBlindsOnlyLeaseObservation(t *testing.T) {
	// The standby goes blind on leader liveness while checkpoints still
	// arrive — the failure mode where a standby must NOT promote just
	// because GET /lease fails (replication receipt doubles as liveness).
	now := 5 * time.Second
	inner := &stubPeer{}
	p := WrapPeer(inner, PeerPlan{
		LeaseLoss: Windows{{From: 0, To: 10 * time.Second}},
		Clock:     func() time.Duration { return now },
	})
	if _, err := p.Lease(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Lease inside loss window = %v, want injected", err)
	}
	if err := p.Replicate(fleet.Checkpoint{Seq: 1}); err != nil {
		t.Fatalf("Replicate must still flow during lease loss: %v", err)
	}
	if inner.replicates != 1 || inner.leases != 0 {
		t.Fatalf("inner saw leases=%d replicates=%d, want 0/1", inner.leases, inner.replicates)
	}
}

func TestPeerReplicationLagDropsOnlyCheckpoints(t *testing.T) {
	// Checkpoints are dropped while the lease stays observable: the
	// standby's state falls behind, so a later promotion resumes from
	// stale state and leans on the idempotent re-push handshake.
	now := 5 * time.Second
	inner := &stubPeer{}
	p := WrapPeer(inner, PeerPlan{
		ReplicationLag: Windows{{From: 0, To: 10 * time.Second}},
		Clock:          func() time.Duration { return now },
	})
	if err := p.Replicate(fleet.Checkpoint{Seq: 1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("Replicate inside lag window = %v, want injected", err)
	}
	if _, err := p.Lease(); err != nil {
		t.Fatalf("Lease must still flow during replication lag: %v", err)
	}
	now = 12 * time.Second
	if err := p.Replicate(fleet.Checkpoint{Seq: 2}); err != nil {
		t.Fatalf("Replicate after lag window = %v", err)
	}
	if inner.replicates != 1 {
		t.Fatalf("inner replicates = %d, want 1 (only the post-window checkpoint)", inner.replicates)
	}
}

func TestPeerFailRateIsSeededAndDeterministic(t *testing.T) {
	run := func() (injected int) {
		p := WrapPeer(&stubPeer{}, PeerPlan{Seed: 42, FailRate: 0.5})
		for i := 0; i < 100; i++ {
			_, _ = p.Lease()
		}
		return p.Injected()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed injected %d then %d faults, want deterministic", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("injected %d/100 at rate 0.5, want a mix", a)
	}
}
