package dst

import (
	"fmt"

	"lachesis/internal/core"
	"lachesis/internal/guard"
)

// Violation is one invariant failure, anchored to the tick it was
// detected at.
type Violation struct {
	Tick      int    `json:"tick"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// Invariant names. The shrinker preserves the first violation's name
// while minimizing, so a reproducer always fails the same property.
const (
	InvOneLeaderPerEpoch = "one-leader-per-epoch"
	InvEpochMonotonic    = "epoch-monotonic"
	InvNoDoublePush      = "no-double-push"
	InvConvergence       = "convergence"
	InvContainment       = "last-good-containment"
	InvAuditReplay       = "audit-replay"
)

// InvariantInfo describes one checked property for docs and tooling.
type InvariantInfo struct {
	Name  string `json:"name"`
	Layer string `json:"layer"`
	When  string `json:"when"`
	Desc  string `json:"desc"`
}

// Invariants lists every property the harness checks (the table
// ARCHITECTURE.md renders).
func Invariants() []InvariantInfo {
	return []InvariantInfo{
		{InvOneLeaderPerEpoch, "fleet/lease", "per tick",
			"no two replicas ever hold the leader lease with the same epoch"},
		{InvEpochMonotonic, "fleet/lease + agent gates", "per tick",
			"replica fence epochs and agent gate epochs never decrease, including across crash/restart"},
		{InvNoDoublePush, "fleet/rollout + guard/canary", "per tick",
			"no agent stages the rollout candidate twice (the fenced 403 / idempotent 409 pair holds)"},
		{InvConvergence, "full stack", "at end",
			"after quiescence a good rollout is promoted and every pushed agent holds it as last-good with no priority inversions"},
		{InvContainment, "guard/canary + fleet/rollout", "at end",
			"an adversarial rollout is rolled back and no agent retains it as last-good"},
		{InvAuditReplay, "core/audit", "at end",
			"replaying each agent's audit trail reproduces its kernel nice state exactly"},
	}
}

// invariantState carries the cross-tick memory of the per-tick checkers.
type invariantState struct {
	epochLeader  map[int64]string
	replicaEpoch map[string]int64
	gateEpoch    map[string]int64
}

func newInvariantState() *invariantState {
	return &invariantState{
		epochLeader:  map[int64]string{},
		replicaEpoch: map[string]int64{},
		gateEpoch:    map[string]int64{},
	}
}

// checkTick runs the per-tick invariants and returns the first
// violation, or nil.
func (st *invariantState) checkTick(w *world) *Violation {
	// At most one leader per epoch: each epoch is owned by the first
	// replica seen leading with it, forever.
	for _, r := range w.replicas {
		if !r.alive || !r.lm.Leading() {
			continue
		}
		e := r.lm.Info().Epoch
		if owner, ok := st.epochLeader[e]; ok && owner != r.id {
			return &Violation{Tick: w.tick, Invariant: InvOneLeaderPerEpoch,
				Detail: fmt.Sprintf("epoch %d led by %s and %s", e, owner, r.id)}
		}
		st.epochLeader[e] = r.id
	}
	// Epoch monotonicity: each replica's epoch high-water mark only
	// ratchets — the lease store must carry it across a crash.
	// (FenceEpoch would be wrong here: it reads 0 for a standby, so a
	// legitimate deposition would look like a decrease.)
	for _, r := range w.replicas {
		if !r.alive {
			continue
		}
		e := r.lm.HighWaterEpoch()
		if last, ok := st.replicaEpoch[r.id]; ok && e < last {
			return &Violation{Tick: w.tick, Invariant: InvEpochMonotonic,
				Detail: fmt.Sprintf("replica %s fence epoch went %d -> %d", r.id, last, e)}
		}
		st.replicaEpoch[r.id] = e
	}
	for _, id := range w.order {
		e := w.nodes[id].gateEpoch()
		if last, ok := st.gateEpoch[id]; ok && e < last {
			return &Violation{Tick: w.tick, Invariant: InvEpochMonotonic,
				Detail: fmt.Sprintf("agent %s gate epoch went %d -> %d", id, last, e)}
		}
		st.gateEpoch[id] = e
	}
	// No double push: the candidate payload lands on each agent at most
	// once. (Stable/rollback payloads may legitimately be re-proposed.)
	for _, id := range w.order {
		if c := w.nodes[id].stagedCount(w.sched.Proposal.Version, w.payload); c > 1 {
			return &Violation{Tick: w.tick, Invariant: InvNoDoublePush,
				Detail: fmt.Sprintf("agent %s staged %s %d times", id, w.sched.Proposal.Version, c)}
		}
	}
	return nil
}

// rolloutContinuityGuaranteed reports whether the schedule rules out
// losing an in-flight rollout across a failover: a leader crash while
// its replication link is (or was just) lagged can legitimately strand
// the rollout in a checkpoint nobody holds — a documented contract
// boundary, not a bug, so the end-state decision checks are skipped for
// those schedules. All other invariants still apply.
func rolloutContinuityGuaranteed(s Schedule) bool {
	for _, r := range s.Replicas {
		for _, c := range r.Crashes {
			for _, rr := range s.Replicas {
				for _, lag := range rr.ReplicationLag {
					if c.At >= lag.From && c.At <= lag.To+1 {
						return false
					}
				}
			}
		}
	}
	return true
}

// checkEnd runs the end-state invariants after the settle tail.
func (st *invariantState) checkEnd(w *world) *Violation {
	// Containment first: it must hold regardless of how the rollout
	// concluded.
	if w.sched.Proposal.Adversarial {
		for _, id := range w.order {
			if string(w.nodes[id].lastGood()) == string(advPayload) {
				return &Violation{Tick: w.tick, Invariant: InvContainment,
					Detail: fmt.Sprintf("agent %s retains the adversarial payload as last-good", id)}
			}
		}
	}

	if v := st.checkConvergence(w); v != nil {
		return v
	}

	// Audit replay: folding every OK nice write in an agent's audit
	// trail must reproduce its kernel state byte for byte.
	for _, id := range w.order {
		n := w.nodes[id]
		replayed := core.ReplayNice(n.audit.Events())
		actual := n.osi.snapshot()
		if len(replayed) != len(actual) {
			return &Violation{Tick: w.tick, Invariant: InvAuditReplay,
				Detail: fmt.Sprintf("agent %s: %d audited threads vs %d in kernel state", id, len(replayed), len(actual))}
		}
		for tid, nice := range actual {
			if got, ok := replayed[tid]; !ok || got != nice {
				return &Violation{Tick: w.tick, Invariant: InvAuditReplay,
					Detail: fmt.Sprintf("agent %s: thread %d kernel nice %d, audit replay %d", id, tid, nice, got)}
			}
		}
	}
	return nil
}

// checkConvergence asserts the post-quiescence end state.
func (st *invariantState) checkConvergence(w *world) *Violation {
	leader := w.leader()
	if leader == nil {
		return &Violation{Tick: w.tick, Invariant: InvConvergence,
			Detail: "no unique leader after quiescence"}
	}
	fst := leader.co.Status()
	if fst.Active {
		return &Violation{Tick: w.tick, Invariant: InvConvergence,
			Detail: "rollout still active at the tick budget"}
	}
	if rolloutContinuityGuaranteed(w.sched) && w.proposed {
		want := guard.DecisionPromoted
		if w.sched.Proposal.Adversarial {
			want = guard.DecisionRolledBack
		}
		if fst.LastDecision != want {
			return &Violation{Tick: w.tick, Invariant: InvConvergence,
				Detail: fmt.Sprintf("rollout ended %q (%s), want %q", fst.LastDecision, fst.LastReason, want)}
		}
		if !w.sched.Proposal.Adversarial {
			// Every agent the final rollout state marks pushed (and not
			// degraded) must have converged on the candidate.
			state := leader.co.State()
			for _, id := range sortedIDs(state.Agents) {
				a := state.Agents[id]
				if a == nil || !a.Pushed || a.Degraded {
					continue
				}
				n, ok := w.nodes[id]
				if !ok {
					continue
				}
				if string(n.lastGood()) != string(w.payload) {
					return &Violation{Tick: w.tick, Invariant: InvConvergence,
						Detail: fmt.Sprintf("agent %s pushed but last-good is not the candidate", id)}
				}
			}
		}
	}
	// Desired-state: no priority inversion survives quiescence, whatever
	// the rollout's outcome was.
	for _, id := range w.order {
		if inv := w.nodes[id].inverted(); inv > 0 {
			return &Violation{Tick: w.tick, Invariant: InvConvergence,
				Detail: fmt.Sprintf("agent %s holds %d inverted priority pairs after quiescence", id, inv)}
		}
	}
	return nil
}
