// Package hll implements HyperLogLog approximate distinct counting, the
// sketch behind the RIoTBench STATS query's "approximate distinct count"
// operator (§6.1).
package hll

import (
	"errors"
	"math"
	"math/bits"
)

// Sketch is a HyperLogLog cardinality estimator.
type Sketch struct {
	p         uint8 // precision: m = 2^p registers
	m         uint32
	registers []uint8
}

// New creates a sketch with precision p in [4, 16] (standard error is
// about 1.04/sqrt(2^p); p=14 gives ~0.8%).
func New(p uint8) (*Sketch, error) {
	if p < 4 || p > 16 {
		return nil, errors.New("hll: precision must be in [4, 16]")
	}
	m := uint32(1) << p
	return &Sketch{p: p, m: m, registers: make([]uint8, m)}, nil
}

// splitmix64 mixes a key into a 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add inserts a key.
func (s *Sketch) Add(key uint64) {
	h := splitmix64(key)
	idx := h >> (64 - s.p)
	rest := h<<s.p | 1<<(s.p-1) // ensure termination
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > s.registers[idx] {
		s.registers[idx] = rank
	}
}

// alpha returns the bias-correction constant for m registers.
func (s *Sketch) alpha() float64 {
	switch s.m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(s.m))
	}
}

// Estimate returns the approximate number of distinct keys added.
func (s *Sketch) Estimate() float64 {
	sum := 0.0
	zeros := 0
	for _, r := range s.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	m := float64(s.m)
	e := s.alpha() * m * m / sum
	// Small-range correction: linear counting.
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// Merge folds another sketch (same precision) into this one, so the union
// cardinality can be estimated. It returns an error on precision mismatch.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.p != s.p {
		return errors.New("hll: precision mismatch")
	}
	for i, r := range other.registers {
		if r > s.registers[i] {
			s.registers[i] = r
		}
	}
	return nil
}

// Reset clears the sketch.
func (s *Sketch) Reset() {
	for i := range s.registers {
		s.registers[i] = 0
	}
}

// Precision returns the sketch precision p.
func (s *Sketch) Precision() uint8 { return s.p }

// StdError returns the theoretical relative standard error.
func (s *Sketch) StdError() float64 { return 1.04 / math.Sqrt(float64(s.m)) }
