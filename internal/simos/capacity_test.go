package simos

import (
	"testing"
	"time"
)

func TestHeterogeneousCapacity(t *testing.T) {
	// A 0.5-capacity CPU (LITTLE core) delivers half the work per wall
	// second: two busy threads pinned by having exactly two CPUs.
	k := New(Config{CPUs: 2, Capacities: []float64{1.0, 0.5}})
	a := mustSpawn(t, k, "a", RootCgroup, busyRunner())
	b := mustSpawn(t, k, "b", RootCgroup, busyRunner())
	k.RunUntil(10 * time.Second)

	// Total charged CPU work = 1.0*10s + 0.5*10s = 15s.
	total := cpuTime(t, k, a) + cpuTime(t, k, b)
	if total < 14800*time.Millisecond || total > 15200*time.Millisecond {
		t.Errorf("total work = %v, want ~15s on 1.0+0.5 capacity", total)
	}
}

func TestCapacityDefaultsToOne(t *testing.T) {
	k := New(Config{CPUs: 3, Capacities: []float64{2.0}})
	ids := make([]ThreadID, 3)
	for i := range ids {
		ids[i] = mustSpawn(t, k, "w", RootCgroup, busyRunner())
	}
	k.RunUntil(4 * time.Second)
	var total time.Duration
	for _, id := range ids {
		total += cpuTime(t, k, id)
	}
	// 2.0 + 1.0 + 1.0 capacities over 4s = 16s of work.
	if total < 15700*time.Millisecond || total > 16300*time.Millisecond {
		t.Errorf("total work = %v, want ~16s", total)
	}
}
