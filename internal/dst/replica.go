package dst

import (
	"errors"
	"fmt"
	"time"

	"lachesis/internal/faults"
	"lachesis/internal/fleet"
	"lachesis/internal/guard"
	"lachesis/internal/reconcile"
	"lachesis/internal/span"
)

// agentConn is one replica->agent link: the fault injector for the union
// of the replica's agent-partition windows and the agent's own partition
// windows, plus push-outcome logging. Each conn owns its event buffer so
// the fan-out's concurrent push goroutines never interleave writes into
// a shared buffer (each goroutine targets one agent, so per-conn order
// is deterministic).
type agentConn struct {
	replica string
	agent   string
	inner   *faults.Agent
	buf     *eventBuffer
	// tickNo is written by the owning replica before co.Tick spawns the
	// fan-out goroutines (happens-before via goroutine start).
	tickNo int
}

var (
	_ fleet.AgentClient = (*agentConn)(nil)
	_ fleet.TracedAgent = (*agentConn)(nil)
	_ fleet.FencedAgent = (*agentConn)(nil)
)

func (c *agentConn) logPush(err error) {
	if err == nil {
		c.buf.add(c.tickNo, c.replica, EvPushOK, c.agent)
		return
	}
	var fe *fleet.FencedError
	var ce *fleet.ConflictError
	switch {
	case errors.As(err, &fe):
		c.buf.add(c.tickNo, c.replica, EvPushFenced,
			fmt.Sprintf("%s: epoch %d < %d", c.agent, fe.Got, fe.Have))
	case errors.As(err, &ce):
		c.buf.add(c.tickNo, c.replica, EvPushConflict, c.agent)
	default:
		c.buf.add(c.tickNo, c.replica, EvPushFail, fmt.Sprintf("%s: %v", c.agent, err))
	}
}

func (c *agentConn) Propose(payload []byte) (guard.Status, error) {
	st, err := c.inner.Propose(payload)
	c.logPush(err)
	return st, err
}

func (c *agentConn) ProposeTraced(payload []byte, traceparent string) (guard.Status, error) {
	st, err := c.inner.ProposeTraced(payload, traceparent)
	c.logPush(err)
	return st, err
}

func (c *agentConn) ProposeFenced(payload []byte, traceparent string, epoch int64) (guard.Status, error) {
	st, err := c.inner.ProposeFenced(payload, traceparent, epoch)
	c.logPush(err)
	return st, err
}

func (c *agentConn) Status() (guard.Status, error) { return c.inner.Status() }
func (c *agentConn) SLO() (guard.SLOSample, error) { return c.inner.SLO() }

// replica is one in-process lachesis-fleet coordinator under test: the
// daemon's full wiring (lease manager, registry, rollout coordinator,
// follower, replicator) over a MemFS-backed fleet.Store that survives
// crashes, ticked on a per-replica drifted clock.
type replica struct {
	id string
	w  *world
	rf ReplicaFaults

	fs    *reconcile.MemFS
	store *fleet.Store
	lm    *fleet.LeaseManager
	reg   *fleet.Registry
	co    *fleet.Coordinator
	fol   *fleet.Follower
	repl  *fleet.Replicator
	conns map[string]*agentConn
	spans *span.Recorder

	// alive=false is a crashed replica: no ticks, peer calls fail.
	alive bool

	lastGood       []byte
	pending        []byte
	promotionsSeen int64
	deposSeen      int64
	failovers      int
	prevActive     bool

	buf    *eventBuffer
	tickNo int
}

// local maps global virtual time onto this replica's drifted clock. All
// replica-internal staleness judgements (lease expiry, registry sweeps,
// rollout deadlines) run on it; fault windows stay on global time.
func (r *replica) local(now time.Duration) time.Duration {
	return time.Duration(float64(now) * r.rf.DriftRate)
}

func (r *replica) leaseConfig() fleet.LeaseConfig {
	return fleet.LeaseConfig{ID: r.id, TTL: time.Duration(r.w.sched.TTLTicks) * time.Second}
}

func (r *replica) registryConfig() fleet.RegistryConfig {
	return fleet.RegistryConfig{HeartbeatInterval: time.Second, SuspectAfter: 2, EvictAfter: 5}
}

func (r *replica) rolloutConfig() fleet.RolloutConfig {
	s := r.w.sched
	return fleet.RolloutConfig{
		CanaryFraction: 0.25, Waves: s.Waves,
		WindowTicks: s.WindowTicks, PushTicks: s.PushTicks,
		Fanout: fleet.FanoutConfig{
			Attempts: 2, BreakerThreshold: 100, BreakerCooldown: 30 * time.Second,
			Sleep: func(time.Duration) {},
		},
	}
}

// wire builds fresh daemon components over the persistent store. Used at
// construction and again on warm restart after a crash.
func (r *replica) wire(localNow time.Duration, restore bool) {
	r.lm = fleet.NewLeaseManager(r.leaseConfig())
	r.lm.SetStore(r.store)
	r.reg = fleet.NewRegistry(r.registryConfig())
	r.reg.SetStore(r.store)
	r.co = fleet.NewCoordinator(r.rolloutConfig(), r.reg, func(a fleet.AgentRecord) fleet.AgentClient {
		if c, ok := r.conns[a.ID]; ok {
			return c
		}
		return nil
	})
	r.co.SetStore(r.store)
	r.co.SetEpoch(func() int64 { return r.lm.FenceEpoch() })
	r.co.SetFencedHook(func(now time.Duration, agent string) { r.lm.Deposed(now, agent) })
	if r.spans != nil {
		r.co.SetSpans(r.spans)
	}
	r.fol = fleet.NewFollower(r.store)
	if restore {
		_ = r.lm.Restore(localNow)
		_ = r.reg.Restore(localNow)
		if resumed, err := r.co.Resume(localNow); err == nil && resumed {
			r.pending = r.co.State().Payload
		}
	}
	st := r.co.Status()
	r.promotionsSeen = st.Promotions
	r.prevActive = st.Active
	r.deposSeen = r.lm.Depositions()
}

// newReplica builds replica idx over the world's agent fleet. Replica 0
// starts as leader.
func newReplica(w *world, idx int, spans *span.Recorder) *replica {
	r := &replica{
		id: fmt.Sprintf("r%d", idx), w: w, rf: w.sched.Replicas[idx],
		alive: true, lastGood: stablePayload, spans: spans,
		conns: map[string]*agentConn{}, buf: &eventBuffer{},
	}
	r.fs = reconcile.NewMemFS()
	r.store = fleet.NewStore(r.fs, nil)
	for ai, id := range w.order {
		parts := append(append([]Window(nil), r.rf.AgentPartitions...), w.sched.AgentFaults[ai].Partitions...)
		r.conns[id] = &agentConn{
			replica: r.id, agent: id, buf: &eventBuffer{},
			inner: faults.WrapAgent(w.nodes[id], faults.AgentPlan{
				Partitions: faultWindows(parts),
				Clock:      w.clock,
			}),
		}
	}
	r.repl = fleet.NewReplicator()
	r.wire(0, false)
	if idx == 0 {
		info := r.lm.Acquire(0)
		r.buf.add(0, r.id, EvAcquire, fmt.Sprintf("epoch %d", info.Epoch))
	}
	return r
}

// crash takes the replica dark. Everything in memory is lost; the store
// (lease epochs seen, registry, rollout) survives for the warm restart.
func (r *replica) crash(tickNo int) {
	r.alive = false
	r.pending = nil
	r.lastGood = stablePayload
	// Power-loss semantics: only fsynced bytes survive. Both persistent
	// stores follow write→fsync→rename, so a crash here must lose
	// nothing — if one ever skips the fsync, the restored replica
	// regresses its epoch or registry and the invariants catch it.
	r.fs.DropUnsynced()
	r.buf.add(tickNo, r.id, EvCrash, "")
}

// restart is the warm restart: fresh components restored from the
// persistent store, staleness clocks re-anchored at the local now.
func (r *replica) restart(tickNo int, now time.Duration) {
	r.wire(r.local(now), true)
	r.alive = true
	r.buf.add(tickNo, r.id, EvRestart, "")
}

// reachableFrom reports whether this replica can currently talk to the
// given agent (the heartbeat routing check — the same windows its
// push conns enforce).
func (r *replica) agentReachable(tick, agentIdx int) bool {
	for _, w := range r.rf.AgentPartitions {
		if w.Contains(tick) {
			return false
		}
	}
	for _, w := range r.w.sched.AgentFaults[agentIdx].Partitions {
		if w.Contains(tick) {
			return false
		}
	}
	return true
}

// promote is the standby takeover: bumped-epoch lease, registry leases
// re-anchored, rollout resumed from the last applied checkpoint.
func (r *replica) promote(tickNo int, localNow time.Duration) {
	info := r.lm.Acquire(localNow)
	r.failovers++
	r.buf.add(tickNo, r.id, EvAcquire, fmt.Sprintf("epoch %d", info.Epoch))
	if cp, ok := r.fol.Last(); ok {
		r.reg.Adopt(localNow, cp.Registry)
		if r.co.Adopt(localNow, cp.Rollout) {
			r.pending = cp.Rollout.Payload
		}
		if cp.LastGood != nil {
			r.lastGood = cp.LastGood
		}
		r.promotionsSeen = cp.Rollout.Promotions
		r.prevActive = r.co.Status().Active
	}
}

// tick is the daemon tick: a standby observes its peer's lease and
// promotes on expiry; a leader renews, sweeps, advances the rollout and
// publishes a checkpoint — unless a fenced push deposed it mid-tick.
func (r *replica) tick(tickNo int, now time.Duration) {
	if !r.alive {
		return
	}
	r.tickNo = tickNo
	for _, c := range r.conns {
		c.tickNo = tickNo
	}
	localNow := r.local(now)
	if !r.lm.Leading() {
		for _, name := range r.repl.Peers() {
			if pc := r.repl.Peer(name); pc != nil {
				if info, err := pc.Lease(); err == nil {
					r.lm.Observe(info, localNow)
				}
			}
		}
		if r.lm.Expired(localNow) {
			r.promote(tickNo, localNow)
		}
		return
	}
	r.lm.Renew(localNow)
	suspected, evicted := r.reg.Sweep(localNow)
	for _, id := range suspected {
		r.buf.add(tickNo, r.id, EvSuspect, id)
	}
	for _, id := range evicted {
		r.buf.add(tickNo, r.id, EvEvict, id)
	}
	r.co.Tick(localNow)
	if d := r.lm.Depositions(); d > r.deposSeen {
		r.deposSeen = d
		r.buf.add(tickNo, r.id, EvDepose, "fenced push feedback")
	}
	st := r.co.Status()
	if st.Promotions > r.promotionsSeen && r.pending != nil {
		r.promotionsSeen = st.Promotions
		r.lastGood = r.pending
		r.pending = nil
	}
	if r.prevActive && !st.Active {
		r.buf.add(tickNo, r.id, EvRolloutEnd, st.LastDecision+": "+st.LastReason)
	}
	r.prevActive = st.Active
	if r.lm.Leading() {
		r.repl.Publish(localNow, fleet.Checkpoint{
			Lease:    r.lm.Info(),
			Registry: r.reg.Agents(),
			Rollout:  r.co.State(),
			LastGood: r.lastGood,
		})
	}
}

// wrapPeerPlan builds one replica's fault-wrapped view of the other:
// the bidirectional partition union plus the sender's own lease-loss and
// replication-lag windows.
func wrapPeerPlan(inner fleet.PeerClient, partitionUnion []Window, rf ReplicaFaults, clock func() time.Duration) fleet.PeerClient {
	return faults.WrapPeer(inner, faults.PeerPlan{
		Partitions:     faultWindows(partitionUnion),
		LeaseLoss:      faultWindows(rf.LeaseLoss),
		ReplicationLag: faultWindows(rf.ReplicationLag),
		Clock:          clock,
	})
}

// simPeer is one replica's in-process view of the other: the PeerClient
// the HTTP layer would provide, mirroring the daemon's GET /lease and
// POST /replicate handlers (including the fenced replication check and
// the split-brain healing Observe).
type simPeer struct {
	w  *world
	to *replica
}

var _ fleet.PeerClient = (*simPeer)(nil)

func (p *simPeer) Lease() (fleet.LeaseInfo, error) {
	if !p.to.alive {
		return fleet.LeaseInfo{}, transientf("peer %s down", p.to.id)
	}
	return p.to.lm.Info(), nil
}

func (p *simPeer) Replicate(cp fleet.Checkpoint) error {
	if !p.to.alive {
		return transientf("peer %s down", p.to.id)
	}
	localNow := p.to.local(p.w.now)
	p.to.lm.Observe(cp.Lease, localNow)
	if p.to.lm.Leading() {
		// Still leading after observing the sender's lease: the sender is
		// the stale one. Fence it (the daemon's 403).
		return &fleet.FencedError{Agent: p.to.id, Have: p.to.lm.Info().Epoch, Got: cp.Lease.Epoch}
	}
	if err := p.to.fol.Apply(cp); err != nil {
		return err
	}
	if cp.LastGood != nil {
		p.to.lastGood = cp.LastGood
	}
	return nil
}
