package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/fleet"
	"lachesis/internal/guard"
	"lachesis/internal/span"
	"lachesis/internal/telemetry"
)

// maxPolicyPayload bounds a POST /fleet/policy request body (the same
// cap lachesisd puts on its own /policy).
const maxPolicyPayload = 1 << 20

// defaultAuditTail is how many events /debug/audit returns without ?n=.
const defaultAuditTail = 64

// defaultTraceTail is how many spans /debug/trace returns without ?n=.
const defaultTraceTail = 128

// fleetOptions assembles a daemon.
type fleetOptions struct {
	registry fleet.RegistryConfig
	rollout  fleet.RolloutConfig
	conns    fleet.ConnFactory
	sink     core.AuditSink
	// spanSink optionally mirrors every completed span (JSONL via
	// -span-log); the in-memory ring behind /debug/trace is always on.
	spanSink span.Sink
	// flightDir enables the anomaly flight recorder: a per-agent push
	// breaker opening dumps the span ring there. Empty disables.
	flightDir string
	// pprofEnabled mounts net/http/pprof under /debug/pprof/.
	pprofEnabled bool
	// id is this coordinator's HA identity (lease holder name). Empty
	// defaults to "coordinator".
	id string
	// peers are the other coordinators (name -> client) for lease
	// observation and checkpoint replication.
	peers map[string]fleet.PeerClient
	// leaseTTL is the leader-lease lifetime (default 3s).
	leaseTTL time.Duration
	// standby starts the daemon as a follower: it serves reads, applies
	// checkpoints, and promotes itself only when the observed leader
	// lease expires or is released. Default (false) acquires the lease at
	// startup.
	standby bool
}

// leaseView is the JSON shape of GET /lease. The embedded lease
// marshals flat, so a peer's HTTPPeer client can decode it straight
// into a fleet.LeaseInfo.
type leaseView struct {
	fleet.LeaseInfo
	// Leading reports whether this coordinator currently holds the lease.
	Leading bool `json:"leading"`
	// ID is this coordinator's HA identity.
	ID string `json:"id"`
}

// fleetDaemon owns the coordinator's moving parts and their HTTP
// surface. The registry and coordinator carry their own locks; d.mu
// only guards the last-good bookkeeping.
type fleetDaemon struct {
	reg    *fleet.Registry
	co     *fleet.Coordinator
	lm     *fleet.LeaseManager
	repl   *fleet.Replicator
	fol    *fleet.Follower
	fstore *fleet.Store
	tel    *telemetry.Registry
	trail  *core.AuditTrail
	spans  *span.Recorder
	flight *span.FlightRecorder
	pprof  bool
	start  time.Time

	ctrFailovers *telemetry.Counter

	mu sync.Mutex
	// lastGood is the fleet-level stable payload: the last promoted
	// candidate, used as the rollback target of the next rollout.
	lastGood []byte
	// pending is the candidate payload of the in-flight rollout.
	pending []byte
	// promotionsSeen detects promotion transitions across ticks.
	promotionsSeen int64
	// proposals numbers auto-versioned candidates.
	proposals int64
	// policyStore persists lastGood (nil: memory only).
	policyStore guard.PolicyStore
}

func newFleetDaemon(opts fleetOptions) *fleetDaemon {
	d := &fleetDaemon{
		tel:   telemetry.NewRegistry(),
		trail: core.NewAuditTrail(0, opts.sink),
		pprof: opts.pprofEnabled,
		start: time.Now(),
	}
	telemetry.RegisterBuildInfo(d.tel, "lachesis-fleet")
	d.reg = fleet.NewRegistry(opts.registry)
	d.reg.SetAudit(d.trail)
	d.reg.SetTelemetry(d.tel)
	d.co = fleet.NewCoordinator(opts.rollout, d.reg, opts.conns)
	d.co.SetAudit(d.trail)
	d.co.SetTelemetry(d.tel)
	id := opts.id
	if id == "" {
		id = "coordinator"
	}
	d.lm = fleet.NewLeaseManager(fleet.LeaseConfig{ID: id, TTL: opts.leaseTTL})
	d.lm.SetAudit(d.trail)
	d.lm.SetTelemetry(d.tel)
	d.repl = fleet.NewReplicator()
	d.repl.SetAudit(d.trail)
	d.repl.SetTelemetry(d.tel)
	for name, pc := range opts.peers {
		d.repl.AddPeer(name, pc)
	}
	d.fol = fleet.NewFollower(nil)
	d.ctrFailovers = d.tel.Counter(fleet.MetricFleetFailoversTotal)
	// Fencing: every push carries our lease epoch, and an agent rejecting
	// it (it has seen a newer leader) deposes us on the spot.
	d.co.SetEpoch(d.lm.FenceEpoch)
	d.co.SetFencedHook(func(now time.Duration, agent string) {
		d.lm.Deposed(now, agent)
	})
	if !opts.standby {
		d.lm.Acquire(d.now())
	}
	// Tracing is always on: each rollout opens a "rollout" root span whose
	// context parents every per-agent "push" and rides each HTTP hop as a
	// Traceparent header, so one trace ID spans coordinator -> agent ->
	// canary verdict.
	d.spans = span.New(span.Config{Process: "lachesis-fleet", Sink: opts.spanSink})
	d.co.SetSpans(d.spans)
	if opts.flightDir != "" {
		d.flight = span.NewFlightRecorder(d.spans, opts.flightDir, 0)
		flight := d.flight
		d.co.Fanout().SetBreakerHook(func(now time.Duration, agent string) {
			_, _ = flight.Trip(span.Trigger{At: now, Kind: span.TriggerBreakerOpen, Detail: "agent " + agent})
		})
	}
	return d
}

// now is the daemon-relative clock feeding leases and rollout ticks.
func (d *fleetDaemon) now() time.Duration { return time.Since(d.start) }

// attachState wires crash-safe persistence and performs the warm
// restart: registry leases re-anchor at now, an in-flight rollout
// resumes at its persisted phase, and the fleet last-good payload is
// reloaded.
func (d *fleetDaemon) attachState(fs *fleet.Store, ps guard.PolicyStore) error {
	now := d.now()
	d.fstore = fs
	d.fol = fleet.NewFollower(fs)
	d.reg.SetStore(fs)
	if err := d.reg.Restore(now); err != nil {
		return fmt.Errorf("restore registry: %w", err)
	}
	d.co.SetStore(fs)
	if _, err := d.co.Resume(now); err != nil {
		return fmt.Errorf("resume rollout: %w", err)
	}
	// Epochs must stay monotonic across restarts: fold in the persisted
	// lease, then (if we came up leading) re-acquire above it — the lease
	// file proves what epoch a previous incarnation reached, never that
	// the lease is still ours.
	d.lm.SetStore(fs)
	if err := d.lm.Restore(now); err != nil {
		return fmt.Errorf("restore lease: %w", err)
	}
	if d.lm.Leading() {
		d.lm.Acquire(now)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.policyStore = ps
	if raw, ok, err := ps.LoadLastGoodPolicy(); err != nil {
		return fmt.Errorf("load fleet last-good: %w", err)
	} else if ok {
		d.lastGood = raw
	}
	// Promotions that happened before the crash must not be mistaken for
	// fresh ones after it.
	d.promotionsSeen = d.co.Status().Promotions
	return nil
}

// tick runs one coordinator cycle. Leading: lease renewal, sweep,
// rollout advance, promotion bookkeeping (a freshly promoted candidate
// becomes the new fleet-level last-good), and a replication checkpoint
// to every standby. Standing by: observe the leader's lease (the
// checkpoints it pushes plus a GET /lease poll as fallback) and promote
// when it expires or is released.
func (d *fleetDaemon) tick() {
	now := d.now()
	if !d.lm.Leading() {
		d.observePeers(now)
		if d.lm.Expired(now) {
			d.promote(now)
		}
		return
	}
	d.lm.Renew(now)
	d.reg.Sweep(now)
	d.co.Tick(now)
	st := d.co.Status()
	d.mu.Lock()
	if st.Promotions > d.promotionsSeen && d.pending != nil {
		d.promotionsSeen = st.Promotions
		d.lastGood = d.pending
		d.pending = nil
		if d.policyStore != nil {
			if err := d.policyStore.SaveLastGoodPolicy(d.lastGood); err != nil {
				d.trail.Record(core.AuditEvent{At: now, Kind: fleet.AuditKindFleet,
					Outcome: "WARNING: persisting fleet last-good failed: " + err.Error()})
			}
		}
	}
	d.mu.Unlock()
	// A push fenced mid-tick deposed us: don't publish a checkpoint for a
	// lease we no longer hold.
	if d.lm.Leading() {
		d.replicate(now)
	}
}

// observePeers polls every peer's lease view into the lease manager.
func (d *fleetDaemon) observePeers(now time.Duration) {
	for _, name := range d.repl.Peers() {
		pc := d.peer(name)
		if pc == nil {
			continue
		}
		if info, err := pc.Lease(); err == nil {
			d.lm.Observe(info, now)
		}
	}
}

// peer resolves a registered peer client by name.
func (d *fleetDaemon) peer(name string) fleet.PeerClient {
	// The replicator owns the peer map; re-resolving through it keeps one
	// source of truth.
	return d.repl.Peer(name)
}

// replicate publishes a full-state checkpoint to every standby.
func (d *fleetDaemon) replicate(now time.Duration) {
	if len(d.repl.Peers()) == 0 {
		return
	}
	d.mu.Lock()
	lastGood := d.lastGood
	d.mu.Unlock()
	d.repl.Publish(now, fleet.Checkpoint{
		Lease:    d.lm.Info(),
		Registry: d.reg.Agents(),
		Rollout:  d.co.State(),
		LastGood: lastGood,
	})
}

// promote is the standby takeover: acquire the lease with a bumped
// epoch, adopt the last replicated checkpoint (registry leases
// re-anchored, rollout resumed exactly where the dead leader left it —
// Pushed flags plus the agents' idempotent 409 handshake guarantee no
// double pushes), and start leading. Without any checkpoint the warm
// state from the store (if attached) already loaded at startup.
func (d *fleetDaemon) promote(now time.Duration) {
	info := d.lm.Acquire(now)
	if d.ctrFailovers != nil {
		d.ctrFailovers.Inc()
	}
	active := false
	if cp, ok := d.fol.Last(); ok {
		d.reg.Adopt(now, cp.Registry)
		active = d.co.Adopt(now, cp.Rollout)
		d.mu.Lock()
		if cp.LastGood != nil {
			d.lastGood = cp.LastGood
		}
		if active {
			d.pending = cp.Rollout.Payload
		}
		d.promotionsSeen = cp.Rollout.Promotions
		d.mu.Unlock()
	}
	d.trail.Record(core.AuditEvent{At: now, Kind: fleet.AuditKindFleet,
		Outcome: fmt.Sprintf("standby promoted to leader (epoch %d, rollout active: %v)", info.Epoch, active)})
}

// shutdown takes the final state checkpoint on SIGTERM/SIGINT: release
// the lease (published to standbys so one promotes immediately instead
// of waiting out the TTL) and persist registry, rollout, and last-good
// through the attached stores.
func (d *fleetDaemon) shutdown() {
	now := d.now()
	if d.lm.Leading() {
		released := d.lm.Release(now)
		d.mu.Lock()
		lastGood := d.lastGood
		d.mu.Unlock()
		if len(d.repl.Peers()) > 0 {
			d.repl.Publish(now, fleet.Checkpoint{
				Lease:    released,
				Registry: d.reg.Agents(),
				Rollout:  d.co.State(),
				LastGood: lastGood,
			})
		}
	}
	if d.fstore != nil {
		if err := d.fstore.SaveRegistry(d.reg.Agents()); err != nil {
			d.trail.Record(core.AuditEvent{At: now, Kind: fleet.AuditKindFleet,
				Outcome: "WARNING: final registry checkpoint failed: " + err.Error()})
		}
		if err := d.fstore.SaveRollout(d.co.State()); err != nil {
			d.trail.Record(core.AuditEvent{At: now, Kind: fleet.AuditKindFleet,
				Outcome: "WARNING: final rollout checkpoint failed: " + err.Error()})
		}
	}
	d.mu.Lock()
	if d.policyStore != nil && d.lastGood != nil {
		if err := d.policyStore.SaveLastGoodPolicy(d.lastGood); err != nil {
			d.trail.Record(core.AuditEvent{At: now, Kind: fleet.AuditKindFleet,
				Outcome: "WARNING: final last-good checkpoint failed: " + err.Error()})
		}
	}
	d.mu.Unlock()
	d.trail.Record(core.AuditEvent{At: now, Kind: fleet.AuditKindFleet, Outcome: "shutdown: final state checkpoint taken"})
}

// propose stages a candidate payload fleet-wide. The rollback target is
// the current fleet last-good (the payload itself on the very first
// rollout, making rollback a no-op rather than a nil push).
func (d *fleetDaemon) propose(version string, payload []byte) error {
	d.mu.Lock()
	if version == "" {
		d.proposals++
		version = fmt.Sprintf("fleet-%d", d.proposals)
	}
	stable := d.lastGood
	if stable == nil {
		stable = payload
	}
	d.mu.Unlock()
	if err := d.co.Propose(d.now(), version, payload, stable); err != nil {
		return err
	}
	d.mu.Lock()
	d.pending = payload
	d.mu.Unlock()
	return nil
}

// traceView is the JSON shape of GET /debug/trace.
type traceView struct {
	Total     int64       `json:"total"`
	LastTrace string      `json:"last_trace,omitempty"`
	Trace     string      `json:"trace,omitempty"`
	Spans     []span.Span `json:"spans"`
	Flight    *flightView `json:"flight,omitempty"`
}

// flightView is the /debug/trace summary of the flight recorder.
type flightView struct {
	Trips    int    `json:"trips"`
	LastDump string `json:"last_dump,omitempty"`
}

// fleetHealth is the JSON shape of GET /fleet/health.
type fleetHealth struct {
	Status  string            `json:"status"` // "ok" or "degraded"
	Agents  map[string]int    `json:"agents"` // count per lease state
	Rollout fleet.FleetStatus `json:"rollout"`
	// Leading / Epoch / Holder summarize the HA lease view.
	Leading bool   `json:"leading"`
	Epoch   int64  `json:"epoch"`
	Holder  string `json:"holder,omitempty"`
}

// standby answers a write on a non-leading coordinator: 503 plus a
// leader hint, so beacons and operators fail over instead of mutating
// follower state.
func (d *fleetDaemon) standby(w http.ResponseWriter) bool {
	if d.lm.Leading() {
		return false
	}
	info := d.lm.Info()
	w.Header().Set(fleet.EpochHeader, strconv.FormatInt(info.Epoch, 10))
	http.Error(w, fmt.Sprintf("standby: not leading (leader %s, epoch %d)", info.Holder, info.Epoch),
		http.StatusServiceUnavailable)
	return true
}

// handler builds the coordinator HTTP mux.
func (d *fleetDaemon) handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/register", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if d.standby(w) {
			return
		}
		var req fleet.RegisterRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rec, err := d.reg.Register(d.now(), req.ID, req.Addr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The epoch in the response ratchets the agent's fencing gate, so
		// the whole fleet learns about a new leader within one
		// registration round — not only the agents it pushes to.
		writeJSON(w, http.StatusOK, fleet.RegisterResponse{
			Generation: rec.Generation,
			IntervalMs: d.reg.Config().HeartbeatInterval.Milliseconds(),
			Epoch:      d.lm.FenceEpoch(),
		})
	})

	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if d.standby(w) {
			return
		}
		var req fleet.HeartbeatRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set(fleet.EpochHeader, strconv.FormatInt(d.lm.FenceEpoch(), 10))
		switch err := d.reg.Heartbeat(d.now(), req.ID); {
		case errors.Is(err, fleet.ErrUnknownAgent):
			// 404 tells the beacon to re-register (new lease, new generation).
			http.Error(w, err.Error(), http.StatusNotFound)
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})

	mux.HandleFunc("/lease", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, leaseView{LeaseInfo: d.lm.Info(), Leading: d.lm.Leading(), ID: d.lm.Holder()})
	})

	mux.HandleFunc("/replicate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var cp fleet.Checkpoint
		if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&cp); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		now := d.now()
		// Observing the checkpoint's lease heals split brain from either
		// side: a newer epoch deposes us if we were leading...
		d.lm.Observe(cp.Lease, now)
		if d.lm.Leading() {
			// ...and if we still lead, the SENDER is the stale leader: fence
			// its replication stream exactly like a stale push.
			info := d.lm.Info()
			w.Header().Set(fleet.EpochHeader, strconv.FormatInt(info.Epoch, 10))
			http.Error(w, fmt.Sprintf("fenced: checkpoint epoch %d < leader epoch %d", cp.Lease.Epoch, info.Epoch),
				http.StatusForbidden)
			return
		}
		if err := d.fol.Apply(cp); err != nil {
			if fleet.IsFenced(err) {
				http.Error(w, err.Error(), http.StatusForbidden)
			} else {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		// Mirror the leader's last-good so a promotion (or a standby
		// restart) rolls back to the right payload.
		d.mu.Lock()
		if cp.LastGood != nil {
			d.lastGood = cp.LastGood
			if d.policyStore != nil {
				if err := d.policyStore.SaveLastGoodPolicy(cp.LastGood); err != nil {
					d.trail.Record(core.AuditEvent{At: now, Kind: fleet.AuditKindFleet,
						Outcome: "WARNING: persisting replicated last-good failed: " + err.Error()})
				}
			}
		}
		d.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("/fleet/agents", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Agents []fleet.AgentRecord `json:"agents"`
		}{Agents: d.reg.Agents()})
	})

	mux.HandleFunc("/fleet/policy", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, d.co.Status())
		case http.MethodPost:
			if d.standby(w) {
				return
			}
			body, err := io.ReadAll(io.LimitReader(r.Body, maxPolicyPayload))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := d.propose(r.URL.Query().Get("version"), body); err != nil {
				// 409 mirrors the agent API: a rollout in flight must not be
				// silently displaced.
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			writeJSON(w, http.StatusAccepted, d.co.Status())
		default:
			w.Header().Set("Allow", "GET, POST")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})

	mux.HandleFunc("/fleet/health", func(w http.ResponseWriter, r *http.Request) {
		agents := map[string]int{}
		active := 0
		for _, a := range d.reg.Agents() {
			agents[a.State]++
			if a.State == fleet.LeaseActive {
				active++
			}
		}
		info := d.lm.Info()
		h := fleetHealth{Status: "ok", Agents: agents, Rollout: d.co.Status(),
			Leading: d.lm.Leading(), Epoch: info.Epoch, Holder: info.Holder}
		code := http.StatusOK
		if active == 0 && len(d.reg.Agents()) > 0 {
			h.Status = "degraded" // a fleet with zero reachable agents is not ok
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		telemetry.TouchUptime(d.tel, d.start)
		if err := d.tel.WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = buf.WriteTo(w)
	})

	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		n := defaultTraceTail
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		v := traceView{Total: d.spans.Total(), LastTrace: d.spans.LastTrace()}
		if id := r.URL.Query().Get("trace"); id != "" {
			v.Trace = id
			v.Spans = d.spans.TraceSpans(id)
		} else {
			v.Spans = d.spans.Snapshot()
			if len(v.Spans) > n {
				v.Spans = v.Spans[len(v.Spans)-n:]
			}
		}
		if d.flight != nil {
			v.Flight = &flightView{Trips: d.flight.Trips(), LastDump: d.flight.LastDump()}
		}
		writeJSON(w, http.StatusOK, v)
	})

	if d.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	mux.HandleFunc("/debug/audit", func(w http.ResponseWriter, r *http.Request) {
		n := defaultAuditTail
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, http.StatusOK, struct {
			Total  int64             `json:"total"`
			Events []core.AuditEvent `json:"events"`
		}{Total: d.trail.Total(), Events: d.trail.Last(n)})
	})

	return mux
}

// writeJSON renders v as an indented JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
