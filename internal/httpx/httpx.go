// Package httpx carries the hardened http.Server construction shared by
// the Lachesis daemons. Every listener a daemon opens faces untrusted
// peers (agents, operators, sometimes a misbehaving load balancer), so
// a server with only ReadHeaderTimeout set is not enough: a client that
// sends its headers promptly and then stalls mid-body pins a handler
// goroutine forever. NewServer closes every slow-client gap at once.
package httpx

import (
	"net/http"
	"time"
)

// Default timeouts and limits for daemon listeners. They bound every
// phase of a connection's life: header read, full-request read,
// response write, keep-alive idle, and header size.
const (
	ReadHeaderTimeout = 5 * time.Second
	ReadTimeout       = 15 * time.Second
	WriteTimeout      = 15 * time.Second
	IdleTimeout       = 2 * time.Minute
	MaxHeaderBytes    = 64 << 10
)

// NewServer returns an http.Server for h with the full set of slow-client
// protections. Callers needing different bounds (tests, long-poll
// endpoints) may override individual fields on the returned server
// before serving.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		WriteTimeout:      WriteTimeout,
		IdleTimeout:       IdleTimeout,
		MaxHeaderBytes:    MaxHeaderBytes,
	}
}
