package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lachesis/internal/span"
)

// writeSpanLog records a small two-phase trace into a JSONL file through
// the same sink the daemons use, returning the file path and trace ID.
func writeSpanLog(t *testing.T, dir, process string) (string, string) {
	t.Helper()
	path := filepath.Join(dir, process+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := span.NewJSONLSink(f)
	rec := span.New(span.Config{Process: process, Sink: sink})
	root := rec.StartRoot(0, "cycle")
	child := rec.StartChild(root.Context(), time.Millisecond, "schedule")
	child.End(nil)
	root.End(nil)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	return path, rec.LastTrace()
}

func TestSpansModeTreeAndAttribution(t *testing.T) {
	dir := t.TempDir()
	p1, tr1 := writeSpanLog(t, dir, "lachesisd")
	p2, tr2 := writeSpanLog(t, dir, "lachesis-fleet")

	var out bytes.Buffer
	if err := run([]string{"-spans", p1 + "," + p2}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"trace " + tr1, "trace " + tr2,
		"cycle [lachesisd]", "schedule [lachesisd]",
		"cycle [lachesis-fleet]",
		"critical path",
		"4 spans, 2 traces",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("spans output missing %q:\n%s", want, s)
		}
	}
	// Attribution rows carry both wall and self columns.
	if !strings.Contains(s, "wall") || !strings.Contains(s, "self") {
		t.Errorf("attribution table missing wall/self columns:\n%s", s)
	}

	// -trace narrows to one trace.
	out.Reset()
	if err := run([]string{"-spans", p1 + "," + p2, "-trace", tr1}, &out); err != nil {
		t.Fatal(err)
	}
	s = out.String()
	if !strings.Contains(s, "trace "+tr1) || strings.Contains(s, "trace "+tr2) {
		t.Errorf("-trace filter leaked other traces:\n%s", s)
	}

	// Unknown trace and empty files fail loudly.
	if err := run([]string{"-spans", p1, "-trace", "deadbeef"}, &out); err == nil {
		t.Error("unknown -trace should fail")
	}
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spans", empty}, &out); err == nil {
		t.Error("span file without spans should fail")
	}
	if err := run([]string{"-spans", filepath.Join(dir, "missing.jsonl")}, &out); err == nil {
		t.Error("missing span file should fail")
	}
}

func TestSpansModeReadsFlightBundle(t *testing.T) {
	dir := t.TempDir()
	rec := span.New(span.Config{Process: "lachesisd"})
	root := rec.StartRoot(0, "cycle")
	root.End(nil)
	flight := span.NewFlightRecorder(rec, dir, 0)
	dump, err := flight.Trip(span.Trigger{
		At: time.Second, Kind: span.TriggerWatchdog, Detail: "schedule overran",
	})
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-spans", dump}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "trigger "+span.TriggerWatchdog) ||
		!strings.Contains(s, "schedule overran") ||
		!strings.Contains(s, "cycle [lachesisd]") {
		t.Errorf("flight bundle output = %s", s)
	}

	// A bundle tripped before any span completed (empty ring) still
	// prints its trigger line instead of failing.
	bare := span.NewFlightRecorder(span.New(span.Config{}), dir, 0)
	dump2, err := bare.Trip(span.Trigger{
		At: time.Second, Kind: span.TriggerGuardBlock, Detail: "first-cycle block",
	})
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-spans", dump2}, &out); err != nil {
		t.Fatalf("trigger-only bundle: %v", err)
	}
	if !strings.Contains(out.String(), "first-cycle block") {
		t.Errorf("trigger-only bundle output = %s", out.String())
	}
}
