package workloads

import (
	"testing"
	"time"

	"lachesis/internal/simos"
	"lachesis/internal/spe"
)

func TestQueryShapes(t *testing.T) {
	tests := []struct {
		name string
		q    *spe.LogicalQuery
		ops  int
	}{
		{"etl", ETL(), 10},
		{"stats", STATS(), 10},
		{"lr", LinearRoad(1), 9},
		{"vs", VoipStream(), 15},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.q.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			if got := len(tt.q.Ops()); got != tt.ops {
				t.Errorf("operator count = %d, want %d (paper §6.1)", got, tt.ops)
			}
		})
	}
}

func TestSYNShape(t *testing.T) {
	qs := SYN(DefaultSyn(1))
	if len(qs) != 20 {
		t.Fatalf("SYN queries = %d, want 20", len(qs))
	}
	totalOps := 0
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		totalOps += len(q.Ops())
	}
	if totalOps != 100 {
		t.Errorf("total SYN operators = %d, want 100 (paper §6.4)", totalOps)
	}
}

func TestSYNBlockingFractionApplied(t *testing.T) {
	qs := SYN(BlockingSyn(7))
	blocking := 0
	for _, q := range qs {
		for _, op := range q.Ops() {
			if op.BlockProb > 0 {
				blocking++
				if op.BlockMax != 200*time.Millisecond {
					t.Errorf("block max = %v, want 200ms", op.BlockMax)
				}
			}
		}
	}
	// 60 transform ops at 10%: expect a handful.
	if blocking < 2 || blocking > 14 {
		t.Errorf("blocking operators = %d, want ~6 of 60", blocking)
	}
}

func TestSYNDeterministicAcrossCalls(t *testing.T) {
	a := SYN(DefaultSyn(42))
	b := SYN(DefaultSyn(42))
	for i := range a {
		opsA, opsB := a[i].Ops(), b[i].Ops()
		for j := range opsA {
			if opsA[j].Cost != opsB[j].Cost || opsA[j].Selectivity != opsB[j].Selectivity {
				t.Fatalf("SYN not reproducible at query %d op %d", i, j)
			}
		}
	}
}

// runQuery deploys q on a Storm-flavor Odroid and returns the deployment
// after d seconds.
func runQuery(t *testing.T, q *spe.LogicalQuery, src spe.Source, d time.Duration) (*simos.Kernel, *spe.Deployment) {
	t.Helper()
	k := simos.New(simos.OdroidXU4())
	e, err := spe.New(k, spe.Config{Name: "storm", Flavor: spe.FlavorStorm, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := e.Deploy(q, src)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(d)
	return k, dep
}

func TestETLRunsUnderloaded(t *testing.T) {
	_, d := runQuery(t, ETL(), IoTSource(500, 1), 10*time.Second)
	ing := d.Ingested()
	if ing < 4900 {
		t.Errorf("ingested %d, want ~5000", ing)
	}
	// Outlier + duplicate filtering: egress slightly below ingress.
	eg := d.EgressCount()
	ratio := float64(eg) / float64(ing)
	if ratio < 0.90 || ratio > 1.0 {
		t.Errorf("egress/ingress = %.3f, want ~0.96", ratio)
	}
	if lat := d.Latencies(); lat.MeanProc > 100*time.Millisecond {
		t.Errorf("underloaded ETL latency %v too high", lat.MeanProc)
	}
}

func TestSTATSHighSelectivity(t *testing.T) {
	_, d := runQuery(t, STATS(), IoTSource(150, 2), 10*time.Second)
	ing := d.Ingested()
	eg := d.EgressCount()
	sel := float64(eg) / float64(ing)
	// Paper: ~15 egress tuples per ingress tuple.
	if sel < 13 || sel > 17 {
		t.Errorf("STATS selectivity = %.1f, want ~15", sel)
	}
}

func TestLinearRoadBothBranchesProduce(t *testing.T) {
	_, d := runQuery(t, LinearRoad(1), LRSource(2000, 3), 10*time.Second)
	if d.Ingested() < 19000 {
		t.Errorf("ingested %d, want ~20000", d.Ingested())
	}
	// var-toll (sel .7) + fixed-toll (sel .3) merge: egress ~= ingress*0.99.
	ratio := float64(d.EgressCount()) / float64(d.Ingested())
	if ratio < 0.90 || ratio > 1.05 {
		t.Errorf("egress/ingress = %.3f, want ~0.99", ratio)
	}
}

func TestLinearRoadParallelism(t *testing.T) {
	q := LinearRoad(2)
	k, d := runQuery(t, q, LRSource(2000, 3), 5*time.Second)
	if got := len(d.Ops()); got != 18 {
		t.Errorf("physical ops = %d, want 18 (9 logical x2)", got)
	}
	// Key-by operator replicas must both receive work.
	reps := d.PhysicalFor("count-vehicles")
	if len(reps) != 2 {
		t.Fatalf("count-vehicles replicas = %d", len(reps))
	}
	for _, r := range reps {
		if r.Snapshot(k.Now()).InCount == 0 {
			t.Errorf("replica %s starved", r.Name())
		}
	}
}

func TestVoipStreamDedupDropsDuplicates(t *testing.T) {
	_, d := runQuery(t, VoipStream(), VSSource(1000, 4), 10*time.Second)
	disp := d.PhysicalFor("dispatcher")[0]
	snap := disp.Snapshot(10 * time.Second)
	if snap.InCount == 0 {
		t.Fatal("dispatcher processed nothing")
	}
	drop := 1 - float64(snap.OutCount)/float64(snap.InCount*6) // 6 downstream routes
	// ~5% duplicates from the source; with bloom false positives the
	// drop rate should land near that.
	if drop < 0.01 || drop > 0.15 {
		t.Errorf("dispatcher drop rate = %.3f, want ~0.05", drop)
	}
	if d.EgressCount() == 0 {
		t.Error("no scores produced")
	}
}
