package core

import (
	"errors"
	"fmt"
	"time"
)

// ShardedMiddleware partitions bindings across independent Middleware
// instances ("shards") so entity-disjoint binding groups step on
// independent clocks and independent scratch state. Partitioning is by
// driver ownership: the first binding that names a driver claims it for
// its shard, and every later binding naming that driver lands on the same
// shard. A binding may therefore never span two shards — entities (which
// belong to drivers) stay shard-disjoint by construction, which is what
// makes per-shard clocks sound: no schedule on shard A can touch a thread
// or cgroup that shard B also manages.
//
// Each shard carries its own DriverGate. Because a driver lives on
// exactly one shard, per-driver apply ordering — the only ordering the
// gate promises — is preserved verbatim; there is simply no cross-shard
// writer to order against. A shared AuditTrail (SetAudit) stays coherent
// per entity for the same reason: events for one entity are always
// produced by one shard, so replaying the merged trail converges to the
// same desired state as replaying a sequential baseline's trail.
//
// Step(now) fans out to every shard in shard order on the calling
// goroutine — deterministic, and on a single-core host as fast as any
// alternative. Callers that want genuinely independent cadences (e.g. a
// latency-critical query group stepping at 100ms against a background
// group at 10s) drive StepShard from separate loops; shards never share
// mutable state, so concurrent StepShard calls on different shards are
// safe.
type ShardedMiddleware struct {
	shards []*Middleware
	owner  map[string]int // driver name -> shard index
	load   []int          // bindings per shard, for least-loaded placement

	// merged StepStats backing arrays, reused across Step calls (same
	// contract as Middleware: valid until the next Step).
	bindingStats []BindingStepStats
	driverStats  []DriverStepStats
}

// NewShardedMiddleware creates n shards over one shared metric provider
// (nil selects a fresh one; sharing is safe because the provider
// serializes per-driver state and drivers are shard-disjoint). Each shard
// gets its own DriverGate.
func NewShardedMiddleware(provider *Provider, n int) *ShardedMiddleware {
	if n < 1 {
		n = 1
	}
	if provider == nil {
		provider = NewProvider(nil)
	}
	s := &ShardedMiddleware{
		shards: make([]*Middleware, n),
		owner:  make(map[string]int),
		load:   make([]int, n),
	}
	for i := range s.shards {
		m := NewMiddleware(provider)
		m.SetWriteGate(NewDriverGate())
		s.shards[i] = m
	}
	return s
}

// Shards returns the number of shards.
func (s *ShardedMiddleware) Shards() int { return len(s.shards) }

// Shard returns shard i for per-shard access (telemetry, health,
// stepping it on its own clock).
func (s *ShardedMiddleware) Shard(i int) *Middleware { return s.shards[i] }

// ShardOf reports which shard owns a driver name (-1 when unclaimed).
func (s *ShardedMiddleware) ShardOf(driver string) int {
	if i, ok := s.owner[driver]; ok {
		return i
	}
	return -1
}

// Bind routes a binding to the shard owning its drivers. A binding whose
// drivers are already claimed by two different shards is rejected — that
// would entangle the shards' clocks. Bindings over only unclaimed drivers
// go to the least-loaded shard, which then claims those drivers.
func (s *ShardedMiddleware) Bind(b Binding) error {
	target := -1
	for _, d := range b.Drivers {
		idx, ok := s.owner[d.Name()]
		if !ok {
			continue
		}
		if target != -1 && idx != target {
			return fmt.Errorf("core: binding spans shards %d and %d (driver %q vs earlier drivers); bindings must stay within one entity-disjoint group",
				target, idx, d.Name())
		}
		target = idx
	}
	if target == -1 {
		target = 0
		for i := 1; i < len(s.load); i++ {
			if s.load[i] < s.load[target] {
				target = i
			}
		}
	}
	if err := s.shards[target].Bind(b); err != nil {
		return err
	}
	for _, d := range b.Drivers {
		s.owner[d.Name()] = target
	}
	s.load[target]++
	return nil
}

// Step steps every shard at the same virtual time, in shard order, and
// merges the per-shard stats: counts sum, Next is the earliest shard
// wake-up, Wall sums the (sequential) shard walls, and the per-binding /
// per-driver breakdowns concatenate in shard order. The merged slices are
// scratch owned by the ShardedMiddleware, valid until its next Step.
func (s *ShardedMiddleware) Step(now time.Duration) (StepStats, error) {
	merged := StepStats{}
	merged.Bindings = s.bindingStats[:0]
	merged.Drivers = s.driverStats[:0]
	var errs []error
	for _, m := range s.shards {
		st, err := m.Step(now)
		if err != nil {
			errs = append(errs, err)
		}
		merged.PoliciesRun += st.PoliciesRun
		merged.Entities += st.Entities
		merged.Quarantined += st.Quarantined
		merged.Wall += st.Wall
		if merged.Next == 0 || st.Next < merged.Next {
			merged.Next = st.Next
		}
		merged.Bindings = append(merged.Bindings, st.Bindings...)
		merged.Drivers = append(merged.Drivers, st.Drivers...)
	}
	s.bindingStats = merged.Bindings
	s.driverStats = merged.Drivers
	return merged, errors.Join(errs...)
}

// StepShard steps only shard i at its own virtual time — the independent
// clock. The returned stats are the shard's own (scratch valid until that
// shard's next step).
func (s *ShardedMiddleware) StepShard(i int, now time.Duration) (StepStats, error) {
	return s.shards[i].Step(now)
}

// Health merges every shard's health snapshot.
func (s *ShardedMiddleware) Health() Health {
	var h Health
	for _, m := range s.shards {
		sh := m.Health()
		h.Bindings = append(h.Bindings, sh.Bindings...)
		h.Drivers = append(h.Drivers, sh.Drivers...)
	}
	return h
}

// SetResilience fans the config out to every shard.
func (s *ShardedMiddleware) SetResilience(r Resilience) {
	for _, m := range s.shards {
		m.SetResilience(r)
	}
}

// SetParallelism fans the config out to every shard.
func (s *ShardedMiddleware) SetParallelism(p Parallelism) {
	for _, m := range s.shards {
		m.SetParallelism(p)
	}
}

// SetAudit shares one audit trail across all shards (AuditTrail is
// mutex-protected; entity-level event ordering stays per-shard and hence
// coherent).
func (s *ShardedMiddleware) SetAudit(trail *AuditTrail) {
	for _, m := range s.shards {
		m.SetAudit(trail)
	}
}

// Close releases every shard's worker pool.
func (s *ShardedMiddleware) Close() {
	for _, m := range s.shards {
		m.Close()
	}
}
