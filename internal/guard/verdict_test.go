package guard

import (
	"strings"
	"testing"
)

func TestJudgeSLOWithinBounds(t *testing.T) {
	v := JudgeSLO(Config{},
		SLOSample{LatencyP95: 1, Throughput: 100, OK: true},
		SLOSample{LatencyP95: 1.2, Throughput: 95, OK: true},
		SLOSample{LatencyP95: 1, Throughput: 100, OK: true},
		SLOSample{LatencyP95: 1.1, Throughput: 98, OK: true})
	if v.Rollback || v.Insufficient {
		t.Fatalf("verdict = %+v, want clean", v)
	}
}

func TestJudgeSLOLatencyRollback(t *testing.T) {
	// Group degraded 4x while the control stayed flat: past the default
	// 1.5x limit.
	v := JudgeSLO(Config{},
		SLOSample{LatencyP95: 1, Throughput: 100, OK: true},
		SLOSample{LatencyP95: 4, Throughput: 100, OK: true},
		SLOSample{LatencyP95: 1, Throughput: 100, OK: true},
		SLOSample{LatencyP95: 1, Throughput: 100, OK: true})
	if !v.Rollback || !strings.Contains(v.Reason, "latency") {
		t.Fatalf("verdict = %+v, want latency rollback", v)
	}
	if v.LatencyFactor != 4 {
		t.Errorf("LatencyFactor = %v, want 4", v.LatencyFactor)
	}
}

func TestJudgeSLOControlDegradationExcuses(t *testing.T) {
	// Both groups degraded 4x (a node-wide event, not the candidate):
	// relative to the control the group is clean.
	v := JudgeSLO(Config{},
		SLOSample{LatencyP95: 1, Throughput: 100, OK: true},
		SLOSample{LatencyP95: 4, Throughput: 100, OK: true},
		SLOSample{LatencyP95: 1, Throughput: 100, OK: true},
		SLOSample{LatencyP95: 4, Throughput: 100, OK: true})
	if v.Rollback {
		t.Fatalf("verdict = %+v, want clean (control degraded equally)", v)
	}
}

func TestJudgeSLOThroughputRollback(t *testing.T) {
	v := JudgeSLO(Config{},
		SLOSample{LatencyP95: 1, Throughput: 100, OK: true},
		SLOSample{LatencyP95: 1, Throughput: 30, OK: true},
		SLOSample{LatencyP95: 1, Throughput: 100, OK: true},
		SLOSample{LatencyP95: 1, Throughput: 100, OK: true})
	if !v.Rollback || !strings.Contains(v.Reason, "throughput") {
		t.Fatalf("verdict = %+v, want throughput rollback", v)
	}
}

func TestJudgeSLOInsufficientAbstains(t *testing.T) {
	v := JudgeSLO(Config{},
		SLOSample{}, SLOSample{LatencyP95: 99, OK: true},
		SLOSample{}, SLOSample{})
	if !v.Insufficient || v.Rollback {
		t.Fatalf("verdict = %+v, want abstention", v)
	}
}
