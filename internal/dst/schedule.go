package dst

import (
	"encoding/json"
	"math/rand"
	"time"

	"lachesis/internal/faults"
)

// Window is a half-open virtual-time interval [From, To) in ticks (one
// tick = one virtual second).
type Window struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Contains reports whether tick falls inside the window.
func (w Window) Contains(tick int) bool { return tick >= w.From && tick < w.To }

// overlaps reports whether the window intersects [from, to).
func (w Window) overlaps(from, to int) bool { return w.From < to && from < w.To }

// faultWindows converts tick windows to the duration windows the
// internal/faults injectors check against the virtual clock.
func faultWindows(ws []Window) faults.Windows {
	out := make(faults.Windows, 0, len(ws))
	for _, w := range ws {
		out = append(out, faults.Window{
			From: time.Duration(w.From) * time.Second,
			To:   time.Duration(w.To) * time.Second,
		})
	}
	return out
}

// Crash schedules one coordinator replica crash: the replica goes dark
// at tick At and restarts (warm, from its persisted state) at RestartAt.
type Crash struct {
	At        int `json:"at"`
	RestartAt int `json:"restart_at"`
}

// ReplicaFaults is one coordinator replica's slice of the schedule.
type ReplicaFaults struct {
	// Crashes are crash/warm-restart points.
	Crashes []Crash `json:"crashes,omitempty"`
	// AgentPartitions cut this replica off from every agent (pushes fail
	// transiently, heartbeats go dark) for each window.
	AgentPartitions []Window `json:"agent_partitions,omitempty"`
	// PeerPartitions cut the replica<->replica link in both directions.
	PeerPartitions []Window `json:"peer_partitions,omitempty"`
	// LeaseLoss drops only this replica's GET /lease polls of its peer:
	// it goes blind on leader liveness while replication still flows.
	LeaseLoss []Window `json:"lease_loss,omitempty"`
	// ReplicationLag drops only checkpoints this replica publishes, so
	// its standby falls behind while the lease stays observable.
	ReplicationLag []Window `json:"replication_lag,omitempty"`
	// DriftRate skews the replica's local clock: local = rate * global.
	// Staleness judgements (lease expiry, registry sweeps) run on the
	// drifted clock, so a fast standby promotes early and a slow leader
	// renews late — the fencing stack must absorb both.
	DriftRate float64 `json:"drift_rate"`
}

// AgentFaults is one agent node's slice of the schedule.
type AgentFaults struct {
	// Partitions make the agent unreachable from every replica (and its
	// heartbeats are lost) for each window.
	Partitions []Window `json:"partitions,omitempty"`
	// OSOutages fail the agent's kernel-control operations transiently
	// (cgroupfs remounted read-only) for each window; the decision cycle
	// must retry its way back to the desired schedule afterwards.
	OSOutages []Window `json:"os_outages,omitempty"`
}

// Proposal is the policy rollout the schedule injects.
type Proposal struct {
	// Tick is the earliest tick the proposal is handed to the current
	// leader (retried next tick while no leader is reachable).
	Tick int `json:"tick"`
	// Version names the candidate (the idempotency handshake key).
	Version string `json:"version"`
	// Adversarial selects the inverted-priority payload the guard stack
	// must contain and roll back instead of the sane re-tuning.
	Adversarial bool `json:"adversarial"`
}

// Schedule is a complete, explicit simulation scenario. Generate derives
// one deterministically from a seed; the shrinker edits copies of it
// directly, which is why every intervention is plain data rather than a
// closure.
type Schedule struct {
	// Seed is the generator seed this schedule was derived from (kept
	// for provenance; running a hand-edited schedule ignores it).
	Seed int64 `json:"seed"`
	// Agents and Bindings size the simulated fleet.
	Agents   int `json:"agents"`
	Bindings int `json:"bindings"`
	// LocalWindow is each agent's local canary observation window in
	// decision cycles. It is generated long enough that a re-push after
	// the worst-case failover still meets an in-flight local rollout
	// (the idempotent 409 handshake) instead of a finished one.
	LocalWindow int `json:"local_window"`
	// TTLTicks is the coordinator lease TTL in ticks.
	TTLTicks int `json:"ttl_ticks"`
	// WindowTicks/PushTicks/Waves shape the fleet rollout.
	WindowTicks int `json:"window_ticks"`
	PushTicks   int `json:"push_ticks"`
	Waves       int `json:"waves"`
	// Ticks is the fault horizon: every fault window and crash resolves
	// before it, so the run is quiescent afterwards.
	Ticks int `json:"ticks"`
	// MaxTicks bounds the driven run (rollout completion past the fault
	// horizon).
	MaxTicks int `json:"max_ticks"`
	// Settle is the post-rollout tail that lets the last wave's local
	// canaries promote before the end-state invariants run.
	Settle int `json:"settle"`
	// Proposal is the injected rollout.
	Proposal Proposal `json:"proposal"`
	// Replicas holds the two coordinator replicas' fault plans.
	Replicas []ReplicaFaults `json:"replicas"`
	// AgentFaults holds one plan per agent (index-aligned).
	AgentFaults []AgentFaults `json:"agent_faults"`
}

// MarshalJSON-friendly round-trip helpers.

// EncodeJSON renders the schedule as indented JSON (the minimal-repro
// artifact format).
func (s Schedule) EncodeJSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// DecodeSchedule parses a schedule previously written by EncodeJSON.
func DecodeSchedule(data []byte) (Schedule, error) {
	var s Schedule
	err := json.Unmarshal(data, &s)
	return s, err
}

// Interventions counts the schedule's scheduled fault interventions
// (crashes plus fault windows) — the knob count the shrinker reduces.
func (s Schedule) Interventions() int {
	n := 0
	for _, r := range s.Replicas {
		n += len(r.Crashes) + len(r.AgentPartitions) + len(r.PeerPartitions) +
			len(r.LeaseLoss) + len(r.ReplicationLag)
	}
	for _, a := range s.AgentFaults {
		n += len(a.Partitions) + len(a.OSOutages)
	}
	return n
}

// clone deep-copies the schedule so shrink candidates never alias.
func (s Schedule) clone() Schedule {
	out := s
	out.Replicas = make([]ReplicaFaults, len(s.Replicas))
	for i, r := range s.Replicas {
		cp := r
		cp.Crashes = append([]Crash(nil), r.Crashes...)
		cp.AgentPartitions = append([]Window(nil), r.AgentPartitions...)
		cp.PeerPartitions = append([]Window(nil), r.PeerPartitions...)
		cp.LeaseLoss = append([]Window(nil), r.LeaseLoss...)
		cp.ReplicationLag = append([]Window(nil), r.ReplicationLag...)
		out.Replicas[i] = cp
	}
	out.AgentFaults = make([]AgentFaults, len(s.AgentFaults))
	for i, a := range s.AgentFaults {
		cp := a
		cp.Partitions = append([]Window(nil), a.Partitions...)
		cp.OSOutages = append([]Window(nil), a.OSOutages...)
		out.AgentFaults[i] = cp
	}
	return out
}

// Generation bounds. The constants encode the contract under which the
// invariants are theorems rather than hopes — see ARCHITECTURE.md
// "Deterministic simulation" for the reasoning behind each bound.
const (
	genMinAgents = 3
	genMaxAgents = 6
	// genCrashGuard separates consecutive crash episodes so the fleet
	// always has one replica whose lease view is anchored (two blind
	// standbys racing a promotion could mint the same epoch twice).
	genCrashGuard = 3
	// genMaxLag bounds a replication-lag window so a standby promoting
	// from a stale checkpoint re-pushes while the agents' local canary
	// (LocalWindow >= 16) is still in flight — the 409 handshake absorbs
	// the duplicate instead of restaging a finished candidate.
	genMaxLag = 6
	// genFaultMargin keeps every fault window clear of the horizon.
	genFaultMargin = 5
)

// Generate derives a Schedule from a 64-bit seed. The same seed always
// produces the identical schedule; all randomness is consumed here, so a
// run of the result is deterministic by construction.
func Generate(seed int64) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}
	s.Agents = genMinAgents + rng.Intn(genMaxAgents-genMinAgents+1)
	s.Bindings = 2 + rng.Intn(4)
	s.LocalWindow = 16 + rng.Intn(5)
	s.TTLTicks = 3 + rng.Intn(2)
	s.WindowTicks = 4 + rng.Intn(3)
	// PushTicks must outlast a local rollout plus a lease TTL: a leader
	// partitioned mid-wave has to still be retrying that wave when the
	// partition heals AFTER the agents' local canaries finished — the
	// moment a fencing regression turns into a double push. Shorter
	// deadlines would make the stale leader give up before the overlap.
	s.PushTicks = s.LocalWindow + s.TTLTicks + 10 + rng.Intn(3)
	s.Waves = 2
	s.Ticks = 100 + rng.Intn(31)
	s.Settle = s.LocalWindow + 8
	s.MaxTicks = s.Ticks + 90
	s.Proposal = Proposal{Tick: 3 + rng.Intn(6), Version: "v2"}
	s.Replicas = make([]ReplicaFaults, 2)
	for i := range s.Replicas {
		s.Replicas[i].DriftRate = 0.9 + 0.2*rng.Float64()
	}
	s.AgentFaults = make([]AgentFaults, s.Agents)

	horizon := s.Ticks - genFaultMargin
	// busy tracks replica crash episodes (with guard gaps) so the two
	// replicas are never blind simultaneously.
	var busy []Window

	overlapsBusy := func(from, to int) bool {
		for _, b := range busy {
			if b.overlaps(from, to) {
				return true
			}
		}
		return false
	}

	interventions := 1 + rng.Intn(3)
	for i := 0; i < interventions; i++ {
		switch rng.Intn(6) {
		case 0: // leader (or standby) crash + warm restart
			ri := rng.Intn(2)
			at := s.Proposal.Tick + 2 + rng.Intn(40)
			dur := s.TTLTicks + 2 + rng.Intn(8)
			if at+dur >= horizon {
				continue
			}
			if overlapsBusy(at-genCrashGuard, at+dur+s.TTLTicks+genCrashGuard) {
				continue
			}
			busy = append(busy, Window{at - genCrashGuard, at + dur + s.TTLTicks + genCrashGuard})
			s.Replicas[ri].Crashes = append(s.Replicas[ri].Crashes, Crash{At: at, RestartAt: at + dur})
		case 1: // split brain: live leader partitioned from peer AND agents
			// The cut must start before the wave-1 push (which lands at
			// Proposal.Tick + WindowTicks + 1) so the push is trapped
			// inside the partition and retried against the deadline.
			at := s.Proposal.Tick + s.WindowTicks - 1 + rng.Intn(2)
			dur := s.TTLTicks + s.LocalWindow + 3 + rng.Intn(5)
			if at+dur >= horizon || overlapsBusy(at, at+dur+s.TTLTicks) {
				continue
			}
			busy = append(busy, Window{at, at + dur + s.TTLTicks})
			w := Window{at, at + dur}
			s.Replicas[0].PeerPartitions = append(s.Replicas[0].PeerPartitions, w)
			s.Replicas[0].AgentPartitions = append(s.Replicas[0].AgentPartitions, w)
		case 2: // replication lag (standby resumes from a stale checkpoint)
			ri := rng.Intn(2)
			at := s.Proposal.Tick + rng.Intn(40)
			dur := 2 + rng.Intn(genMaxLag-1)
			if at+dur >= horizon {
				continue
			}
			// At most one lag window per replica: chained windows could
			// stack a staleness gap past what the 409 handshake absorbs.
			if len(s.Replicas[ri].ReplicationLag) > 0 {
				continue
			}
			s.Replicas[ri].ReplicationLag = append(s.Replicas[ri].ReplicationLag,
				Window{at, at + dur})
		case 3: // lease-observation loss (standby goes blind on liveness)
			ri := rng.Intn(2)
			at := 2 + rng.Intn(60)
			dur := 2 + rng.Intn(8)
			if at+dur >= horizon {
				continue
			}
			s.Replicas[ri].LeaseLoss = append(s.Replicas[ri].LeaseLoss,
				Window{at, at + dur})
		case 4: // single-agent partition
			ai := rng.Intn(s.Agents)
			at := 2 + rng.Intn(60)
			dur := 3 + rng.Intn(12)
			if at+dur >= horizon {
				continue
			}
			s.AgentFaults[ai].Partitions = append(s.AgentFaults[ai].Partitions, Window{at, at + dur})
		case 5: // single-agent OS-control outage
			ai := rng.Intn(s.Agents)
			at := 2 + rng.Intn(70)
			dur := 2 + rng.Intn(5)
			if at+dur >= horizon {
				continue
			}
			s.AgentFaults[ai].OSOutages = append(s.AgentFaults[ai].OSOutages, Window{at, at + dur})
		}
	}

	// An adversarial candidate is only injected when the schedule keeps
	// every agent reachable and replication intact for the rollout's
	// lifetime: canary containment is promised to agents the rollback
	// can reach, and a rollout whose state is lost mid-flight (lagged
	// checkpoint across a failover) legitimately strands the canary
	// cohort on the candidate. Those are documented contract boundaries,
	// not bugs, so the generator does not cross them.
	if rng.Float64() < 0.35 && s.adversarialSafe() {
		s.Proposal.Adversarial = true
	}
	return s
}

// adversarialSafe reports whether the schedule's faults stay inside the
// containment contract (see Generate).
func (s Schedule) adversarialSafe() bool {
	from, to := s.Proposal.Tick, s.MaxTicks
	for _, r := range s.Replicas {
		if len(r.Crashes) > 0 || len(r.ReplicationLag) > 0 {
			return false
		}
		for _, w := range r.AgentPartitions {
			if w.overlaps(from, to) {
				return false
			}
		}
		for _, w := range r.PeerPartitions {
			if w.overlaps(from, to) {
				return false
			}
		}
	}
	for _, a := range s.AgentFaults {
		for _, w := range a.Partitions {
			if w.overlaps(from, to) {
				return false
			}
		}
	}
	return true
}
