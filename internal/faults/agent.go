package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lachesis/internal/driver"
	"lachesis/internal/fleet"
	"lachesis/internal/guard"
)

// AgentPlan configures a fault-injecting wrapper around a
// fleet.AgentClient: the coordinator-side view of a partitioned, slow,
// or flaky lachesisd agent. As with the driver/OS injectors, virtual
// time (the caller's clock) selects the fault windows, so fleet chaos
// experiments replay deterministically.
type AgentPlan struct {
	// Seed drives all probabilistic faults (0 is a valid seed).
	Seed int64
	// FailRate is the probability in [0,1] that any one call fails with
	// a transient (retryable) transport error.
	FailRate float64
	// Partitions are virtual-time windows during which every call fails —
	// the network between coordinator and agent is down. The agent itself
	// keeps running; only the coordinator's view goes dark.
	Partitions Windows
	// SlowWindows are windows during which every call additionally
	// sleeps SlowLatency (wall-clock) before answering — a saturated
	// agent that responds, just slowly.
	SlowWindows Windows
	// SlowLatency is the delay injected inside SlowWindows.
	SlowLatency time.Duration
	// Clock supplies virtual time for window checks (nil = all windows
	// inactive unless they contain 0).
	Clock func() time.Duration
	// Sleep implements SlowLatency (nil = no-op).
	Sleep func(time.Duration)
}

// Agent wraps a fleet.AgentClient with the faults of an AgentPlan.
type Agent struct {
	inner fleet.AgentClient
	plan  AgentPlan

	// mu guards rng and the counters: agent calls arrive from the
	// fan-out's parallel goroutines.
	mu       sync.Mutex
	rng      *rand.Rand
	calls    int
	injected int
}

var (
	_ fleet.AgentClient = (*Agent)(nil)
	_ fleet.TracedAgent = (*Agent)(nil)
	_ fleet.FencedAgent = (*Agent)(nil)
)

// WrapAgent wraps an agent client with a fault plan.
func WrapAgent(inner fleet.AgentClient, plan AgentPlan) *Agent {
	return &Agent{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Propose implements fleet.AgentClient.
func (a *Agent) Propose(payload []byte) (guard.Status, error) {
	if err := a.gate("propose"); err != nil {
		return guard.Status{}, err
	}
	return a.inner.Propose(payload)
}

// ProposeTraced implements fleet.TracedAgent, delegating to the inner
// client's traced path when it has one (plain Propose otherwise, which
// drops only the trace, never the payload).
func (a *Agent) ProposeTraced(payload []byte, traceparent string) (guard.Status, error) {
	if err := a.gate("propose"); err != nil {
		return guard.Status{}, err
	}
	if t, ok := a.inner.(fleet.TracedAgent); ok {
		return t.ProposeTraced(payload, traceparent)
	}
	return a.inner.Propose(payload)
}

// ProposeFenced implements fleet.FencedAgent, delegating to the inner
// client's fenced path when it has one. An inner client without fencing
// falls back to the traced path — the fault wrapper must never let an
// epoch bypass a gate the real client would have enforced, and the
// in-process harness nodes as well as HTTPAgent all implement
// fleet.FencedAgent.
func (a *Agent) ProposeFenced(payload []byte, traceparent string, epoch int64) (guard.Status, error) {
	if err := a.gate("propose"); err != nil {
		return guard.Status{}, err
	}
	if f, ok := a.inner.(fleet.FencedAgent); ok {
		return f.ProposeFenced(payload, traceparent, epoch)
	}
	if t, ok := a.inner.(fleet.TracedAgent); ok {
		return t.ProposeTraced(payload, traceparent)
	}
	return a.inner.Propose(payload)
}

// Status implements fleet.AgentClient.
func (a *Agent) Status() (guard.Status, error) {
	if err := a.gate("status"); err != nil {
		return guard.Status{}, err
	}
	return a.inner.Status()
}

// SLO implements fleet.AgentClient.
func (a *Agent) SLO() (guard.SLOSample, error) {
	if err := a.gate("slo"); err != nil {
		return guard.SLOSample{}, err
	}
	return a.inner.SLO()
}

// Injected returns how many calls this wrapper failed.
func (a *Agent) Injected() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.injected
}

// Calls returns how many calls the wrapper saw.
func (a *Agent) Calls() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.calls
}

// gate applies the plan to one call: partition and probabilistic
// failures return a transient error (the fan-out's retry/breaker path);
// slow windows delay, then let the call through.
func (a *Agent) gate(op string) error {
	a.mu.Lock()
	a.calls++
	var now time.Duration
	if a.plan.Clock != nil {
		now = a.plan.Clock()
	}
	partitioned := a.plan.Partitions.Contains(now)
	flaky := a.plan.FailRate > 0 && a.rng.Float64() < a.plan.FailRate
	slow := a.plan.SlowWindows.Contains(now)
	if partitioned || flaky {
		a.injected++
		a.mu.Unlock()
		kind := "flaky"
		if partitioned {
			kind = "partitioned"
		}
		return driver.MarkTransient(fmt.Errorf("%w: agent %s (%s)", ErrInjected, kind, op))
	}
	a.mu.Unlock()
	if slow && a.plan.SlowLatency > 0 && a.plan.Sleep != nil {
		a.plan.Sleep(a.plan.SlowLatency)
	}
	return nil
}

