package core

import (
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// benchDriver is an allocation-free driver for steady-state cycle tests:
// Entities returns a cached slice and Fetch refills one owned values map.
// Reusing the fetch map is safe here because the bench registers no
// derived metrics (nothing reads ComputeCtx.Prev).
type benchDriver struct {
	name string
	ents []Entity
	vals EntityValues
	tick float64
}

func newBenchDriver(name string, firstTID, nEnts int) *benchDriver {
	d := &benchDriver{name: name, vals: make(EntityValues, nEnts)}
	for i := 0; i < nEnts; i++ {
		d.ents = append(d.ents, Entity{
			Name:   name + "-op" + string(rune('a'+i)),
			Driver: name,
			Query:  name + "-q",
			Thread: firstTID + i,
		})
	}
	return d
}

func (d *benchDriver) Name() string { return d.name }

// Entities returns the cached slice; the middleware only iterates it.
func (d *benchDriver) Entities() []Entity { return d.ents }

func (d *benchDriver) Provides(metric string) bool { return metric == MetricQueueSize }

func (d *benchDriver) Fetch(metric string, now time.Duration) (EntityValues, error) {
	d.tick++
	for i, e := range d.ents {
		d.vals[e.Name] = float64((int(d.tick)+i)%7) * 10
	}
	return d.vals, nil
}

// nopOS counts control ops without allocating.
type nopOS struct {
	nices, ensures, shares, moves atomic.Int64
	// fail, when set between Steps, makes every control call fail (memo
	// invalidation tests).
	fail error
}

func (o *nopOS) SetNice(tid, nice int) error             { o.nices.Add(1); return o.fail }
func (o *nopOS) EnsureCgroup(name string) error          { o.ensures.Add(1); return o.fail }
func (o *nopOS) SetShares(name string, shares int) error { o.shares.Add(1); return o.fail }
func (o *nopOS) MoveThread(tid int, name string) error   { o.moves.Add(1); return o.fail }

// calls sums all control traffic the backend has seen.
func (o *nopOS) calls() int64 {
	return o.nices.Load() + o.ensures.Load() + o.shares.Load() + o.moves.Load()
}

// benchMiddleware assembles the scale-harness shape without audit, spans,
// or watchdog: n bindings, each over its own driver with entsPer
// entities, GroupPerQuery(QS) through a combined translator and a
// per-binding coalescer, parallel pipeline with a write gate.
func benchMiddleware(tb testing.TB, n, entsPer int) (*Middleware, *nopOS) {
	tb.Helper()
	os := &nopOS{}
	mw := NewMiddleware(nil)
	mw.SetWriteGate(NewDriverGate())
	mw.SetParallelism(Parallelism{FetchWorkers: 8, ApplyWorkers: 4})
	for i := 0; i < n; i++ {
		d := newBenchDriver("spe"+strconv.Itoa(i), 1000+i*entsPer, entsPer)
		if err := mw.Bind(Binding{
			Policy:     GroupPerQuery(NewQSPolicy()),
			Translator: NewCombinedTranslator(NewCoalescer(os, nil), 0, 0),
			Drivers:    []Driver{d},
			Period:     time.Second,
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return mw, os
}

// TestSteadyCycleZeroAllocs is the tentpole guarantee: after warmup, a
// full decision cycle — fetch, schedule, translate, coalesce, apply —
// performs zero heap allocations per Step.
func TestSteadyCycleZeroAllocs(t *testing.T) {
	mw, _ := benchMiddleware(t, 32, 4)
	defer mw.Close()
	now := time.Duration(0)
	step := func() {
		if _, err := mw.Step(now); err != nil {
			t.Fatal(err)
		}
		now += time.Second
	}
	for i := 0; i < 5; i++ {
		step() // warmup: scratch buffers, pools, interned keys materialize
	}
	if avg := testing.AllocsPerRun(20, step); avg != 0 {
		t.Fatalf("steady-state Step allocates %.1f times per cycle, want 0", avg)
	}
}

// TestSteadyCycleZeroAllocsSequential covers the same guarantee with the
// parallel pipeline disabled (the sequential baseline the scale
// experiment compares against).
func TestSteadyCycleZeroAllocsSequential(t *testing.T) {
	os := &nopOS{}
	mw := NewMiddleware(nil)
	for i := 0; i < 8; i++ {
		d := newBenchDriver("seq"+strconv.Itoa(i), 5000+i*4, 4)
		if err := mw.Bind(Binding{
			Policy:     GroupPerQuery(NewQSPolicy()),
			Translator: NewCombinedTranslator(os, 0, 0),
			Drivers:    []Driver{d},
			Period:     time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mw.SetParallelism(Parallelism{Disabled: true})
	defer mw.Close()
	now := time.Duration(0)
	step := func() {
		if _, err := mw.Step(now); err != nil {
			t.Fatal(err)
		}
		now += time.Second
	}
	for i := 0; i < 5; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(20, step); avg != 0 {
		t.Fatalf("sequential steady-state Step allocates %.1f times per cycle, want 0", avg)
	}
}

// BenchmarkSteadyCycle reports the steady-state cycle cost and, via
// ReportAllocs, enforces visibility of the 0 allocs/op claim in bench
// output (go test -bench SteadyCycle -benchmem).
func BenchmarkSteadyCycle(b *testing.B) {
	mw, _ := benchMiddleware(b, 64, 4)
	defer mw.Close()
	now := time.Duration(0)
	for i := 0; i < 5; i++ {
		if _, err := mw.Step(now); err != nil {
			b.Fatal(err)
		}
		now += time.Second
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mw.Step(now); err != nil {
			b.Fatal(err)
		}
		now += time.Second
	}
}

// countingNamePolicy counts Name() calls: the regression guard for the
// per-cycle label/name dedup fix (names are cached at Bind; stats
// assembly must not call user code every cycle).
type countingNamePolicy struct {
	QSPolicy
	names atomic.Int64
}

func (p *countingNamePolicy) Name() string {
	p.names.Add(1)
	return "counting"
}

// TestBindingNamesCachedAtBind locks in the satellite fix: Policy.Name()
// and Translator.Name() are called a bounded number of times at Bind and
// never again during steady cycles, and binding labels are deduped once
// (not re-scanned per cycle).
func TestBindingNamesCachedAtBind(t *testing.T) {
	os := &nopOS{}
	mw := NewMiddleware(nil)
	d := newBenchDriver("spe", 100, 4)
	pol := &countingNamePolicy{}
	if err := mw.Bind(Binding{
		Policy: pol, Translator: NewNiceTranslator(os),
		Drivers: []Driver{d}, Period: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	// A second binding of the same pair exercises the label dedup path.
	if err := mw.Bind(Binding{
		Policy: pol, Translator: NewNiceTranslator(os),
		Drivers: []Driver{d}, Period: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	atBind := pol.names.Load()
	if atBind == 0 {
		t.Fatal("expected Name() calls during Bind")
	}
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		if _, err := mw.Step(now); err != nil {
			t.Fatal(err)
		}
		now += time.Second
	}
	if got := pol.names.Load(); got != atBind {
		t.Fatalf("Name() called %d times during 10 steps (total %d, at bind %d); names must be cached at Bind",
			got-atBind, got, atBind)
	}
	// The two bindings' stats labels stay distinct (dedup happened once).
	stats, err := mw.Step(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Bindings) != 2 {
		t.Fatalf("got %d binding stats, want 2", len(stats.Bindings))
	}
	if stats.Bindings[0].Label == stats.Bindings[1].Label {
		t.Fatalf("labels not deduped: both %q", stats.Bindings[0].Label)
	}
}
