package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("single sample variance should be 0")
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{5}) != 0 {
		t.Error("CI95 of one sample should be 0")
	}
	// Two samples {4, 6}: sd = sqrt(2), t(1) = 12.706.
	got := CI95([]float64{4, 6})
	want := 12.706 * math.Sqrt2 / math.Sqrt2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
	// Large n approaches the normal quantile.
	xs := make([]float64, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	ci := CI95(xs)
	if ci < 0.04 || ci > 0.09 {
		t.Errorf("CI95 of 1000 N(0,1) samples = %v, want ~0.062", ci)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Error("empty quantile should be ErrEmpty")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	got, err := Quantile([]float64{0, 10}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("median of {0,10} = %v, want 5", got)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.P50 != 2 {
		t.Errorf("summary = %+v", s)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty summarize should be ErrEmpty")
	}
}

func TestLetterValues(t *testing.T) {
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = float64(i)
	}
	lvs, err := LetterValues(xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lvs[0].Label != "M" {
		t.Fatalf("first LV must be the median, got %q", lvs[0].Label)
	}
	if math.Abs(lvs[0].Lower-511.5) > 1e-9 {
		t.Errorf("median = %v, want 511.5", lvs[0].Lower)
	}
	// 1024 samples, minTail 8: depths 1/4 .. 1/128 => F..A = 6 more LVs.
	if len(lvs) != 7 {
		t.Errorf("letter value count = %d, want 7", len(lvs))
	}
	for i := 1; i < len(lvs); i++ {
		if lvs[i].Lower > lvs[i].Upper {
			t.Errorf("LV %s inverted", lvs[i].Label)
		}
		if lvs[i].Lower > lvs[i-1].Lower+1e-9 || lvs[i].Upper < lvs[i-1].Upper-1e-9 {
			t.Errorf("LV %s not nested in %s", lvs[i].Label, lvs[i-1].Label)
		}
	}
	if _, err := LetterValues(nil, 4); !errors.Is(err, ErrEmpty) {
		t.Error("empty letter values should be ErrEmpty")
	}
}

func TestHistogram(t *testing.T) {
	bins, err := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 5 {
		t.Fatalf("bins = %d, want 5", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 10 {
		t.Errorf("histogram total = %d, want 10", total)
	}
	one, err := Histogram([]float64{7, 7, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Count != 3 {
		t.Errorf("degenerate histogram = %v", one)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	// Property: quantile is monotone in q and bounded by min/max.
	err := quick.Check(func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, err := Quantile(raw, q1)
		if err != nil {
			return false
		}
		b, err := Quantile(raw, q2)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		return a <= b && a >= sorted[0] && b <= sorted[len(sorted)-1]
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickMeanWithinBounds(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		min, max := raw[0], raw[0]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		m := Mean(raw)
		return m >= min-1e-6 && m <= max+1e-6
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
