package core

import (
	"errors"
	"testing"
	"time"
)

// fakeOS records the control operations translators perform.
type fakeOS struct {
	nices   map[int]int
	cgroups map[string]int   // name -> shares
	placed  map[int]string   // tid -> cgroup
	failOn  map[string]error // op name -> error to inject
}

var _ OSInterface = (*fakeOS)(nil)

func newFakeOS() *fakeOS {
	return &fakeOS{
		nices:   make(map[int]int),
		cgroups: make(map[string]int),
		placed:  make(map[int]string),
	}
}

func (f *fakeOS) SetNice(tid, nice int) error {
	if err := f.failOn["SetNice"]; err != nil {
		return err
	}
	f.nices[tid] = nice
	return nil
}
func (f *fakeOS) EnsureCgroup(name string) error {
	if _, ok := f.cgroups[name]; !ok {
		f.cgroups[name] = 1024
	}
	return nil
}
func (f *fakeOS) SetShares(name string, shares int) error {
	if _, ok := f.cgroups[name]; !ok {
		return errors.New("no such cgroup")
	}
	f.cgroups[name] = shares
	return nil
}
func (f *fakeOS) MoveThread(tid int, name string) error {
	if _, ok := f.cgroups[name]; !ok {
		return errors.New("no such cgroup")
	}
	f.placed[tid] = name
	return nil
}

func threadedEntities() map[string]Entity {
	return map[string]Entity{
		"hot":    {Name: "hot", Query: "q1", Thread: 11},
		"warm":   {Name: "warm", Query: "q1", Thread: 12},
		"cold":   {Name: "cold", Query: "q2", Thread: 13},
		"pooled": {Name: "pooled", Query: "q2", Thread: 0}, // no thread
	}
}

func TestNiceTranslator(t *testing.T) {
	os := newFakeOS()
	tr := NewNiceTranslator(os)
	sched := Schedule{
		Scale:  ScaleLinear,
		Single: map[string]float64{"hot": 100, "warm": 50, "cold": 0, "pooled": 70},
	}
	if err := tr.Apply(sched, threadedEntities()); err != nil {
		t.Fatal(err)
	}
	if os.nices[11] != -20 {
		t.Errorf("hot thread nice = %d, want -20", os.nices[11])
	}
	if os.nices[13] != 19 {
		t.Errorf("cold thread nice = %d, want 19", os.nices[13])
	}
	if _, touched := os.nices[0]; touched {
		t.Error("threadless entity must be skipped")
	}
}

func TestNiceTranslatorRequiresSingle(t *testing.T) {
	tr := NewNiceTranslator(newFakeOS())
	if err := tr.Apply(Schedule{Scale: ScaleLinear}, nil); err == nil {
		t.Error("empty single schedule should fail")
	}
}

func TestSharesTranslatorExplicitGroups(t *testing.T) {
	os := newFakeOS()
	tr := NewSharesTranslator(os, 8, 8192)
	sched := Schedule{
		Scale: ScaleLinear,
		Groups: map[string]Group{
			"g-hi": {Priority: 10, Ops: []string{"hot", "warm"}},
			"g-lo": {Priority: 0, Ops: []string{"cold", "pooled"}},
		},
	}
	if err := tr.Apply(sched, threadedEntities()); err != nil {
		t.Fatal(err)
	}
	if os.cgroups["g-hi"] != 8192 || os.cgroups["g-lo"] != 8 {
		t.Errorf("shares = %v", os.cgroups)
	}
	if os.placed[11] != "g-hi" || os.placed[12] != "g-hi" || os.placed[13] != "g-lo" {
		t.Errorf("placements = %v", os.placed)
	}
	if _, moved := os.placed[0]; moved {
		t.Error("threadless entity must not be moved")
	}
}

func TestSharesTranslatorPerOpFallback(t *testing.T) {
	// With only a single-priority schedule, every op gets its own cgroup —
	// how the paper schedules 100 SYN operators beyond nice's 40 values.
	os := newFakeOS()
	tr := NewSharesTranslator(os, 0, 0)
	sched := Schedule{
		Scale:  ScaleLinear,
		Single: map[string]float64{"hot": 9, "warm": 5, "cold": 1},
	}
	if err := tr.Apply(sched, threadedEntities()); err != nil {
		t.Fatal(err)
	}
	if len(os.cgroups) != 3 {
		t.Fatalf("want 3 per-op cgroups, got %v", os.cgroups)
	}
	if !(os.cgroups["hot"] > os.cgroups["warm"] && os.cgroups["warm"] > os.cgroups["cold"]) {
		t.Errorf("shares should order by priority: %v", os.cgroups)
	}
	if os.placed[11] != "hot" {
		t.Errorf("hot thread should be in its own group, placements=%v", os.placed)
	}
}

func TestCombinedTranslator(t *testing.T) {
	os := newFakeOS()
	tr := NewCombinedTranslator(os, 8, 8192)
	sched := Schedule{
		Scale:  ScaleLinear,
		Single: map[string]float64{"hot": 10, "warm": 0, "cold": 5},
		Groups: map[string]Group{
			"query-q1": {Priority: 1, Ops: []string{"hot", "warm"}},
			"query-q2": {Priority: 1, Ops: []string{"cold"}},
		},
	}
	if err := tr.Apply(sched, threadedEntities()); err != nil {
		t.Fatal(err)
	}
	// Equal-priority groups get equal shares.
	if os.cgroups["query-q1"] != os.cgroups["query-q2"] {
		t.Errorf("equal groups should get equal shares: %v", os.cgroups)
	}
	// Nice ordering inside.
	if !(os.nices[11] < os.nices[13] && os.nices[13] < os.nices[12]) {
		t.Errorf("nice ordering wrong: %v", os.nices)
	}
	if err := tr.Apply(Schedule{Scale: ScaleLinear, Single: map[string]float64{"a": 1}}, nil); err == nil {
		t.Error("combined translator should require groups")
	}
}

func TestMiddlewareLoop(t *testing.T) {
	// Two policies with different periods over one driver; check firing
	// cadence and translation effects (Algorithm 1).
	d := &fakeDriver{
		name: "liebre",
		provided: map[string]EntityValues{
			MetricQueueSize:  {"a": 5, "b": 1},
			MetricHeadWaitMs: {"a": 1, "b": 70},
		},
		entities: []Entity{
			{Name: "a", Driver: "liebre", Query: "q1", Thread: 1},
			{Name: "b", Driver: "liebre", Query: "q1", Thread: 2},
		},
	}
	os := newFakeOS()
	mw := NewMiddleware(nil)
	if err := mw.Bind(Binding{
		Policy:     NewQSPolicy(),
		Translator: NewNiceTranslator(os),
		Drivers:    []Driver{d},
		Period:     time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := mw.Bind(Binding{
		Policy:     NewFCFSPolicy(),
		Translator: NewSharesTranslator(os, 8, 8192),
		Drivers:    []Driver{d},
		Period:     2 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}

	// t=0: both due.
	stats, err := mw.Step(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PoliciesRun != 2 {
		t.Errorf("t=0: ran %d policies, want 2", stats.PoliciesRun)
	}
	if stats.Next != time.Second {
		t.Errorf("next wake = %v, want 1s", stats.Next)
	}
	// QS by nice: a (bigger queue) stronger.
	if !(os.nices[1] < os.nices[2]) {
		t.Errorf("QS nice ordering wrong: %v", os.nices)
	}
	// FCFS by shares: b (older head) more shares.
	if !(os.cgroups["b"] > os.cgroups["a"]) {
		t.Errorf("FCFS shares ordering wrong: %v", os.cgroups)
	}

	// t=1s: only QS due.
	stats, err = mw.Step(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PoliciesRun != 1 {
		t.Errorf("t=1s: ran %d policies, want 1", stats.PoliciesRun)
	}
	// t=1.5s: nothing due.
	stats, err = mw.Step(1500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PoliciesRun != 0 {
		t.Errorf("t=1.5s: ran %d policies, want 0", stats.PoliciesRun)
	}
	if mw.PolicyRuns() != 3 {
		t.Errorf("total policy runs = %d, want 3", mw.PolicyRuns())
	}
}

func TestMiddlewareQueryScope(t *testing.T) {
	d := &fakeDriver{
		name: "liebre",
		provided: map[string]EntityValues{
			MetricQueueSize: {"q1.a": 5, "q2.b": 50},
		},
		entities: []Entity{
			{Name: "q1.a", Driver: "liebre", Query: "q1", Thread: 1},
			{Name: "q2.b", Driver: "liebre", Query: "q2", Thread: 2},
		},
	}
	os := newFakeOS()
	mw := NewMiddleware(nil)
	if err := mw.Bind(Binding{
		Policy:     NewQSPolicy(),
		Translator: NewNiceTranslator(os),
		Drivers:    []Driver{d},
		Queries:    []string{"q1"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Step(0); err != nil {
		t.Fatal(err)
	}
	if _, touched := os.nices[2]; touched {
		t.Error("out-of-scope query's thread must not be touched")
	}
	if _, touched := os.nices[1]; !touched {
		t.Error("in-scope thread should be reniced")
	}
}

func TestMiddlewareBindValidation(t *testing.T) {
	mw := NewMiddleware(nil)
	d := &fakeDriver{name: "d"}
	os := newFakeOS()
	cases := []Binding{
		{Translator: NewNiceTranslator(os), Drivers: []Driver{d}},
		{Policy: NewQSPolicy(), Drivers: []Driver{d}},
		{Policy: NewQSPolicy(), Translator: NewNiceTranslator(os)},
	}
	for i, b := range cases {
		if err := mw.Bind(b); err == nil {
			t.Errorf("case %d: invalid binding accepted", i)
		}
	}
}

// removerFakeOS extends fakeOS with cgroup removal.
type removerFakeOS struct {
	*fakeOS
	removed []string
}

func (f *removerFakeOS) RemoveCgroup(name string) error {
	delete(f.cgroups, name)
	f.removed = append(f.removed, name)
	return nil
}

func TestSharesTranslatorGarbageCollectsStaleGroups(t *testing.T) {
	os := &removerFakeOS{fakeOS: newFakeOS()}
	tr := NewSharesTranslator(os, 0, 0)
	ents := threadedEntities()
	s1 := Schedule{Scale: ScaleLinear, Single: map[string]float64{"hot": 2, "warm": 1}}
	if err := tr.Apply(s1, ents); err != nil {
		t.Fatal(err)
	}
	if len(os.cgroups) != 2 {
		t.Fatalf("cgroups = %v", os.cgroups)
	}
	// "warm" disappears (query torn down); its group must be removed.
	s2 := Schedule{Scale: ScaleLinear, Single: map[string]float64{"hot": 2, "cold": 1}}
	if err := tr.Apply(s2, ents); err != nil {
		t.Fatal(err)
	}
	if len(os.removed) != 1 || os.removed[0] != "warm" {
		t.Errorf("removed = %v, want [warm]", os.removed)
	}
	if _, ok := os.cgroups["cold"]; !ok {
		t.Error("new group missing")
	}
}
