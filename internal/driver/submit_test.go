package driver

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lachesis/internal/core"
	"lachesis/internal/telemetry"
)

// serialOS fails the test if two control calls ever overlap: the
// submission queue's core guarantee is that the backend sees exactly one
// writer. It also records the op order so batch contiguity is checkable.
type serialOS struct {
	t      *testing.T
	inside atomic.Int32
	mu     sync.Mutex
	order  []core.ControlOp
	failOn func(op core.ControlOp) error
}

func (s *serialOS) enter(op core.ControlOp) error {
	if s.inside.Add(1) != 1 {
		s.t.Error("concurrent entry into backend: single-writer guarantee violated")
	}
	defer s.inside.Add(-1)
	s.mu.Lock()
	s.order = append(s.order, op)
	fail := s.failOn
	s.mu.Unlock()
	if fail != nil {
		return fail(op)
	}
	return nil
}

func (s *serialOS) SetNice(tid, nice int) error {
	return s.enter(core.ControlOp{Kind: core.OpSetNice, Thread: tid, Value: nice})
}
func (s *serialOS) EnsureCgroup(name string) error {
	return s.enter(core.ControlOp{Kind: core.OpEnsureCgroup, Cgroup: name})
}
func (s *serialOS) SetShares(name string, shares int) error {
	return s.enter(core.ControlOp{Kind: core.OpSetShares, Cgroup: name, Value: shares})
}
func (s *serialOS) MoveThread(tid int, name string) error {
	return s.enter(core.ControlOp{Kind: core.OpMoveThread, Thread: tid, Cgroup: name})
}

// removerOS adds the optional capabilities.
type removerOS struct {
	serialOS
	removed  atomic.Int64
	restored atomic.Int64
}

func (s *removerOS) RemoveCgroup(name string) error {
	s.removed.Add(1)
	return s.enter(core.ControlOp{Kind: core.OpRemoveCgroup, Cgroup: name})
}
func (s *removerOS) RestoreThread(tid int) error {
	s.restored.Add(1)
	return s.enter(core.ControlOp{Kind: core.OpRestoreThread, Thread: tid})
}

// TestSubmitQueueSingleWriterUnderContention hammers one queue from many
// goroutines mixing whole batches (binding applies) with single ops (a
// reconciler repairing drift) — run under -race in CI. Each batch must be
// applied contiguously and no two ops may enter the backend concurrently.
func TestSubmitQueueSingleWriterUnderContention(t *testing.T) {
	backend := &serialOS{t: t}
	q := NewSubmitQueue(backend, 4)
	defer q.Close()

	const (
		appliers = 8
		batches  = 50
		perBatch = 6
	)
	var wg sync.WaitGroup
	for a := 0; a < appliers; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			ops := make([]core.ControlOp, perBatch)
			errs := make([]error, perBatch)
			for b := 0; b < batches; b++ {
				for i := range ops {
					// Thread encodes (applier, batch) so contiguity is
					// checkable from the backend's op order.
					ops[i] = core.ControlOp{Kind: core.OpSetNice, Thread: a*1000 + b, Value: i}
				}
				q.Submit(ops, errs)
				for i, err := range errs {
					if err != nil {
						t.Errorf("op %d: %v", i, err)
					}
				}
			}
		}(a)
	}
	// A concurrent "repair" path issuing single ops through QueuedOS-style
	// one-op batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var errs [1]error
		var ops [1]core.ControlOp
		for i := 0; i < 200; i++ {
			ops[0] = core.ControlOp{Kind: core.OpSetShares, Cgroup: "repair", Value: i}
			q.Submit(ops[:], errs[:])
		}
	}()
	wg.Wait()

	// Contiguity: within the backend's order, the perBatch ops of one
	// (applier, batch) submission must be adjacent.
	backend.mu.Lock()
	defer backend.mu.Unlock()
	for i := 0; i < len(backend.order); {
		op := backend.order[i]
		if op.Kind != core.OpSetNice {
			i++
			continue
		}
		for j := 0; j < perBatch; j++ {
			got := backend.order[i+j]
			if got.Kind != core.OpSetNice || got.Thread != op.Thread || got.Value != j {
				t.Fatalf("batch for thread %d interleaved at backend index %d: got %+v", op.Thread, i+j, got)
			}
		}
		i += perBatch
	}
	if got := q.Batches(); got != appliers*batches+200 {
		t.Fatalf("batches drained = %d, want %d", got, appliers*batches+200)
	}
}

// TestSubmitQueuePerOpErrors checks error routing: a failing op lands at
// its own index and leaves its neighbours applied.
func TestSubmitQueuePerOpErrors(t *testing.T) {
	boom := errors.New("boom")
	backend := &serialOS{t: t, failOn: func(op core.ControlOp) error {
		if op.Kind == core.OpSetShares {
			return boom
		}
		return nil
	}}
	q := NewSubmitQueue(backend, 0)
	defer q.Close()
	ops := []core.ControlOp{
		{Kind: core.OpEnsureCgroup, Cgroup: "g"},
		{Kind: core.OpSetShares, Cgroup: "g", Value: 100},
		{Kind: core.OpSetNice, Thread: 7, Value: -5},
	}
	errs := make([]error, len(ops))
	q.Submit(ops, errs)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy ops got errors: %v / %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], boom) {
		t.Fatalf("failing op error = %v, want boom", errs[1])
	}
	if len(backend.order) != 3 {
		t.Fatalf("backend saw %d ops, want 3 (failure must not stop the batch)", len(backend.order))
	}
}

// TestQueuedOSCapabilities checks the optional-capability contract: with
// a capable backend the ops forward; without, they are benign no-ops.
func TestQueuedOSCapabilities(t *testing.T) {
	capable := &removerOS{serialOS: serialOS{t: t}}
	o := NewQueuedOS(capable, 0)
	if err := o.RemoveCgroup("g"); err != nil {
		t.Fatal(err)
	}
	if err := o.RestoreThread(5); err != nil {
		t.Fatal(err)
	}
	o.Close()
	if capable.removed.Load() != 1 || capable.restored.Load() != 1 {
		t.Fatalf("capability ops not forwarded: removed=%d restored=%d",
			capable.removed.Load(), capable.restored.Load())
	}

	plain := &serialOS{t: t}
	o2 := NewQueuedOS(plain, 0)
	defer o2.Close()
	if err := o2.RemoveCgroup("g"); err != nil {
		t.Fatalf("remove on incapable backend: %v (want nil no-op)", err)
	}
	if err := o2.RestoreThread(5); err != nil {
		t.Fatalf("restore on incapable backend: %v (want nil no-op)", err)
	}
}

// TestSubmitQueueClosedInline checks shutdown semantics: stragglers after
// Close still apply, inline, instead of being dropped or deadlocking.
func TestSubmitQueueClosedInline(t *testing.T) {
	backend := &serialOS{t: t}
	q := NewSubmitQueue(backend, 0)
	q.Close()
	q.Close() // idempotent
	ops := []core.ControlOp{{Kind: core.OpSetNice, Thread: 1, Value: 3}}
	errs := make([]error, 1)
	q.Submit(ops, errs)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if len(backend.order) != 1 {
		t.Fatalf("closed-queue submit not applied inline: %d ops", len(backend.order))
	}
	if q.inline.Load() != 1 {
		t.Fatalf("inline counter = %d, want 1", q.inline.Load())
	}
}

// TestCoalescerBatchesThroughQueue wires the real Coalescer over a
// QueuedOS and checks the batched flush path: one apply burst becomes one
// submission, suppression still works, and the mirror stays exact — the
// end-to-end shape a binding uses in production. Also exercised
// concurrently with reconciler-style invalidations for the -race run.
func TestCoalescerBatchesThroughQueue(t *testing.T) {
	backend := &removerOS{serialOS: serialOS{t: t}}
	o := NewQueuedOS(backend, 0)
	defer o.Close()
	c := core.NewCoalescer(o, nil)

	apply := func() {
		c.Begin()
		if err := c.EnsureCgroup("q1"); err != nil {
			t.Fatal(err)
		}
		if err := c.SetShares("q1", 512); err != nil {
			t.Fatal(err)
		}
		if err := c.MoveThread(11, "q1"); err != nil {
			t.Fatal(err)
		}
		if err := c.SetNice(11, -3); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	apply()
	if got := o.Queue().Batches(); got != 1 {
		t.Fatalf("first apply made %d submissions, want 1 (batched flush)", got)
	}
	if got := o.Queue().Ops(); got != 4 {
		t.Fatalf("first apply submitted %d ops, want 4", got)
	}
	// Second identical apply: fully suppressed, no submission at all.
	apply()
	if got := o.Queue().Batches(); got != 1 {
		t.Fatalf("identical re-apply reached the queue (%d batches); suppression broken", got)
	}

	// Concurrent applies + invalidation (reconciler repair) under -race:
	// each invalidation forces the next write through, so the queue keeps
	// seeing work while applies race the repairs.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.InvalidateThread(11)
			c.InvalidateCgroup("q1")
		}
	}()
	for i := 0; i < 100; i++ {
		apply()
	}
	close(stop)
	wg.Wait()
}

// TestSubmitQueueTelemetry checks counters reach the registry.
func TestSubmitQueueTelemetry(t *testing.T) {
	backend := &serialOS{t: t}
	q := NewSubmitQueue(backend, 0)
	defer q.Close()
	reg := telemetry.NewRegistry()
	q.SetTelemetry(reg, "test")
	ops := []core.ControlOp{{Kind: core.OpSetNice, Thread: 1, Value: 1}, {Kind: core.OpSetNice, Thread: 2, Value: 2}}
	errs := make([]error, 2)
	q.Submit(ops, errs)
	var buf sbuf
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lachesis_submit_batches_total{backend="test"} 1`,
		`lachesis_submit_ops_total{backend="test"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("telemetry output missing %q:\n%s", want, out)
		}
	}
}

type sbuf struct{ b []byte }

func (s *sbuf) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *sbuf) String() string              { return string(s.b) }
