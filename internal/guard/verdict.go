package guard

import (
	"fmt"
	"math"
)

// The SLO verdict is the comparison at the heart of every canary: how
// much did the group under test degrade relative to its own baseline,
// measured against how much a reference group degraded over the same
// window? It was born inside the per-node canary controller and is
// factored out here so the fleet coordinator can reuse the exact same
// judgement per node — a node cohort is judged by the same rules as a
// binding cohort.

// SLOVerdict is the outcome of one baseline-relative SLO comparison.
type SLOVerdict struct {
	// Rollback is true when the group under test degraded past the
	// configured factors relative to the reference group.
	Rollback bool
	// Reason is a human-readable account of the comparison.
	Reason string
	// LatencyFactor / ThroughputFactor are the group-under-test's
	// degradation relative to its own baseline; RefLatencyFactor /
	// RefThroughputFactor are the reference group's.
	LatencyFactor       float64
	RefLatencyFactor    float64
	ThroughputFactor    float64
	RefThroughputFactor float64
	// Insufficient is true when the group under test (or its baseline)
	// had no SLO data, in which case the verdict abstains (no rollback).
	Insufficient bool
}

// JudgeSLO compares a group's SLO trajectory against a reference
// trajectory under the Config's factors. base/cur describe the group
// under test at baseline and now; baseRef/curRef describe the reference
// (control) group. A missing reference sample leaves the reference
// factors at 1, so the group is then judged against its own baseline
// alone.
func JudgeSLO(cfg Config, base, cur, baseRef, curRef SLOSample) SLOVerdict {
	cfg = cfg.withDefaults()
	v := SLOVerdict{
		LatencyFactor: 1, RefLatencyFactor: 1,
		ThroughputFactor: 1, RefThroughputFactor: 1,
	}
	if !cur.OK || !base.OK {
		v.Insufficient = true
		v.Reason = "insufficient SLO data for group under test"
		return v
	}
	v.LatencyFactor = relativeFactor(cur.LatencyP95, base.LatencyP95)
	v.ThroughputFactor = relativeFactor(cur.Throughput, base.Throughput)
	if curRef.OK && baseRef.OK {
		v.RefLatencyFactor = relativeFactor(curRef.LatencyP95, baseRef.LatencyP95)
		v.RefThroughputFactor = relativeFactor(curRef.Throughput, baseRef.Throughput)
	}
	if v.LatencyFactor > cfg.MaxLatencyFactor*v.RefLatencyFactor {
		v.Rollback = true
		v.Reason = fmt.Sprintf("latency p95 degraded %.2fx vs control %.2fx (limit %.2fx)",
			v.LatencyFactor, v.RefLatencyFactor, cfg.MaxLatencyFactor)
		return v
	}
	if v.ThroughputFactor < cfg.MinThroughputFactor*v.RefThroughputFactor {
		v.Rollback = true
		v.Reason = fmt.Sprintf("throughput fell to %.2fx vs control %.2fx (floor %.2fx)",
			v.ThroughputFactor, v.RefThroughputFactor, cfg.MinThroughputFactor)
		return v
	}
	v.Reason = fmt.Sprintf("SLO within bounds (latency %.2fx vs control %.2fx, throughput %.2fx vs %.2fx)",
		v.LatencyFactor, v.RefLatencyFactor, v.ThroughputFactor, v.RefThroughputFactor)
	return v
}

// relativeFactor returns cur/base guarded against zero baselines.
func relativeFactor(cur, base float64) float64 {
	if base <= 0 || math.IsNaN(base) {
		if cur <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return cur / base
}
