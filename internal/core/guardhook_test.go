package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lachesis/internal/telemetry"
)

// overlapOS wraps fakeOS and records the maximum number of concurrently
// executing control ops, to prove that parallel apply workers serialize
// through the DriverGate.
type overlapOS struct {
	mu     sync.Mutex
	inner  *fakeOS
	cur    int32
	max    int32
	writes int
	dwell  time.Duration
}

var _ OSInterface = (*overlapOS)(nil)

func (o *overlapOS) enter() {
	cur := atomic.AddInt32(&o.cur, 1)
	for {
		max := atomic.LoadInt32(&o.max)
		if cur <= max || atomic.CompareAndSwapInt32(&o.max, max, cur) {
			break
		}
	}
	// Dwell outside any lock: widen the window in which a second,
	// unserialized writer would be observed.
	time.Sleep(o.dwell)
}
func (o *overlapOS) exit() { atomic.AddInt32(&o.cur, -1) }

func (o *overlapOS) SetNice(tid, nice int) error {
	o.enter()
	defer o.exit()
	o.mu.Lock()
	defer o.mu.Unlock()
	o.writes++
	return o.inner.SetNice(tid, nice)
}
func (o *overlapOS) EnsureCgroup(name string) error {
	o.enter()
	defer o.exit()
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inner.EnsureCgroup(name)
}
func (o *overlapOS) SetShares(name string, shares int) error {
	o.enter()
	defer o.exit()
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inner.SetShares(name, shares)
}
func (o *overlapOS) MoveThread(tid int, name string) error {
	o.enter()
	defer o.exit()
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inner.MoveThread(tid, name)
}

// togglePolicy wraps QSPolicy and fails on demand, to drive a binding's
// breaker through open -> half-open.
type togglePolicy struct {
	QSPolicy
	fail atomic.Bool
}

func (p *togglePolicy) Schedule(view *View) (Schedule, error) {
	if p.fail.Load() {
		return Schedule{}, errors.New("induced failure")
	}
	return p.QSPolicy.Schedule(view)
}

// TestHalfOpenProbeSerializesThroughDriverGate is the regression test for
// the breaker/parallel-apply interaction: a half-open probe is an apply
// like any other and must take the binding's driver locks, so it cannot
// interleave control ops with healthy bindings sharing the driver. Run
// with -race; the overlapOS additionally asserts mutual exclusion.
func TestHalfOpenProbeSerializesThroughDriverGate(t *testing.T) {
	shared := &fakeDriver{
		name:     "spe",
		provided: map[string]EntityValues{MetricQueueSize: {"a": 5, "b": 1}},
		entities: []Entity{
			{Name: "a", Driver: "spe", Query: "q", Thread: 1},
			{Name: "b", Driver: "spe", Query: "q", Thread: 2},
		},
	}
	os := &overlapOS{inner: newFakeOS(), dwell: 2 * time.Millisecond}
	mw := NewMiddleware(nil)
	mw.SetResilience(Resilience{FailureThreshold: 1})
	mw.SetWriteGate(NewDriverGate())

	probe := &togglePolicy{QSPolicy: NewQSPolicy()}
	pols := []Policy{probe, NewQSPolicy(), NewQSPolicy(), NewQSPolicy()}
	for _, p := range pols {
		if err := mw.Bind(Binding{
			Policy: p, Translator: NewNiceTranslator(os),
			Drivers: []Driver{shared}, Period: time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// t=0: the probe binding fails once; threshold 1 opens its breaker.
	probe.fail.Store(true)
	if _, err := mw.Step(0); err == nil {
		t.Fatal("induced failure did not surface")
	}
	if st := mw.Health().Bindings[0].State; st != BindingQuarantined {
		t.Fatalf("state after failure = %v, want quarantined", st)
	}
	probe.fail.Store(false)

	// t=1s: the half-open probe runs in the same worker pool as the three
	// healthy bindings. All four share one driver, so the gate must fully
	// serialize their applies.
	if _, err := mw.Step(time.Second); err != nil {
		t.Fatalf("probe step: %v", err)
	}
	if st := mw.Health().Bindings[0].State; st != BindingHealthy {
		t.Fatalf("state after successful probe = %v, want healthy", st)
	}
	if got := atomic.LoadInt32(&os.max); got != 1 {
		t.Fatalf("max concurrent control ops = %d, want 1 (gate must serialize)", got)
	}
	os.mu.Lock()
	writes := os.writes
	os.mu.Unlock()
	if writes == 0 {
		t.Fatal("no control ops issued")
	}
}

// recordingWatchdog is a minimal StepWatchdog for core-side tests.
type recordingWatchdog struct {
	mu        sync.Mutex
	deadlines map[string]time.Duration
	overruns  []string // "scope/phase"
}

var _ StepWatchdog = (*recordingWatchdog)(nil)

func (w *recordingWatchdog) PhaseDeadline(phase string) time.Duration {
	return w.deadlines[phase]
}
func (w *recordingWatchdog) PhaseOverrun(scope, phase string, _ time.Duration) {
	w.mu.Lock()
	w.overruns = append(w.overruns, scope+"/"+phase)
	w.mu.Unlock()
}
func (w *recordingWatchdog) count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.overruns)
}

// stallPolicy blocks its first Schedule call until released.
type stallPolicy struct {
	QSPolicy
	calls   atomic.Int32
	release chan struct{}
}

func (p *stallPolicy) Schedule(view *View) (Schedule, error) {
	if p.calls.Add(1) == 1 {
		<-p.release
	}
	return p.QSPolicy.Schedule(view)
}

func TestWatchdogScheduleDeadlineCancelsCycle(t *testing.T) {
	d := upDriver("spe", 1)
	trail := NewAuditTrail(16, nil)
	wd := &recordingWatchdog{deadlines: map[string]time.Duration{PhaseSchedule: 5 * time.Millisecond}}
	pol := &stallPolicy{QSPolicy: NewQSPolicy(), release: make(chan struct{})}
	mw := NewMiddleware(nil)
	mw.SetResilience(Resilience{FailureThreshold: 100})
	mw.SetAudit(trail)
	mw.SetWatchdog(wd)
	if err := mw.Bind(Binding{
		Policy: pol, Translator: NewNiceTranslator(newFakeOS()),
		Drivers: []Driver{d}, Period: time.Second,
	}); err != nil {
		t.Fatal(err)
	}

	// t=0: the policy stalls; the watchdog cancels the schedule phase.
	_, err := mw.Step(0)
	if !errors.Is(err, ErrPhaseDeadline) {
		t.Fatalf("stalled schedule: err = %v, want ErrPhaseDeadline", err)
	}
	if wd.count() != 1 {
		t.Fatalf("overruns = %d, want 1", wd.count())
	}

	// t=1s: the abandoned goroutine is still blocked; the binding must
	// refuse to start a second concurrent run.
	_, err = mw.Step(time.Second)
	if !errors.Is(err, ErrRunInFlight) {
		t.Fatalf("while stalled: err = %v, want ErrRunInFlight", err)
	}

	// Release the stalled goroutine and wait for the in-flight flag to
	// clear, then the binding runs normally again (virtual time advances
	// so the binding stays due each retry).
	close(pol.release)
	deadline := time.Now().Add(5 * time.Second)
	for now := 2 * time.Second; ; now += time.Second {
		_, err = mw.Step(now)
		if err == nil && pol.calls.Load() >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("binding never drained: calls=%d err=%v", pol.calls.Load(), err)
		}
		time.Sleep(time.Millisecond)
	}

	found := false
	for _, ev := range trail.Last(16) {
		if ev.Kind == AuditKindWatchdog {
			found = true
		}
	}
	if !found {
		t.Error("no watchdog audit event recorded")
	}
}

// bufferGuard is a minimal ApplyGuard for core tests: it buffers SetNice
// ops while a batch is open, forwards them on FinishApply, and drops the
// batch on AbandonApply once the stale writer drains.
type bufferGuard struct {
	mu        sync.Mutex
	inner     OSInterface
	open      bool
	batch     []func() error
	abandoned atomic.Int32
}

var _ OSInterface = (*bufferGuard)(nil)
var _ ApplyGuard = (*bufferGuard)(nil)

func (g *bufferGuard) BeginApply(_ time.Duration, _ string, _ *View) {
	g.mu.Lock()
	g.open = true
	g.batch = nil
	g.mu.Unlock()
}
func (g *bufferGuard) FinishApply() error {
	g.mu.Lock()
	ops := g.batch
	g.batch = nil
	g.open = false
	g.mu.Unlock()
	for _, op := range ops {
		if err := op(); err != nil {
			return err
		}
	}
	return nil
}
func (g *bufferGuard) AbandonApply(done <-chan struct{}) {
	g.abandoned.Add(1)
	go func() {
		<-done
		g.mu.Lock()
		g.batch = nil
		g.open = false
		g.mu.Unlock()
	}()
}
func (g *bufferGuard) SetNice(tid, nice int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.open {
		g.batch = append(g.batch, func() error { return g.inner.SetNice(tid, nice) })
		return nil
	}
	return g.inner.SetNice(tid, nice)
}
func (g *bufferGuard) EnsureCgroup(name string) error     { return g.inner.EnsureCgroup(name) }
func (g *bufferGuard) SetShares(name string, s int) error { return g.inner.SetShares(name, s) }
func (g *bufferGuard) MoveThread(tid int, n string) error { return g.inner.MoveThread(tid, n) }

// stallTranslator writes one op, then blocks until released, then writes
// another — modeling a translator stuck mid-apply.
type stallTranslator struct {
	os      OSInterface
	calls   atomic.Int32
	release chan struct{}
}

func (t *stallTranslator) Name() string { return "stall" }
func (t *stallTranslator) Apply(sched Schedule, ents map[string]Entity) error {
	if t.calls.Add(1) == 1 {
		if err := t.os.SetNice(1, -10); err != nil {
			return err
		}
		<-t.release
		return t.os.SetNice(2, -10) // stale write into the dead batch
	}
	for _, e := range ents {
		if e.Thread > 0 {
			if err := t.os.SetNice(e.Thread, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestWatchdogApplyDeadlineKeepsKernelUntouched(t *testing.T) {
	d := upDriver("spe", 1)
	kernel := newFakeOS()
	g := &bufferGuard{inner: kernel}
	wd := &recordingWatchdog{deadlines: map[string]time.Duration{PhaseApply: 5 * time.Millisecond}}
	tr := &stallTranslator{os: g, release: make(chan struct{})}
	mw := NewMiddleware(nil)
	mw.SetResilience(Resilience{FailureThreshold: 100})
	mw.SetWatchdog(wd)
	if err := mw.Bind(Binding{
		Policy: NewQSPolicy(), Translator: tr,
		Drivers: []Driver{d}, Period: time.Second, Guard: g,
	}); err != nil {
		t.Fatal(err)
	}

	// t=0: the translator stalls mid-apply; the watchdog cancels. The
	// guard was buffering, so nothing may have reached the kernel.
	_, err := mw.Step(0)
	if !errors.Is(err, ErrPhaseDeadline) {
		t.Fatalf("stalled apply: err = %v, want ErrPhaseDeadline", err)
	}
	if g.abandoned.Load() != 1 {
		t.Fatalf("AbandonApply calls = %d, want 1", g.abandoned.Load())
	}
	if len(kernel.nices) != 0 {
		t.Fatalf("cancelled apply leaked ops to the kernel: %v", kernel.nices)
	}

	// Release the stale writer: its late op lands in the dead batch and
	// is dropped, never reaching the kernel.
	close(tr.release)
	deadline := time.Now().Add(5 * time.Second)
	for now := 2 * time.Second; ; now += time.Second {
		_, err = mw.Step(now)
		if err == nil && tr.calls.Load() >= 2 {
			break
		}
		if err != nil && !errors.Is(err, ErrRunInFlight) {
			t.Fatalf("unexpected error while draining: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("binding never drained: calls=%d err=%v", tr.calls.Load(), err)
		}
		time.Sleep(time.Millisecond)
	}
	g.mu.Lock()
	nices := make(map[int]int, len(kernel.nices))
	for k, v := range kernel.nices {
		nices[k] = v
	}
	g.mu.Unlock()
	if nices[2] == -10 {
		t.Fatal("stale write from the cancelled apply reached the kernel")
	}
	if got, ok := nices[1]; !ok || got != 0 {
		t.Fatalf("recovered cycle did not apply: nices = %v", nices)
	}
}

func TestNormalizeToNiceObservedReportsGarbage(t *testing.T) {
	var clamps []string
	obs := func(entity string, raw float64, clamped int) {
		clamps = append(clamps, entity)
		if clamped < -20 || clamped > 19 {
			t.Errorf("clamped value %d for %s out of nice range", clamped, entity)
		}
	}
	out := NormalizeToNiceObserved(map[string]float64{
		"ok": 5, "mid": 1, "bad": math.NaN(),
	}, ScaleLinear, obs)
	if len(out) != 3 {
		t.Fatalf("outputs = %v", out)
	}
	if len(clamps) != 1 || clamps[0] != "bad" {
		t.Fatalf("clamp reports = %v, want [bad]", clamps)
	}

	// Well-formed inputs never fire the observer.
	clamps = nil
	NormalizeToNiceObserved(map[string]float64{"a": 100, "b": 1}, ScaleLog, obs)
	if len(clamps) != 0 {
		t.Fatalf("in-range normalization reported clamps: %v", clamps)
	}
}

func TestClampRecorderCountsAndAudits(t *testing.T) {
	reg := telemetry.NewRegistry()
	trail := NewAuditTrail(8, nil)
	tr := NewNiceTranslator(newFakeOS())
	tr.ObserveClamps(ClampRecorder(reg, trail, "b0"))
	ents := map[string]Entity{"a": {Name: "a", Thread: 1}}
	err := tr.Apply(Schedule{Scale: ScaleLinear, Single: map[string]float64{"a": math.NaN()}}, ents)
	if err != nil {
		t.Fatal(err)
	}
	ctr := reg.Counter(MetricPolicyClampedTotal, telemetry.L("binding", "b0"))
	if ctr.Value() != 1 {
		t.Fatalf("clamp counter = %d, want 1", ctr.Value())
	}
	evs := trail.Last(8)
	if len(evs) != 1 || evs[0].Kind != AuditKindClamp || evs[0].Entity != "a" {
		t.Fatalf("audit events = %+v", evs)
	}
	if evs[0].NewNice == nil {
		t.Fatal("clamp audit event missing NewNice")
	}
}
