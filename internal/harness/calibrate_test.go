package harness

import (
	"fmt"
	"os"
	"testing"
	"time"

	"lachesis/internal/simos"
	"lachesis/internal/spe"
	"lachesis/internal/workloads"
)

// TestCalibrate sweeps each workload coarsely to locate saturation points.
// It only runs when LACHESIS_CALIBRATE=1; it is a tool, not a regression
// test.
func TestCalibrate(t *testing.T) {
	if os.Getenv("LACHESIS_CALIBRATE") != "1" {
		t.Skip("set LACHESIS_CALIBRATE=1 to run")
	}
	quick := Setup{
		Machine: simos.OdroidXU4(),
		Warmup:  10 * time.Second,
		Measure: 30 * time.Second,
		Seed:    1,
	}
	cases := []struct {
		name   string
		flavor spe.Flavor
		build  func() *spe.LogicalQuery
		source func(rate float64, seed int64) spe.Source
		rates  []float64
	}{
		{"etl-storm", spe.FlavorStorm, workloads.ETL, workloads.IoTSource,
			[]float64{1000, 1200, 1400, 1500, 1600, 1700}},
		{"stats-storm", spe.FlavorStorm, workloads.STATS, workloads.IoTSource,
			[]float64{200, 280, 320, 340, 360, 400}},
		{"lr-storm", spe.FlavorStorm, func() *spe.LogicalQuery { return workloads.LinearRoad(1) }, workloads.LRSource,
			[]float64{3000, 4500, 5500, 6000, 6500, 7000}},
		{"vs-storm", spe.FlavorStorm, workloads.VoipStream, workloads.VSSource,
			[]float64{1500, 2000, 2500, 3000, 3300, 3600}},
		{"lr-flink", spe.FlavorFlink, func() *spe.LogicalQuery { return workloads.LinearRoad(1) }, workloads.LRSource,
			[]float64{3000, 4500, 5500, 6000, 6500, 7000}},
		{"vs-flink", spe.FlavorFlink, workloads.VoipStream, workloads.VSSource,
			[]float64{1500, 2000, 2500, 3000, 3300, 3600}},
	}
	for _, c := range cases {
		for _, sched := range []Scheduler{SchedOS, SchedLachesisQS} {
			s := quick
			s.Name = string(sched)
			s.Engines = []EngineSpec{{Flavor: c.flavor}}
			s.Scheduler = sched
			s.Queries = []QuerySpec{{Build: c.build, Source: c.source}}
			for _, rate := range c.rates {
				r, err := Run(s, rate, 0)
				if err != nil {
					t.Fatalf("%s %s: %v", c.name, sched, err)
				}
				fmt.Printf("%-12s %-14s rate=%6.0f tput=%8.1f proc=%10.1fms e2e=%10.1fms util=%.2f\n",
					c.name, sched, rate, r.Throughput,
					r.MeanProc.Seconds()*1e3, r.MeanE2E.Seconds()*1e3, r.CPUUtil)
			}
		}
	}
}

// TestCalibrateSyn locates the SYN multi-query saturation (Fig. 14 grid).
func TestCalibrateSyn(t *testing.T) {
	if os.Getenv("LACHESIS_CALIBRATE") != "1" {
		t.Skip("set LACHESIS_CALIBRATE=1 to run")
	}
	sc := Scale{Warmup: 10 * time.Second, Measure: 30 * time.Second, Reps: 1}
	setups := synSetups(sc, false, []Scheduler{SchedOS, SchedLachesisQS, SchedHarenQS}, 0)
	for _, s := range setups {
		for _, rate := range []float64{150, 250, 350, 450, 550} {
			r, err := Run(s, rate, 0)
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			fmt.Printf("syn %-14s rate=%5.0f tput=%8.1f proc=%10.1fms e2e=%10.1fms util=%.2f\n",
				s.Name, rate, r.Throughput, r.MeanProc.Seconds()*1e3, r.MeanE2E.Seconds()*1e3, r.CPUUtil)
		}
	}
}

// TestCalibrateFig18 locates per-query max rates for the Xeon mix.
func TestCalibrateFig18(t *testing.T) {
	if os.Getenv("LACHESIS_CALIBRATE") != "1" {
		t.Skip("set LACHESIS_CALIBRATE=1 to run")
	}
	sc := Scale{Warmup: 10 * time.Second, Measure: 30 * time.Second, Reps: 1}
	_ = sc
	var buf = os.Stdout
	if err := fig18(buf, sc); err != nil {
		t.Fatal(err)
	}
}
