package simos

import "time"

// ThreadInfo is a snapshot of a thread's scheduling state.
type ThreadInfo struct {
	ID         ThreadID
	Name       string
	Nice       int
	Cgroup     CgroupID
	CPUTime    time.Duration
	Vruntime   time.Duration
	Wakeups    int64
	Dispatches int64
	Alive      bool
}

// ThreadInfo returns a snapshot for thread id.
func (k *Kernel) ThreadInfo(id ThreadID) (ThreadInfo, error) {
	t, ok := k.threads[id]
	if !ok {
		return ThreadInfo{}, &NotFoundError{Kind: "thread", ID: int(id)}
	}
	return ThreadInfo{
		ID:         t.id,
		Name:       t.name,
		Nice:       t.nice,
		Cgroup:     t.group.id,
		CPUTime:    t.cpuTime,
		Vruntime:   t.vruntime,
		Wakeups:    t.wakeups,
		Dispatches: t.dispatches,
		Alive:      t.state != stateExited,
	}, nil
}

// Threads returns the IDs of all threads ever spawned, in creation order.
func (k *Kernel) Threads() []ThreadID {
	out := make([]ThreadID, 0, len(k.threads))
	for id := ThreadID(1); id < k.nextTID; id++ {
		if _, ok := k.threads[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// CgroupInfo is a snapshot of a cgroup's state.
type CgroupInfo struct {
	ID      CgroupID
	Name    string
	Parent  CgroupID // 0 for the root
	Shares  int
	CPUTime time.Duration
	Threads int
}

// CgroupInfo returns a snapshot for cgroup id.
func (k *Kernel) CgroupInfo(id CgroupID) (CgroupInfo, error) {
	g, ok := k.cgroups[id]
	if !ok {
		return CgroupInfo{}, &NotFoundError{Kind: "cgroup", ID: int(id)}
	}
	info := CgroupInfo{
		ID:      g.id,
		Name:    g.name,
		Shares:  g.shares,
		CPUTime: g.cpuTime,
		Threads: len(g.threads),
	}
	if g.parent != nil {
		info.Parent = g.parent.id
	}
	return info, nil
}

// TotalBusyTime returns the cumulative busy wall time summed over all CPUs.
func (k *Kernel) TotalBusyTime() time.Duration {
	var sum time.Duration
	for _, c := range k.cpus {
		sum += c.busyTime
	}
	return sum
}

// ContextSwitches returns the total number of charged thread switches
// across all CPUs.
func (k *Kernel) ContextSwitches() int64 {
	var sum int64
	for _, c := range k.cpus {
		sum += c.switches
	}
	return sum
}

// Utilization returns overall CPU utilization in [0, 1] over the whole run.
func (k *Kernel) Utilization() float64 {
	if k.now <= 0 {
		return 0
	}
	return float64(k.TotalBusyTime()) / (float64(k.now) * float64(len(k.cpus)))
}
