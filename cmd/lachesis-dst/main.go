// Command lachesis-dst drives the deterministic simulation harness in
// internal/dst: randomized, seed-reproducible full-stack fault schedules
// over the Lachesis control plane, with invariant checking and
// failing-seed shrinking.
//
//	lachesis-dst run -seeds 200            # explore a seed corpus
//	lachesis-dst replay -seed 42 -verify   # re-run one seed, prove byte-identical logs
//	lachesis-dst shrink -seed 42 -out dir  # minimize a failing seed to a reproducer
//
// The -fence-off flag injects the reference regression (agents skip
// their epoch-gate admission check) the harness is required to catch;
// it exists so the teeth of the invariant stack stay testable.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"lachesis/internal/dst"
)

// SeedsEnv overrides the default corpus size of `run` (the CI knob: a
// nightly or local sweep can widen the budget without editing flags).
const SeedsEnv = dst.SeedsEnv

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "shrink":
		err = cmdShrink(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "lachesis-dst: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lachesis-dst:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  lachesis-dst run    [-seeds N] [-start S] [-fence-off] [-json FILE]
  lachesis-dst replay [-seed S] [-fence-off] [-verify] [-schedule] [-log FILE]
  lachesis-dst shrink [-seed S] [-fence-off] [-budget N] [-out DIR]`)
}

// defaultSeeds resolves the corpus size: LACHESIS_DST_SEEDS, else 200.
func defaultSeeds() int {
	if v := os.Getenv(SeedsEnv); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 200
}

// cmdRun explores a seed corpus and fails on any invariant violation.
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seeds := fs.Int("seeds", defaultSeeds(), "number of seeds to explore (env "+SeedsEnv+" overrides the default)")
	start := fs.Int64("start", 1, "first seed")
	fenceOff := fs.Bool("fence-off", false, "inject the fencing regression (agents skip epoch-gate admission)")
	jsonOut := fs.String("json", "", "write the corpus report as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := dst.Options{DisableFencing: *fenceOff}
	rep, err := dst.RunCorpus(*start, *seeds, opts, func(done int) {
		if done%50 == 0 {
			fmt.Fprintf(os.Stderr, "  %d/%d seeds\n", done, *seeds)
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d seeds from %d: %d violations, %d failovers, %d fenced rejects, %d adversarial (%d promoted / %d rolled back)\n",
		rep.Seeds, rep.Start, len(rep.Violations), rep.Failovers, rep.GateRejects,
		rep.Adversarial, rep.Promoted, rep.RolledBack)
	for _, v := range rep.Violations {
		fmt.Printf("  seed %d: tick %d %s: %s\n", v.Seed, v.Violation.Tick, v.Violation.Invariant, v.Violation.Detail)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if len(rep.Violations) > 0 {
		s := rep.Violations[0].Seed
		return fmt.Errorf("%d failing seeds; reproduce with `lachesis-dst replay -seed %d`, minimize with `lachesis-dst shrink -seed %d`",
			len(rep.Violations), s, s)
	}
	return nil
}

// cmdReplay re-runs one seed and emits its event log.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "seed to replay")
	fenceOff := fs.Bool("fence-off", false, "inject the fencing regression")
	verify := fs.Bool("verify", false, "run the seed twice and fail unless the logs are byte-identical")
	schedOnly := fs.Bool("schedule", false, "print the generated schedule JSON instead of running it")
	logOut := fs.String("log", "", "write the event log (JSONL) to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *schedOnly {
		data, err := dst.Generate(*seed).EncodeJSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	opts := dst.Options{DisableFencing: *fenceOff}
	res, err := dst.RunSeed(*seed, opts)
	if err != nil {
		return err
	}
	logBytes := res.Log.EncodeJSONL()
	if *verify {
		again, err := dst.RunSeed(*seed, opts)
		if err != nil {
			return err
		}
		if !bytes.Equal(logBytes, again.Log.EncodeJSONL()) {
			return fmt.Errorf("seed %d replay diverged: %d vs %d events — determinism broken",
				*seed, res.Events, again.Events)
		}
		fmt.Fprintf(os.Stderr, "seed %d: replay byte-identical (%d events)\n", *seed, res.Events)
	}
	if *logOut != "" {
		if err := os.WriteFile(*logOut, logBytes, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(logBytes)
	}
	fmt.Fprintf(os.Stderr, "seed %d: %d ticks, %d events, %d failovers, %d fenced rejects, decision %q\n",
		*seed, res.Ticks, res.Events, res.Failovers, res.GateRejects, res.Decision)
	if res.Violation != nil {
		return fmt.Errorf("seed %d violates %s at tick %d: %s",
			*seed, res.Violation.Invariant, res.Violation.Tick, res.Violation.Detail)
	}
	return nil
}

// cmdShrink minimizes a failing seed into an on-disk reproducer bundle.
func cmdShrink(args []string) error {
	fs := flag.NewFlagSet("shrink", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "failing seed to minimize")
	fenceOff := fs.Bool("fence-off", false, "inject the fencing regression")
	budget := fs.Int("budget", dst.DefaultShrinkBudget, "max candidate simulations")
	outDir := fs.String("out", "dst-repro", "directory for the reproducer bundle")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := dst.Options{DisableFencing: *fenceOff, Spans: true}
	sr, err := dst.Shrink(dst.Generate(*seed), opts, *budget)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	schedJSON, err := sr.Minimal.EncodeJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*outDir, "schedule.json"), append(schedJSON, '\n'), 0o644); err != nil {
		return err
	}
	res, err := dst.RunSchedule(sr.Minimal, opts)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*outDir, "events.jsonl"), res.Log.EncodeJSONL(), 0o644); err != nil {
		return err
	}
	if dump, err := dst.DumpViolation(res, *outDir); err == nil && dump != "" {
		fmt.Fprintf(os.Stderr, "flight-recorder dump: %s\n", dump)
	}
	fmt.Printf("seed %d: %s reproduced with %d events (was %d, ratio %.2f) after %d candidate runs\n",
		*seed, sr.Invariant, sr.MinimalEvents, sr.OriginalEvents, sr.Ratio(), sr.Runs)
	fmt.Printf("reproducer: %s (schedule.json + events.jsonl)\n", *outDir)
	return nil
}
