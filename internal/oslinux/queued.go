package oslinux

import "lachesis/internal/driver"

// Queued wraps the Control in a per-backend submission queue: all control
// writes funnel through one writer goroutine (see driver.SubmitQueue), so
// the kernel-facing syscalls are issued by a single thread regardless of
// how many binding applies run concurrently above. depth bounds parked
// submissions (<= 0 selects the default). The caller owns Close on the
// returned wrapper.
func (c *Control) Queued(depth int) *driver.QueuedOS {
	return driver.NewQueuedOS(c, depth)
}
