// Quickstart: deploy a small streaming query on the simulated node and
// compare default OS scheduling against Lachesis with the Queue-Size
// policy enforced through nice.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/driver"
	"lachesis/internal/metrics"
	"lachesis/internal/simctl"
	"lachesis/internal/simos"
	"lachesis/internal/spe"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// buildQuery defines an 8-operator pipeline with a skewed cost profile:
// "enrich" is the bottleneck.
func buildQuery() *spe.LogicalQuery {
	q := spe.NewQuery("quickstart")
	q.MustAddOp(&spe.LogicalOp{Name: "source", Kind: spe.KindIngress, Cost: 20 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&spe.LogicalOp{Name: "parse", Cost: 200 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&spe.LogicalOp{Name: "filter", Cost: 500 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&spe.LogicalOp{Name: "join", Cost: 150 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&spe.LogicalOp{Name: "enrich", Cost: 800 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&spe.LogicalOp{Name: "aggregate", Cost: 300 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&spe.LogicalOp{Name: "format", Cost: 400 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&spe.LogicalOp{Name: "sink", Kind: spe.KindEgress, Cost: 100 * time.Microsecond})
	if err := q.Pipeline("source", "parse", "filter", "join", "enrich", "aggregate", "format", "sink"); err != nil {
		panic(err)
	}
	return q
}

// runOnce runs the query for 60 virtual seconds at the given rate,
// optionally under Lachesis QS+nice, and reports sustained throughput and
// mean processing latency.
func runOnce(rate float64, withLachesis bool) (float64, time.Duration, error) {
	k := simos.New(simos.OdroidXU4())
	engine, err := spe.New(k, spe.Config{Name: "storm", Flavor: spe.FlavorStorm, Seed: 1})
	if err != nil {
		return 0, 0, err
	}
	dep, err := engine.Deploy(buildQuery(), spe.NewRateSource(rate, nil))
	if err != nil {
		return 0, 0, err
	}

	if withLachesis {
		// The full middleware pipeline: engine reporter -> metric store ->
		// driver -> provider -> QS policy -> nice translator -> kernel.
		store := metrics.NewStore(time.Second)
		if err := engine.StartReporter(store, time.Second); err != nil {
			return 0, 0, err
		}
		drv, err := driver.New(engine, store)
		if err != nil {
			return 0, 0, err
		}
		osAdapter, err := simctl.NewOSAdapter(k)
		if err != nil {
			return 0, 0, err
		}
		mw := core.NewMiddleware(nil)
		if err := mw.Bind(core.Binding{
			Policy:     core.NewQSPolicy(),
			Translator: core.NewNiceTranslator(osAdapter),
			Drivers:    []core.Driver{drv},
			Period:     time.Second,
		}); err != nil {
			return 0, 0, err
		}
		if _, err := simctl.StartMiddleware(k, mw); err != nil {
			return 0, 0, err
		}
	}

	k.RunUntil(10 * time.Second) // warmup
	dep.ResetStats()
	egressBase := dep.EgressCount()
	k.RunUntil(70 * time.Second)
	throughput := float64(dep.EgressCount()-egressBase) / 60
	return throughput, dep.Latencies().MeanProc, nil
}

func run() error {
	// The enrich operator caps the pipeline at 1250 t/s on one core; just
	// below that point scheduling decisions dominate performance.
	const rate = 1230
	fmt.Printf("quickstart: 8-operator pipeline at %d t/s on a simulated 4-core edge device\n\n", int(rate))
	fmt.Printf("%-12s %12s %14s\n", "scheduler", "tput (t/s)", "mean latency")
	for _, lachesis := range []bool{false, true} {
		name := "os"
		if lachesis {
			name = "lachesis-qs"
		}
		tput, lat, err := runOnce(rate, lachesis)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %12.1f %14v\n", name, tput, lat.Round(10*time.Microsecond))
	}
	fmt.Println("\nLachesis boosts the bottleneck operator's thread priority from its")
	fmt.Println("queue size, so the same hardware sustains the load with far smaller")
	fmt.Println("queues — no engine or query changes required.")
	return nil
}
