package harness

import (
	"os"
	"testing"
	"time"

	"lachesis/internal/core"
)

// TestScaleExtendedSmall smokes the extended-scale protocol on a small
// count: timing runs produce percentiles, memoization engages, and the
// latency-0 equivalence pair proves decision identity.
func TestScaleExtendedSmall(t *testing.T) {
	row, err := runScaleExtended(bigCount{n: 48, shards: 4}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Extended || row.Shards != 4 || row.ChurnEvery != scaleBigChurnEvery {
		t.Fatalf("row mislabeled: %+v", row)
	}
	if row.ParP95Ns <= 0 || row.ShardP95Ns <= 0 {
		t.Fatalf("timing runs produced no percentiles: par=%d shard=%d", row.ParP95Ns, row.ShardP95Ns)
	}
	if row.MemoizedPerInterval <= 0 {
		t.Fatalf("memoization never engaged (memo/interval = %v)", row.MemoizedPerInterval)
	}
	if !row.DecisionsMatch {
		t.Fatal("sharded + memoized decisions diverged from the sequential baseline")
	}
	if row.SuppressedFraction <= 0 {
		t.Fatalf("no write suppression at steady state: %+v", row)
	}
}

// TestScaleRegressionGate is the CI hot-path budget gate (satellite of
// the scale story): a quick 2000-binding run in the production hot-path
// shape — memoized, audit off — must keep decision-cycle p95 under the
// 10ms budget, and the same shape at a smaller count must hold the
// zero-allocation steady state. Like the extended BENCH rows, the
// timing half runs at fetch latency 0: thousands of independent 150µs
// sleeps serialize through the kernel timer path (~5µs per expiry) and
// would gate the CI host's timer throughput, not the decision loop.
// Opt-in via LACHESIS_SCALE_GATE=1: it is meant for the dedicated CI
// job, not every `go test ./...`.
func TestScaleRegressionGate(t *testing.T) {
	if os.Getenv("LACHESIS_SCALE_GATE") == "" {
		t.Skip("set LACHESIS_SCALE_GATE=1 to run the scale regression gate")
	}

	// Allocation half of the gate: a memoized steady state allocates
	// nothing per cycle. Latency 0 — allocations don't depend on sleeps.
	const allocBindings = 256
	mw := core.NewMiddleware(nil)
	defer mw.Close()
	mw.SetWriteGate(core.NewDriverGate())
	mw.SetParallelism(core.Parallelism{FetchWorkers: 8, ApplyWorkers: 4})
	cnt := &scaleCountingOS{}
	for i := 0; i < allocBindings; i++ {
		drv := newScaleDriver(i, 3*scalePeriod, 0, scaleBigChurnEvery)
		co := core.NewCoalescer(cnt, nil)
		if err := mw.Bind(core.Binding{
			Policy:     core.GroupPerQuery(core.NewQSPolicy()),
			Translator: core.NewCombinedTranslator(co, 0, 0),
			Drivers:    []core.Driver{drv},
			Coalescer:  co,
			Period:     scalePeriod,
			Memoize:    true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	now := time.Duration(0)
	// Warm past the ramp and every binding's first burst (lazy paths).
	for s := 0; s < scaleBigChurnEvery+4; s++ {
		if _, err := mw.Step(now); err != nil {
			t.Fatal(err)
		}
		now += scalePeriod
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := mw.Step(now); err != nil {
			t.Fatal(err)
		}
		now += scalePeriod
	})
	if allocs != 0 {
		t.Errorf("steady decision cycle allocates: %v allocs/op, want 0", allocs)
	}

	// Timing half of the gate: the 2k-binding production shape.
	bc := scaleBigConfigs[2000]
	run, err := runScale(scaleConfig{
		n: bc.n, warmupSteps: scaleBigChurnEvery + 2, measureSteps: 20,
		mode: "par", audited: false, memoize: true,
		latency: 0, churnEvery: scaleBigChurnEvery,
		fetchWorkers: 1, applyWorkers: scaleApplyWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 10 * time.Millisecond
	if run.p95 >= budget {
		t.Fatalf("2000-binding cycle p95 = %v, budget %v (p50 %v, mean %v)", run.p95, budget, run.p50, run.mean)
	}
	t.Logf("scale gate: 2k cycle p50=%v p95=%v mean=%v memo/i=%.0f", run.p50, run.p95, run.mean, run.memoPerStep)
}
