package dst

import (
	"runtime"
	"sync"

	"lachesis/internal/guard"
)

// SeedOutcome is one corpus seed's summary.
type SeedOutcome struct {
	Seed      int64      `json:"seed"`
	Events    int        `json:"events"`
	Violation *Violation `json:"violation,omitempty"`
}

// CorpusReport aggregates a randomized corpus run.
type CorpusReport struct {
	Start int64 `json:"start"`
	Seeds int   `json:"seeds"`
	// Violations holds every failing seed, ascending.
	Violations []SeedOutcome `json:"violations,omitempty"`
	// Aggregate behavior counters: how much of the state space the
	// corpus actually exercised.
	Failovers   int   `json:"failovers"`
	GateRejects int64 `json:"gate_rejects"`
	Adversarial int   `json:"adversarial"`
	Promoted    int   `json:"promoted"`
	RolledBack  int   `json:"rolled_back"`
	Events      int   `json:"events"`
}

// RunCorpus simulates seeds start..start+n-1. Seeds are independent
// universes, so they run in parallel across CPUs; each individual run
// stays fully deterministic. progress (optional) is called after each
// completed seed with the done count.
func RunCorpus(start int64, n int, opts Options, progress func(done int)) (*CorpusReport, error) {
	rep := &CorpusReport{Start: start, Seeds: n}
	results := make([]*Result, n)
	errs := make([]error, n)

	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		done int
	)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				results[i], errs[i] = RunSeed(start+int64(i), opts)
				mu.Lock()
				done++
				d := done
				mu.Unlock()
				if progress != nil {
					progress(d)
				}
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		r := results[i]
		rep.Failovers += r.Failovers
		rep.GateRejects += r.GateRejects
		rep.Events += r.Events
		if r.Adversarial {
			rep.Adversarial++
		}
		switch r.Decision {
		case guard.DecisionPromoted:
			rep.Promoted++
		case guard.DecisionRolledBack:
			rep.RolledBack++
		}
		if r.Violation != nil {
			rep.Violations = append(rep.Violations, SeedOutcome{
				Seed: r.Seed, Events: r.Events, Violation: r.Violation,
			})
		}
	}
	return rep, nil
}
