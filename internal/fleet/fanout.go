package fleet

import (
	"sync"
	"time"

	"lachesis/internal/driver"
	"lachesis/internal/guard"
	"lachesis/internal/span"
	"lachesis/internal/telemetry"
)

// Push outcome labels (telemetry label "outcome").
const (
	PushOK       = "ok"
	PushConflict = "conflict"
	PushSkipped  = "skipped"
	PushError    = "error"
	PushFenced   = "fenced"
)

// FanoutConfig tunes the push engine. Zero values select defaults.
type FanoutConfig struct {
	// Attempts per agent per push round (default 3). Only transient
	// failures (timeouts, refused connections) are retried.
	Attempts int
	// BaseBackoff / MaxBackoff / Jitter shape the retry delays through
	// the shared driver.RetryPolicy (defaults 100ms / 2s / 0.2).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Jitter      float64
	// BreakerThreshold consecutive failed push rounds open an agent's
	// circuit breaker (default 3); while open, push rounds skip the agent
	// until BreakerCooldown (default 10s) has elapsed, then one probe
	// round is allowed through. A flapping or crashed agent therefore
	// costs one skipped outcome per round instead of Attempts timeouts.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Parallel bounds concurrent per-agent pushes (default 8).
	Parallel int
	// Sleep and Rand are injectable for tests (nil: real time, shared
	// math/rand source).
	Sleep func(time.Duration)
	Rand  func() float64
}

func (c FanoutConfig) withDefaults() FanoutConfig {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.Parallel <= 0 {
		c.Parallel = 8
	}
	return c
}

// PushOutcome is the result of one agent's push in a round.
type PushOutcome struct {
	Agent string `json:"agent"`
	// OK: the agent accepted the payload (or idempotently already ran
	// this exact candidate — see Conflict).
	OK bool `json:"ok"`
	// Conflict: the agent had a different rollout in flight. Not OK; the
	// caller retries in a later round. When a conflict turned out to be
	// our own earlier push that the response to which was lost (the agent
	// reports our version in flight), OK is true and Conflict stays false.
	Conflict bool `json:"conflict,omitempty"`
	// Skipped: the agent's circuit breaker was open; no network calls.
	Skipped bool `json:"skipped,omitempty"`
	// Fenced: the agent rejected the push's fencing epoch because it has
	// observed a newer leader. Not retried — the pushing coordinator is
	// deposed and must step down.
	Fenced bool `json:"fenced,omitempty"`
	// Attempts actually made (0 when skipped).
	Attempts int `json:"attempts"`
	// Status is the agent's rollout status after an accepted push.
	Status guard.Status `json:"status,omitempty"`
	// Err holds the final error for failed pushes.
	Err string `json:"err,omitempty"`
}

// breaker is one agent's failure containment state.
type breaker struct {
	fails     int
	openUntil time.Duration
}

// Fanout pushes policy payloads to many agents in parallel, with
// retry/backoff per agent (shared driver.RetryPolicy) and a per-agent
// circuit breaker. Safe for concurrent use, though the coordinator
// drives it from a single tick loop.
type Fanout struct {
	cfg FanoutConfig

	mu       sync.Mutex
	breakers map[string]*breaker

	ctrPushOK     *telemetry.Counter
	ctrPushConf   *telemetry.Counter
	ctrPushSkip   *telemetry.Counter
	ctrPushErr    *telemetry.Counter
	ctrPushFenced *telemetry.Counter
	ctrRetries    *telemetry.Counter
	ctrOpens      *telemetry.Counter

	spans       *span.Recorder
	breakerHook func(now time.Duration, agent string)
}

// NewFanout builds a push engine (zero Config fields select defaults).
func NewFanout(cfg FanoutConfig) *Fanout {
	return &Fanout{cfg: cfg.withDefaults(), breakers: map[string]*breaker{}}
}

// SetTelemetry registers the fan-out's instruments.
func (f *Fanout) SetTelemetry(reg *telemetry.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ctrPushOK = reg.Counter(MetricFleetPushesTotal, telemetry.L("outcome", PushOK))
	f.ctrPushConf = reg.Counter(MetricFleetPushesTotal, telemetry.L("outcome", PushConflict))
	f.ctrPushSkip = reg.Counter(MetricFleetPushesTotal, telemetry.L("outcome", PushSkipped))
	f.ctrPushErr = reg.Counter(MetricFleetPushesTotal, telemetry.L("outcome", PushError))
	f.ctrPushFenced = reg.Counter(MetricFleetPushesTotal, telemetry.L("outcome", PushFenced))
	f.ctrRetries = reg.Counter(MetricFleetPushRetriesTotal)
	f.ctrOpens = reg.Counter(MetricFleetBreakerOpensTotal)
}

// SetSpans attaches a trace recorder: each per-agent push then emits a
// "push" span (child of the rollout context handed to PushCtx), whose
// context crosses the HTTP hop as a Traceparent header for clients
// implementing TracedAgent. nil disables.
func (f *Fanout) SetSpans(rec *span.Recorder) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.spans = rec
}

// SetBreakerHook installs a callback fired when an agent's breaker opens
// (fresh open only, not an already-open refresh) — typically
// span.FlightRecorder.Trip. The hook runs with the fan-out's lock held
// and must not call back into the fan-out. nil disables.
func (f *Fanout) SetBreakerHook(hook func(now time.Duration, agent string)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.breakerHook = hook
}

// BreakerOpen reports whether an agent's breaker is open at now.
func (f *Fanout) BreakerOpen(now time.Duration, id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.breakers[id]
	return b != nil && b.fails >= f.cfg.BreakerThreshold && now < b.openUntil
}

// Push delivers (version, payload) to every agent in parallel and
// returns one outcome per agent, in input order. Agents whose breaker is
// open are skipped without network calls; a conflicting agent that
// reports our version already in flight counts as an idempotent success
// (the earlier push worked, its response was lost).
func (f *Fanout) Push(now time.Duration, agents []AgentRecord, conns ConnFactory, version string, payload []byte) []PushOutcome {
	return f.PushEpoch(now, agents, conns, version, payload, span.Context{}, 0)
}

// PushCtx is Push under a rollout trace context: each agent's push
// becomes a "push" span child of parent, and its context rides the hop
// to TracedAgent clients as a traceparent. A zero parent (or no
// recorder) behaves exactly like Push.
func (f *Fanout) PushCtx(now time.Duration, agents []AgentRecord, conns ConnFactory, version string, payload []byte, parent span.Context) []PushOutcome {
	return f.PushEpoch(now, agents, conns, version, payload, parent, 0)
}

// PushEpoch is PushCtx under a fencing epoch: clients implementing
// FencedAgent carry the epoch across the hop (the HTTPAgent as the
// EpochHeader request header) so agents can reject a deposed leader's
// stale pushes. Epoch 0 behaves exactly like PushCtx (unfenced).
func (f *Fanout) PushEpoch(now time.Duration, agents []AgentRecord, conns ConnFactory, version string, payload []byte, parent span.Context, epoch int64) []PushOutcome {
	out := make([]PushOutcome, len(agents))
	sem := make(chan struct{}, f.cfg.Parallel)
	var wg sync.WaitGroup
	for i := range agents {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = f.pushOne(now, agents[i], conns, version, payload, parent, epoch)
		}(i)
	}
	wg.Wait()
	return out
}

// pushOne runs the breaker check, the retry loop, and the idempotency
// probe for a single agent.
func (f *Fanout) pushOne(now time.Duration, a AgentRecord, conns ConnFactory, version string, payload []byte, parent span.Context, epoch int64) PushOutcome {
	o := PushOutcome{Agent: a.ID}
	if f.BreakerOpen(now, a.ID) {
		o.Skipped = true
		f.count(f.ctrPushSkip)
		return o
	}
	act := f.recorder().StartChild(parent, now, "push")
	act.SetAttr("agent", a.ID)
	act.SetAttr("version", version)
	tp := ""
	if c := act.Context(); c.Valid() {
		tp = c.Traceparent()
	}
	conn := conns(a)
	traced, isTraced := conn.(TracedAgent)
	fenced, isFencer := conn.(FencedAgent)
	var st guard.Status
	err := driver.RetryPolicy{
		Attempts:  f.cfg.Attempts,
		BaseDelay: f.cfg.BaseBackoff,
		MaxDelay:  f.cfg.MaxBackoff,
		Jitter:    f.cfg.Jitter,
		Sleep:     f.cfg.Sleep,
		Rand:      f.cfg.Rand,
		OnRetry: func(int, error) {
			f.count(f.ctrRetries)
		},
	}.Do(func() error {
		o.Attempts++
		var perr error
		switch {
		case epoch > 0 && isFencer:
			st, perr = fenced.ProposeFenced(payload, tp, epoch)
		case isTraced && tp != "":
			st, perr = traced.ProposeTraced(payload, tp)
		default:
			st, perr = conn.Propose(payload)
		}
		return perr
	})
	switch {
	case err == nil:
		o.OK = true
		o.Status = st
	case IsFenced(err):
		o.Fenced = true
		o.Err = err.Error()
	case IsConflict(err):
		// The agent refused because a rollout is in flight. If that
		// rollout is OUR candidate, an earlier push (this round's lost
		// response, or a pre-crash coordinator's) already landed: success.
		if cur, serr := conn.Status(); serr == nil && cur.Candidate == version {
			o.OK = true
			o.Status = cur
		} else {
			o.Conflict = true
			o.Err = err.Error()
		}
	default:
		o.Err = err.Error()
	}
	switch {
	case o.OK:
		act.End(nil)
	default:
		act.End(err)
	}
	// A conflict or fenced rejection is a healthy agent saying no — it
	// closes the breaker like a success; only transport-level failure
	// counts toward opening.
	f.settle(now, a.ID, o.OK || o.Conflict || o.Fenced)
	switch {
	case o.OK:
		f.count(f.ctrPushOK)
	case o.Fenced:
		f.count(f.ctrPushFenced)
	case o.Conflict:
		f.count(f.ctrPushConf)
	default:
		f.count(f.ctrPushErr)
	}
	return o
}

// settle updates the agent's breaker after a push round. Success closes
// the breaker; failure counts toward BreakerThreshold and (re-)opens it
// once reached — including the failed probe after a cooldown, which
// re-opens immediately.
func (f *Fanout) settle(now time.Duration, id string, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.breakers[id]
	if b == nil {
		b = &breaker{}
		f.breakers[id] = b
	}
	if ok {
		b.fails = 0
		b.openUntil = 0
		return
	}
	b.fails++
	if b.fails >= f.cfg.BreakerThreshold {
		wasOpen := b.openUntil > now
		b.openUntil = now + f.cfg.BreakerCooldown
		if !wasOpen {
			if f.ctrOpens != nil {
				f.ctrOpens.Inc()
			}
			if f.breakerHook != nil {
				f.breakerHook(now, id)
			}
		}
	}
}

// recorder returns the attached span recorder (nil-safe: a nil
// *Recorder is a no-op recorder).
func (f *Fanout) recorder() *span.Recorder {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.spans
}

// count increments a counter if telemetry is attached.
func (f *Fanout) count(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}
