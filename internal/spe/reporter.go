package spe

import (
	"time"

	"lachesis/internal/simos"
)

// Raw metric series names published by engine reporters. Series are
// namespaced "<engine>.<operator>.<name>". Which names an engine publishes
// depends on its flavor, mirroring the different metric surfaces of Storm,
// Flink, and Liebre; the Lachesis metric provider derives whatever a policy
// needs from the available subset (paper Fig. 4 and Algorithm 3).
const (
	// SeriesQueue is the operator input queue length (all flavors).
	SeriesQueue = "queue"
	// SeriesIn is the cumulative processed-tuple count (Storm, Liebre).
	SeriesIn = "in"
	// SeriesOut is the cumulative emitted-tuple count (Storm, Liebre).
	SeriesOut = "out"
	// SeriesExecMs is the mean per-tuple execute latency over the last
	// period, in ms (Storm).
	SeriesExecMs = "exec_ms"
	// SeriesInRate is the input rate over the last period, tuples/s
	// (Flink).
	SeriesInRate = "in_rate"
	// SeriesOutRate is the output rate over the last period, tuples/s
	// (Flink).
	SeriesOutRate = "out_rate"
	// SeriesBusyMsPerS is busy CPU ms per wall second over the last period
	// (Flink).
	SeriesBusyMsPerS = "busy_ms_per_s"
	// SeriesCostMs is the engine-reported average tuple cost in ms
	// (Liebre).
	SeriesCostMs = "cost_ms"
	// SeriesSelectivity is the engine-reported selectivity (Liebre).
	SeriesSelectivity = "selectivity"
	// SeriesHeadMs is the age of the head tuple of the input queue in ms
	// (Liebre).
	SeriesHeadMs = "head_ms"
)

// reporter periodically publishes raw metrics for every operator of one
// engine, consuming a small amount of simulated CPU like a real metrics
// reporter would.
type reporter struct {
	engine     *Engine
	sink       MetricSink
	period     time.Duration
	lastCounts map[string]reportCounts
	lastAt     time.Duration
}

type reportCounts struct {
	in, out int64
	busy    time.Duration
}

const (
	reportBaseCost  = 30 * time.Microsecond
	reportPerOpCost = 3 * time.Microsecond
)

// run is the reporter thread body: publish, then sleep one period.
func (r *reporter) run(ctx *simos.RunContext, granted time.Duration) simos.Decision {
	now := ctx.Now()
	cost := r.report(now)
	if cost > granted {
		cost = granted
	}
	return simos.Decision{Used: cost, Action: simos.ActionSleep, WakeAt: now + r.period}
}

// report publishes one sample per operator and returns the CPU cost.
func (r *reporter) report(now time.Duration) time.Duration {
	e := r.engine
	ops := e.Ops()
	elapsed := now - r.lastAt
	for _, p := range ops {
		prefix := e.cfg.Name + "." + p.name + "."
		prev := r.lastCounts[p.name]
		cur := reportCounts{in: p.stats.inCount, out: p.stats.outCount, busy: p.stats.busy}
		r.lastCounts[p.name] = cur

		// Ingress operators have no input queue in the engine's metric
		// surface: the source backlog lives in the external system (Kafka
		// consumer lag), which task metrics do not include.
		queueLen := float64(p.QueueLen(now))
		headMs := p.OldestWait(now).Seconds() * 1e3
		if p.kind == KindIngress {
			queueLen, headMs = 0, 0
		}

		switch e.cfg.Flavor {
		case FlavorStorm:
			r.sink.Record(now, prefix+SeriesQueue, queueLen)
			r.sink.Record(now, prefix+SeriesIn, float64(cur.in))
			r.sink.Record(now, prefix+SeriesOut, float64(cur.out))
			if din := cur.in - prev.in; din > 0 {
				dbusy := cur.busy - prev.busy
				r.sink.Record(now, prefix+SeriesExecMs, dbusy.Seconds()*1e3/float64(din))
			}
		case FlavorFlink:
			r.sink.Record(now, prefix+SeriesQueue, queueLen)
			if elapsed > 0 {
				r.sink.Record(now, prefix+SeriesInRate, float64(cur.in-prev.in)/elapsed.Seconds())
				r.sink.Record(now, prefix+SeriesOutRate, float64(cur.out-prev.out)/elapsed.Seconds())
				dbusy := cur.busy - prev.busy
				r.sink.Record(now, prefix+SeriesBusyMsPerS, dbusy.Seconds()*1e3/elapsed.Seconds())
			}
		case FlavorLiebre:
			r.sink.Record(now, prefix+SeriesQueue, queueLen)
			r.sink.Record(now, prefix+SeriesIn, float64(cur.in))
			r.sink.Record(now, prefix+SeriesOut, float64(cur.out))
			r.sink.Record(now, prefix+SeriesCostMs, p.CostHint().Seconds()*1e3)
			r.sink.Record(now, prefix+SeriesSelectivity, p.SelectivityHint())
			r.sink.Record(now, prefix+SeriesHeadMs, headMs)
		}
	}
	r.lastAt = now
	return reportBaseCost + time.Duration(len(ops))*reportPerOpCost
}
