// Package span is Lachesis' causal tracing layer: it explains *why* a
// decision cycle was slow or a rollout rolled back, where telemetry
// histograms only say *how* slow and the audit trail only says *what*
// changed. A span is one timed operation (a cycle, one driver fetch, one
// binding's apply, a canary verdict) with a parent link; spans sharing a
// trace ID form a tree, and the tree can cross process boundaries via a
// traceparent-style context carried over the fleet's HTTP hops
// (propagate.go), so one trace follows a policy rollout from the fleet
// coordinator through an agent's canary window to its verdict.
//
// The package follows the same design discipline as internal/telemetry:
// no third-party dependencies, atomics on the hot path, an injectable
// clock, and bounded memory — the Recorder keeps spans in a fixed ring,
// optionally mirroring them to a Sink (JSONL for durable traces). A nil
// *Recorder and a nil *Active are inert, so instrumented code paths pay
// a single pointer test when tracing is off.
package span

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one completed timed operation in a trace tree.
type Span struct {
	// Trace is the 32-hex-digit trace ID shared by every span of one
	// causal tree, possibly across processes.
	Trace string `json:"trace"`
	// ID is the span's own 16-hex-digit identifier.
	ID string `json:"id"`
	// Parent is the ID of the parent span ("" for a root).
	Parent string `json:"parent,omitempty"`
	// Name is the operation ("cycle", "fetch", "apply", "canary.verdict"...).
	Name string `json:"name"`
	// Process identifies the emitting process ("lachesisd", "lachesis-fleet").
	Process string `json:"process,omitempty"`
	// At is the virtual step time when the span started (the same clock
	// the middleware's Step receives), nanoseconds.
	At time.Duration `json:"at_ns"`
	// Wall is the wall-clock duration of the operation.
	Wall time.Duration `json:"wall_ns"`
	// Err carries the operation's error text, if it failed.
	Err string `json:"err,omitempty"`
	// Attrs are optional key=value annotations (binding label, driver
	// name, verdict decision...).
	Attrs Attrs `json:"attrs,omitempty"`
}

// Attr is one key=value span annotation.
type Attr struct {
	K string
	V string
}

// Attrs holds a span's annotations in insertion order. It is a slice,
// not a map: spans carry at most a handful of attrs, and a map would
// cost two allocations plus per-key hashing on the instrumentation hot
// path. It still marshals as a JSON object, so sink files read naturally.
type Attrs []Attr

// Get returns the value of key ("" when absent). The first entry wins
// should a key ever be set twice.
func (a Attrs) Get(key string) string {
	for _, kv := range a {
		if kv.K == key {
			return kv.V
		}
	}
	return ""
}

// MarshalJSON renders the attrs as a JSON object. Serialization is off
// the hot path (sinks and debug endpoints), so going through a map for
// correct escaping and deterministic key order is fine here.
func (a Attrs) MarshalJSON() ([]byte, error) {
	m := make(map[string]string, len(a))
	for _, kv := range a {
		if _, dup := m[kv.K]; !dup {
			m[kv.K] = kv.V
		}
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes a JSON object into attrs (sorted by key — the
// object had no order to preserve).
func (a *Attrs) UnmarshalJSON(b []byte) error {
	var m map[string]string
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(Attrs, 0, len(m))
	for _, k := range keys {
		out = append(out, Attr{K: k, V: m[k]})
	}
	*a = out
	return nil
}

// Sink receives every completed span, after it is stored in the ring.
// Implementations must be safe for concurrent use.
type Sink interface {
	Emit(Span)
}

// DefaultCapacity is the ring size used when Config.Capacity is zero.
// Under the slow-span floor (see core.DefaultSpanFloor) a cycle at a few
// hundred bindings completes a few hundred spans, so this holds several
// cycles. The ring is live heap the garbage collector re-marks on every
// GC — sizing it generously taxes every allocation in the process, which
// is exactly the overhead the traceoverhead experiment polices.
const DefaultCapacity = 1024

// Config parameterizes a Recorder.
type Config struct {
	// Capacity bounds the in-memory span ring (0 selects DefaultCapacity).
	Capacity int
	// Process is stamped on every span this recorder emits.
	Process string
	// Seed initializes ID generation; 0 derives a seed from the clock so
	// two processes do not mint colliding span IDs.
	Seed uint64
	// Clock supplies wall time for span durations (nil = time.Now).
	Clock func() time.Time
	// Sink, when non-nil, receives every completed span (e.g. a JSONLSink).
	Sink Sink
}

// ringShards stripes the span ring (power of two). A decision cycle at a
// few hundred bindings completes >1000 spans across dozens of phase
// workers; one mutex would serialize them all.
const ringShards = 8

// ringShard is one stripe: a bounded ring of completed spans plus their
// global sequence stamps (for merge ordering in Snapshot).
type ringShard struct {
	mu    sync.Mutex
	spans []Span
	seqs  []uint64
	next  int
	count int
}

// Recorder mints span IDs and keeps the most recent spans in a bounded
// sharded ring. All methods are safe for concurrent use; all methods on
// a nil *Recorder are no-ops, so callers can instrument unconditionally.
type Recorder struct {
	capacity int
	shardCap int
	process  string
	clock    func() time.Time
	sink     Sink
	seed     uint64
	ids      atomic.Uint64
	total    atomic.Int64

	seq       atomic.Uint64
	shards    [ringShards]ringShard
	lastTrace atomic.Pointer[string]
}

// New builds a Recorder from cfg.
func New(cfg Config) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Seed == 0 {
		cfg.Seed = uint64(cfg.Clock().UnixNano()) ^ uint64(os.Getpid())<<32
	}
	r := &Recorder{
		capacity: cfg.Capacity,
		shardCap: (cfg.Capacity + ringShards - 1) / ringShards,
		process:  cfg.Process,
		clock:    cfg.Clock,
		sink:     cfg.Sink,
		// Avalanche the seed before use: raw seeds s and s+1 would
		// otherwise yield the same ID stream shifted by one (nextID strides
		// by the SplitMix64 gamma), and nearby seeds are exactly what
		// multiple recorders in one test or one host tend to get.
		seed: splitmix64(cfg.Seed),
	}
	// Allocate the shard rings up front: growing them mid-flight would
	// put allocation spikes inside the cycles being traced.
	for i := range r.shards {
		r.shards[i].spans = make([]Span, r.shardCap)
		r.shards[i].seqs = make([]uint64, r.shardCap)
	}
	return r
}

// splitmix64 is the ID-generation mix (public-domain SplitMix64 step):
// deterministic per (seed, counter), well spread across the 64-bit space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const hexDigits = "0123456789abcdef"

// hex16 renders v as 16 lowercase hex digits.
func hex16(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// nextID returns a fresh 64-bit identifier: SplitMix64 over a stream
// whose starting state is the recorder's avalanched seed. Two recorders
// collide only if their mixed seeds land a small gamma-multiple apart —
// a ~2^-64 accident rather than a property of adjacent seeds.
func (r *Recorder) nextID() uint64 {
	n := r.ids.Add(1)
	return splitmix64(r.seed + n*0x9e3779b97f4a7c15)
}

// activeInlineAttrs is the attr count an Active holds without allocating
// (no instrumentation site sets more than three today).
const activeInlineAttrs = 4

// Active is an in-flight span. Methods on a nil *Active are no-ops.
// Context stays readable after End; a second End is a no-op.
type Active struct {
	r     *Recorder
	sp    Span
	t0    time.Time
	ended bool
	nattr int
	attrs [activeInlineAttrs]Attr
}

// StartRoot opens a new trace: a root span with a fresh trace ID. now is
// the caller's virtual step time.
func (r *Recorder) StartRoot(now time.Duration, name string) *Active {
	if r == nil {
		return nil
	}
	trace := hex16(r.nextID()) + hex16(r.nextID())
	a := &Active{r: r, t0: r.clock(), sp: Span{
		Trace: trace, ID: hex16(r.nextID()), Name: name,
		Process: r.process, At: now,
	}}
	r.lastTrace.Store(&trace)
	return a
}

// StartChild opens a span under parent. An invalid (zero) parent context
// degrades to a new root, so broken propagation loses linkage, never data.
func (r *Recorder) StartChild(parent Context, now time.Duration, name string) *Active {
	if r == nil {
		return nil
	}
	if !parent.Valid() {
		return r.StartRoot(now, name)
	}
	return &Active{r: r, t0: r.clock(), sp: Span{
		Trace: parent.Trace, ID: hex16(r.nextID()), Parent: parent.Span,
		Name: name, Process: r.process, At: now,
	}}
}

// SetAttr annotates the span with a key=value pair. The first
// activeInlineAttrs attrs are stored inline; later ones spill to a slice.
func (a *Active) SetAttr(key, value string) {
	if a == nil || a.ended {
		return
	}
	if a.nattr < activeInlineAttrs {
		a.attrs[a.nattr] = Attr{K: key, V: value}
		a.nattr++
		return
	}
	a.sp.Attrs = append(a.sp.Attrs, Attr{K: key, V: value})
}

// Context returns the span's propagation context (zero for a nil span),
// for linking children or crossing a process boundary.
func (a *Active) Context() Context {
	if a == nil || a.r == nil {
		return Context{}
	}
	return Context{Trace: a.sp.Trace, Span: a.sp.ID}
}

// End completes the span, stamping its wall duration and the error (nil
// err = success), and records it in the ring and the sink. A second End
// is a no-op; Context stays readable.
func (a *Active) End(err error) {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	sp := a.sp
	sp.Wall = a.r.clock().Sub(a.t0)
	if err != nil {
		sp.Err = err.Error()
	}
	if a.nattr > 0 {
		attrs := make(Attrs, 0, a.nattr+len(sp.Attrs))
		attrs = append(attrs, a.attrs[:a.nattr]...)
		attrs = append(attrs, sp.Attrs...) // spilled tail, if any
		sp.Attrs = attrs
	}
	a.r.record(sp)
}

// ChildContext mints the identity a child span under parent would get,
// without opening or recording anything: one ID draw, no allocation
// beyond the 16-byte hex string. Hot paths use it to give a prospective
// span an identity that children can parent under, deciding only later
// (via EmitSpan) whether the span itself is worth recording. Returns the
// zero Context on a nil recorder or invalid parent.
func (r *Recorder) ChildContext(parent Context) Context {
	if r == nil || !parent.Valid() {
		return Context{}
	}
	return Context{Trace: parent.Trace, Span: hex16(r.nextID())}
}

// Emit records an already-timed leaf span under parent in one call,
// bypassing the Active machinery. Instrumentation hot paths that
// already measure a phase for stats use it to emit a span only when the
// phase is slow or failed (see core's slow-span floor): the skip path
// then costs a duration compare instead of an allocation. An invalid
// parent or nil recorder drops the span.
func (r *Recorder) Emit(parent Context, at time.Duration, name string, wall time.Duration, err error) {
	if r == nil || !parent.Valid() {
		return
	}
	r.EmitSpan(Span{
		Trace: parent.Trace, ID: hex16(r.nextID()), Parent: parent.Span,
		Name: name, Process: r.process, At: at, Wall: wall,
		Err: errText(err),
	})
}

// EmitSpan records a fully-built span — the low-level primitive under
// Emit for callers that pre-minted the span's identity with ChildContext.
// The span's Trace and ID must be set; Process is stamped if empty.
// Nil-safe; a span without a trace is dropped.
func (r *Recorder) EmitSpan(sp Span) {
	if r == nil || sp.Trace == "" || sp.ID == "" {
		return
	}
	if sp.Process == "" {
		sp.Process = r.process
	}
	r.record(sp)
}

// errText renders err for a Span's Err field ("" for nil).
func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// record appends a completed span to its sequence-selected ring shard
// and forwards it to the sink. Round-robin by sequence keeps neighboring
// completions on different shard mutexes and makes the merged snapshot
// order the true completion order.
func (r *Recorder) record(sp Span) {
	s := r.seq.Add(1)
	sh := &r.shards[s&(ringShards-1)]
	sh.mu.Lock()
	sh.spans[sh.next] = sp
	sh.seqs[sh.next] = s
	sh.next = (sh.next + 1) % r.shardCap
	if sh.count < r.shardCap {
		sh.count++
	}
	sh.mu.Unlock()
	r.total.Add(1)
	if r.sink != nil {
		r.sink.Emit(sp)
	}
}

// Total returns the lifetime number of completed spans (nil-safe).
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// LastTrace returns the trace ID of the most recently started root span
// ("" before the first). The flight recorder uses it to name the
// offending cycle when a trigger site has no context of its own.
func (r *Recorder) LastTrace() string {
	if r == nil {
		return ""
	}
	if p := r.lastTrace.Load(); p != nil {
		return *p
	}
	return ""
}

// Last returns up to k of the most recent completed spans, oldest first.
func (r *Recorder) Last(k int) []Span {
	if r == nil || k <= 0 {
		return nil
	}
	all := r.Snapshot()
	if k >= len(all) {
		return all
	}
	return all[len(all)-k:]
}

// Snapshot returns every span currently in the ring, in completion
// order (oldest first), merged across the shards by sequence stamp.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	type stamped struct {
		seq uint64
		sp  Span
	}
	var all []stamped
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for j := 0; j < sh.count; j++ {
			all = append(all, stamped{seq: sh.seqs[j], sp: sh.spans[j]})
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	// The shards jointly retain up to shardCap*ringShards spans — a little
	// more than the configured capacity when it doesn't divide evenly.
	// Clamp to the promised bound, keeping the newest.
	if len(all) > r.capacity {
		all = all[len(all)-r.capacity:]
	}
	out := make([]Span, len(all))
	for i, s := range all {
		out[i] = s.sp
	}
	return out
}

// TraceSpans returns the ring's spans belonging to one trace, oldest
// first (spans evicted from the ring are only in the sink).
func (r *Recorder) TraceSpans(trace string) []Span {
	all := r.Snapshot()
	out := make([]Span, 0, 16)
	for _, sp := range all {
		if sp.Trace == trace {
			out = append(out, sp)
		}
	}
	return out
}

// JSONLSink writes one JSON object per span to w. Writes are serialized;
// the first write error is latched and reported by Err.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w as a span sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(sp)
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MemorySink collects spans in memory, for tests.
type MemorySink struct {
	mu    sync.Mutex
	spans []Span
}

// Emit implements Sink.
func (s *MemorySink) Emit(sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spans = append(s.spans, sp)
}

// Spans returns a copy of everything emitted so far.
func (s *MemorySink) Spans() []Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, len(s.spans))
	copy(out, s.spans)
	return out
}

// ReadSpans parses a span JSONL stream (a Sink file or a flight-recorder
// bundle), returning the spans and any embedded trigger records. Blank
// lines are skipped; a malformed line aborts with an error.
func ReadSpans(r io.Reader) ([]Span, []Trigger, error) {
	dec := json.NewDecoder(r)
	var spans []Span
	var triggers []Trigger
	for {
		var line struct {
			Trigger *Trigger `json:"trigger"`
			Span
		}
		if err := dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) {
				return spans, triggers, nil
			}
			return spans, triggers, err
		}
		if line.Trigger != nil {
			triggers = append(triggers, *line.Trigger)
			continue
		}
		spans = append(spans, line.Span)
	}
}
