package core

import (
	"errors"
	"fmt"
	"time"
)

// This file implements the paper's future-work directions (§8): additional
// OS mechanisms — CPU quotas and real-time threads, both listed as
// available in Lachesis' repository — and runtime policy switching (§4:
// "it allows Lachesis to switch scheduling policies at runtime, with the
// conditions of this switch programmed by the user").

// QuotaController is the optional OS capability behind the quota
// translator (CFS bandwidth control / cpu.max).
type QuotaController interface {
	// SetQuota limits a cgroup to quota CPU time per period; quota <= 0
	// removes the limit.
	SetQuota(cgroupName string, quota, period time.Duration) error
}

// RTController is the optional OS capability behind the real-time
// translator (SCHED_FIFO).
type RTController interface {
	// SetRealtime puts a thread in the RT class at the given priority.
	SetRealtime(tid, prio int) error
	// SetNormal returns a thread to the fair class.
	SetNormal(tid int) error
}

// --- CPU quota translator ---

// QuotaTranslator enforces grouping schedules by CPU bandwidth quotas
// instead of relative shares: each group's priority maps onto a fraction
// of total CPU in [LoFrac, HiFrac]. Unlike shares, quotas are hard limits:
// unused allowance is not redistributed, trading work conservation for
// isolation.
type QuotaTranslator struct {
	os       OSInterface
	quotas   QuotaController
	period   time.Duration
	loFrac   float64
	hiFrac   float64
	totalCPU float64
}

var _ Translator = (*QuotaTranslator)(nil)

// NewQuotaTranslator builds a quota translator. The OS binding must also
// implement QuotaController. totalCPUs scales fractions to machine
// capacity; loFrac/hiFrac bound the per-group allowance (defaults 0.05 and
// 0.95 of one CPU's worth times totalCPUs).
func NewQuotaTranslator(os OSInterface, totalCPUs int, loFrac, hiFrac float64) (*QuotaTranslator, error) {
	qc, ok := os.(QuotaController)
	if !ok {
		return nil, errors.New("core: OS binding does not support CPU quotas")
	}
	if totalCPUs < 1 {
		totalCPUs = 1
	}
	if loFrac <= 0 {
		loFrac = 0.05
	}
	if hiFrac <= loFrac {
		hiFrac = 0.95
	}
	return &QuotaTranslator{
		os:       os,
		quotas:   qc,
		period:   100 * time.Millisecond,
		loFrac:   loFrac,
		hiFrac:   hiFrac,
		totalCPU: float64(totalCPUs),
	}, nil
}

// Name implements Translator.
func (t *QuotaTranslator) Name() string { return "cpu.quota" }

// Apply implements Translator.
func (t *QuotaTranslator) Apply(sched Schedule, entities map[string]Entity) error {
	groups := sched.Groups
	if len(groups) == 0 {
		if len(sched.Single) == 0 {
			return errors.New("core: quota translator needs groups or single priorities")
		}
		groups = perOpGroups(sched.Single)
	}
	prios := make(map[string]float64, len(groups))
	for gid, g := range groups {
		prios[gid] = g.Priority
	}
	// Reuse shares normalization over an integer grid, then map the grid
	// onto quota fractions.
	const grid = 10000
	lo := int(t.loFrac * grid)
	hi := int(t.hiFrac * grid)
	norm := NormalizeToShares(prios, sched.Scale, lo, hi)
	var errs []error
	for _, gid := range sortedKeys(norm) {
		if err := t.os.EnsureCgroup(gid); err != nil {
			errs = append(errs, fmt.Errorf("cgroup %s: %w", gid, err))
			continue
		}
		frac := float64(norm[gid]) / grid * t.totalCPU
		quota := time.Duration(frac * float64(t.period))
		if err := t.quotas.SetQuota(gid, quota, t.period); err != nil {
			errs = append(errs, fmt.Errorf("quota %s: %w", gid, err))
		}
		for _, opName := range groups[gid].Ops {
			ent, ok := entities[opName]
			if !ok || ent.Thread == 0 {
				continue
			}
			if err := t.os.MoveThread(ent.Thread, gid); err != nil {
				errs = append(errs, fmt.Errorf("move %s to %s: %w", opName, gid, err))
			}
		}
	}
	return errors.Join(errs...)
}

// --- real-time translator ---

// RTTranslator lifts the highest-priority operators into the real-time
// scheduling class (SCHED_FIFO) and returns the rest to the fair class.
// TopFraction bounds how much of the operator set may become real-time:
// RT threads preempt everything, so this mechanism must be used sparingly.
type RTTranslator struct {
	os          OSInterface
	rt          RTController
	topFraction float64
}

var _ Translator = (*RTTranslator)(nil)

// NewRTTranslator builds a real-time translator. The OS binding must also
// implement RTController. topFraction defaults to 0.2.
func NewRTTranslator(os OSInterface, topFraction float64) (*RTTranslator, error) {
	rc, ok := os.(RTController)
	if !ok {
		return nil, errors.New("core: OS binding does not support real-time scheduling")
	}
	if topFraction <= 0 || topFraction > 1 {
		topFraction = 0.2
	}
	return &RTTranslator{os: os, rt: rc, topFraction: topFraction}, nil
}

// Name implements Translator.
func (t *RTTranslator) Name() string { return "sched_fifo" }

// Apply implements Translator.
func (t *RTTranslator) Apply(sched Schedule, entities map[string]Entity) error {
	if len(sched.Single) == 0 {
		return errors.New("core: RT translator needs a single-priority schedule")
	}
	// Rank operators by priority; the top fraction becomes RT with
	// priorities spread over [1, 99], the rest returns to the fair class.
	names := sortedKeys(sched.Single)
	n := len(names)
	k := int(float64(n)*t.topFraction + 0.5)
	if k < 1 {
		k = 1
	}
	// Selection by threshold on normalized rank.
	type ranked struct {
		name string
		prio float64
	}
	rs := make([]ranked, 0, n)
	for _, name := range names {
		rs = append(rs, ranked{name, sched.Single[name]})
	}
	// Insertion sort by priority descending (n is small).
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].prio > rs[j-1].prio; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	var errs []error
	for i, r := range rs {
		ent, ok := entities[r.name]
		if !ok || ent.Thread == 0 {
			continue
		}
		if i < k {
			prio := 99 - i
			if prio < 1 {
				prio = 1
			}
			if err := t.rt.SetRealtime(ent.Thread, prio); err != nil {
				errs = append(errs, fmt.Errorf("rt %s: %w", r.name, err))
			}
		} else {
			if err := t.rt.SetNormal(ent.Thread); err != nil {
				errs = append(errs, fmt.Errorf("normal %s: %w", r.name, err))
			}
		}
	}
	return errors.Join(errs...)
}

// --- runtime policy switching ---

// SwitchCondition selects which policy a SwitchedPolicy runs for the
// current period, based on the metric view.
type SwitchCondition func(view *View) int

// SwitchedPolicy runs one of several policies each period, chosen by a
// user-programmed condition (§4). Its metric requirements are the union of
// all candidate policies' requirements, so the provider always has every
// candidate's inputs ready.
type SwitchedPolicy struct {
	policies []Policy
	cond     SwitchCondition
	last     int
	switches int64
}

var _ Policy = (*SwitchedPolicy)(nil)

// NewSwitchedPolicy builds a switched policy. cond returns the index of
// the policy to run (out-of-range values keep the previous selection).
func NewSwitchedPolicy(cond SwitchCondition, policies ...Policy) (*SwitchedPolicy, error) {
	if len(policies) == 0 {
		return nil, errors.New("core: switched policy needs at least one policy")
	}
	if cond == nil {
		return nil, errors.New("core: switched policy needs a condition")
	}
	return &SwitchedPolicy{policies: policies, cond: cond}, nil
}

// Name implements Policy.
func (p *SwitchedPolicy) Name() string {
	name := "switched("
	for i, inner := range p.policies {
		if i > 0 {
			name += ","
		}
		name += inner.Name()
	}
	return name + ")"
}

// Metrics implements Policy.
func (p *SwitchedPolicy) Metrics() []string {
	seen := make(map[string]bool)
	var out []string
	for _, inner := range p.policies {
		for _, m := range inner.Metrics() {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return out
}

// Schedule implements Policy.
func (p *SwitchedPolicy) Schedule(view *View) (Schedule, error) {
	idx := p.cond(view)
	if idx < 0 || idx >= len(p.policies) {
		idx = p.last
	}
	if idx != p.last {
		p.switches++
		p.last = idx
	}
	return p.policies[idx].Schedule(view)
}

// Switches returns how many times the active policy changed.
func (p *SwitchedPolicy) Switches() int64 { return p.switches }

// Active returns the index of the currently selected policy.
func (p *SwitchedPolicy) Active() int { return p.last }
