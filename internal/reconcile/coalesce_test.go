package reconcile

import (
	"testing"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/telemetry"
)

// newCoalescedWorld wires the daemon's full chain over a fake kernel:
// coalescer -> recorder -> caching backend -> kernel, with the reconciler
// repairing through the same coalescer. This is the stack where a stale
// coalescer mirror could swallow a repair — the invalidation path is what
// keeps it honest.
func newCoalescedWorld(t *testing.T) (*world, *core.Coalescer) {
	t.Helper()
	w := &world{kernel: newFakeKernel(), reg: telemetry.NewRegistry()}
	w.cached = newCachedOS(w.kernel)
	state, err := NewDesiredState(nil)
	if err != nil {
		t.Fatal(err)
	}
	w.state = state
	w.trail = core.NewAuditTrail(256, nil)
	ident := func(tid int) uint64 {
		id, err := w.kernel.ThreadIdentity(tid)
		if err != nil {
			return 0
		}
		return id
	}
	co := core.NewCoalescer(RecordOS(w.cached, state, ident, nil), nil)
	w.os = co
	w.rec = New(Config{
		OS:        co,
		Observer:  w.kernel,
		State:     state,
		Audit:     w.trail,
		Telemetry: w.reg,
		Clock:     func() time.Time { return time.Unix(0, 0) },
	})
	return w, co
}

// TestReconcileRepairThroughCoalescer: external interference is repaired
// even though both the coalescer mirror and the backend cache still carry
// the desired value — the reconciler's invalidation marks them dirty so
// the repair write reaches the kernel instead of being "suppressed as a
// no-op". After the repair the mirror is consistent again: an identical
// translator re-apply is swallowed without touching the kernel.
func TestReconcileRepairThroughCoalescer(t *testing.T) {
	w, co := newCoalescedWorld(t)
	w.kernel.spawn(11, 100)
	w.apply(t, 11, -5)
	w.applyGroup(t, "q1", 512, 11)

	// Adversary rewrites kernel state behind the middleware's back. The
	// coalescer mirror and cachedOS both still say -5/512.
	w.kernel.interfereNice(11, 10)
	w.kernel.interfereShares("q1", 2)

	res := w.rec.Reconcile()
	if res.Drifted != 2 || res.Repaired != 2 {
		t.Fatalf("expected 2 drifts repaired, got %+v", res)
	}
	if got := w.kernel.niceOf(11); got != -5 {
		t.Fatalf("repair swallowed by coalescer mirror: kernel nice = %d, want -5", got)
	}
	if got, _ := w.kernel.sharesOf("q1"); got != 512 {
		t.Fatalf("repair swallowed by coalescer mirror: kernel shares = %d, want 512", got)
	}

	// The nice repair invalidated thread 11 wholesale, which conservatively
	// dirtied its placement knob too: the first post-repair apply re-issues
	// exactly that one move to re-verify it, and nothing else.
	writesBefore := w.kernel.writes
	suppBefore := co.Suppressed()
	w.apply(t, 11, -5)
	w.applyGroup(t, "q1", 512, 11)
	if got := w.kernel.writes - writesBefore; got != 1 {
		t.Fatalf("first post-repair apply made %d kernel writes, want 1 (placement re-verify)", got)
	}
	if got := co.Suppressed() - suppBefore; got != 3 {
		t.Fatalf("suppressed %d ops in first post-repair apply, want 3 (nice, ensure, shares)", got)
	}

	// With the mirror fully consistent again, the next identical apply
	// cycle is pure suppression — zero kernel writes.
	writesBefore = w.kernel.writes
	suppBefore = co.Suppressed()
	w.apply(t, 11, -5)
	w.applyGroup(t, "q1", 512, 11)
	if w.kernel.writes != writesBefore {
		t.Fatalf("steady-state re-apply reached the kernel: %d extra writes",
			w.kernel.writes-writesBefore)
	}
	if got := co.Suppressed() - suppBefore; got != 4 {
		t.Fatalf("suppressed %d ops in steady-state re-apply, want 4 (nice, ensure, shares, move)", got)
	}

	// And the converged world stays quiet through the coalescer too.
	res = w.rec.Reconcile()
	if !res.Converged || res.Repaired != 0 {
		t.Fatalf("expected quiet converged pass, got %+v", res)
	}
}

// TestReconcileVanishedThroughCoalescer: a dead thread is forgotten from
// desired state, and the coalescer mirror drops it too, so a reused tid
// is written fresh instead of being suppressed against the dead thread's
// mirrored value.
func TestReconcileVanishedThroughCoalescer(t *testing.T) {
	w, _ := newCoalescedWorld(t)
	w.kernel.spawn(11, 100)
	w.apply(t, 11, -5)

	w.kernel.kill(11)
	res := w.rec.Reconcile()
	if res.ByClass[DriftVanishedEntity] != 1 {
		t.Fatalf("expected 1 vanished drift, got %+v", res)
	}
	if w.state.Len() != 0 {
		t.Fatalf("desired state still holds %d entries for a dead thread", w.state.Len())
	}

	// PID reuse: a new thread appears under the old tid. Its first nice
	// write must reach the kernel even at the dead thread's old value.
	w.kernel.spawn(11, 999)
	writesBefore := w.kernel.writes
	w.apply(t, 11, -5)
	if w.kernel.writes != writesBefore+1 {
		t.Fatalf("reused tid's first write suppressed against dead thread's mirror (writes %d -> %d)",
			writesBefore, w.kernel.writes)
	}
	if got := w.kernel.niceOf(11); got != -5 {
		t.Fatalf("kernel nice = %d, want -5", got)
	}
}

// TestCoalescerSeedRoundTrip: the warm-restart path — desired state
// persisted by a previous process seeds a fresh coalescer, and after the
// reconciler converges the kernel onto the mirror, the first decision
// cycle's identical writes are all suppressed.
func TestCoalescerSeedRoundTrip(t *testing.T) {
	w, _ := newCoalescedWorld(t)
	w.kernel.spawn(11, 100)
	w.apply(t, 11, -5)
	w.applyGroup(t, "q1", 512, 11)

	// "Restart": new coalescer seeded from the surviving desired state,
	// over a kernel that still carries the old regime.
	seed := w.state.CoalescerSeed()
	inner := RecordOS(newCachedOS(w.kernel), w.state, func(int) uint64 { return 100 }, nil)
	co2 := core.NewCoalescer(inner, seed)
	writesBefore := w.kernel.writes
	if err := co2.SetNice(11, -5); err != nil {
		t.Fatal(err)
	}
	if err := co2.EnsureCgroup("q1"); err != nil {
		t.Fatal(err)
	}
	if err := co2.SetShares("q1", 512); err != nil {
		t.Fatal(err)
	}
	if err := co2.MoveThread(11, "q1"); err != nil {
		t.Fatal(err)
	}
	if w.kernel.writes != writesBefore {
		t.Fatalf("seeded coalescer re-issued %d writes after warm restart", w.kernel.writes-writesBefore)
	}
	if co2.Suppressed() != 4 {
		t.Fatalf("Suppressed() = %d, want 4", co2.Suppressed())
	}
}
