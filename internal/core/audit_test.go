package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestAuditTrailRing(t *testing.T) {
	trail := NewAuditTrail(3, nil)
	for i := 1; i <= 5; i++ {
		trail.Record(AuditEvent{Kind: AuditKindNice, Thread: i})
	}
	if got := trail.Total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	last := trail.Last(0)
	if len(last) != 3 {
		t.Fatalf("retained %d, want 3 (capacity)", len(last))
	}
	// Oldest first, and only the newest capacity events survive.
	for i, want := range []int{3, 4, 5} {
		if last[i].Thread != want || last[i].Seq != int64(want) {
			t.Errorf("last[%d] = thread %d seq %d, want %d", i, last[i].Thread, last[i].Seq, want)
		}
	}
	if got := trail.Last(2); len(got) != 2 || got[1].Thread != 5 {
		t.Fatalf("Last(2) = %+v, want threads 4,5", got)
	}
	if got := trail.Last(99); len(got) != 3 {
		t.Fatalf("Last(99) = %d events, want 3", len(got))
	}
}

func TestAuditOSRecordsTransitions(t *testing.T) {
	sink := &MemorySink{}
	trail := NewAuditTrail(0, sink)
	fos := newFakeOS()
	aos := AuditOS(fos, trail)

	// First touch: old unknown. Change: old -> new. Redundant: no event.
	if err := aos.SetNice(11, -5); err != nil {
		t.Fatal(err)
	}
	if err := aos.SetNice(11, -5); err != nil {
		t.Fatal(err)
	}
	if err := aos.SetNice(11, 10); err != nil {
		t.Fatal(err)
	}
	if err := aos.EnsureCgroup("q1"); err != nil {
		t.Fatal(err)
	}
	if err := aos.SetShares("q1", 2048); err != nil {
		t.Fatal(err)
	}
	if err := aos.SetShares("q1", 2048); err != nil {
		t.Fatal(err)
	}
	if err := aos.MoveThread(11, "q1"); err != nil {
		t.Fatal(err)
	}

	events := sink.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4 (nice, nice, shares, move):\n%+v", len(events), events)
	}
	first := events[0]
	if first.Kind != AuditKindNice || first.OldNice != nil || *first.NewNice != -5 || first.Outcome != AuditOutcomeOK {
		t.Errorf("first nice event wrong: %+v", first)
	}
	change := events[1]
	if change.OldNice == nil || *change.OldNice != -5 || *change.NewNice != 10 {
		t.Errorf("nice change should carry old -> new: %+v", change)
	}
	shares := events[2]
	if shares.Kind != AuditKindShares || shares.Cgroup != "q1" || *shares.NewShares != 2048 {
		t.Errorf("shares event wrong: %+v", shares)
	}
	move := events[3]
	if move.Kind != AuditKindMove || move.Thread != 11 || move.Cgroup != "q1" {
		t.Errorf("move event wrong: %+v", move)
	}
	// The fake OS really holds the final state the audit claims.
	if fos.nices[11] != 10 || fos.cgroups["q1"] != 2048 || fos.placed[11] != "q1" {
		t.Errorf("fake OS state diverged from audit: %+v", fos)
	}
}

func TestAuditOSCapabilityForwarding(t *testing.T) {
	trail := NewAuditTrail(0, nil)
	aos := AuditOS(newFakeOS(), trail) // fakeOS has no remover/restorer
	if r, ok := aos.(CgroupRemover); !ok {
		t.Fatal("wrapper should expose CgroupRemover")
	} else if err := r.RemoveCgroup("gone"); err != nil {
		t.Fatalf("remove on incapable backend should no-op, got %v", err)
	}
	if r, ok := aos.(PlacementRestorer); !ok {
		t.Fatal("wrapper should expose PlacementRestorer")
	} else if err := r.RestoreThread(1); err != nil {
		t.Fatalf("restore on incapable backend should no-op, got %v", err)
	}
	if trail.Total() != 0 {
		t.Errorf("no-op capability calls should not be audited, got %d events", trail.Total())
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	trail := NewAuditTrail(0, sink)
	trail.Record(AuditEvent{At: 2 * time.Second, Kind: AuditKindNice, Thread: 7, NewNice: intp(-3),
		Policy: "qs", Translator: "nice", Entity: "q.op.0", Outcome: AuditOutcomeOK})
	trail.Record(AuditEvent{At: 3 * time.Second, Kind: AuditKindBreaker, Policy: "qs", Outcome: "open until 5s: boom"})
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	sc := bufio.NewScanner(&buf)
	var lines []AuditEvent
	for sc.Scan() {
		var e AuditEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if lines[0].Seq != 1 || lines[0].Thread != 7 || *lines[0].NewNice != -3 || lines[0].At != 2*time.Second {
		t.Errorf("bad first line: %+v", lines[0])
	}
	if lines[1].Kind != AuditKindBreaker || !strings.Contains(lines[1].Outcome, "open") {
		t.Errorf("bad second line: %+v", lines[1])
	}
}

// TestMiddlewareAuditAttribution: control-op events recorded during a
// binding's apply inherit the step time, binding names, and the entity the
// thread belongs to; the apply itself is summarized.
func TestMiddlewareAuditAttribution(t *testing.T) {
	sink := &MemorySink{}
	trail := NewAuditTrail(0, sink)
	d := upDriver("eng", 40)
	mw := NewMiddleware(nil)
	mw.SetAudit(trail)
	if err := mw.Bind(Binding{
		Policy:     NewQSPolicy(),
		Translator: NewNiceTranslator(AuditOS(newFakeOS(), trail)),
		Drivers:    []Driver{d},
		Period:     time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Step(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	events := sink.Events()
	var niceEvents, applyEvents int
	for _, e := range events {
		switch e.Kind {
		case AuditKindNice:
			niceEvents++
			if e.At != 5*time.Second {
				t.Errorf("nice event not stamped with step time: %+v", e)
			}
			if e.Policy != "qs" || e.Translator != "nice" {
				t.Errorf("nice event missing binding context: %+v", e)
			}
			if e.Entity != "a" && e.Entity != "b" {
				t.Errorf("nice event missing entity attribution: %+v", e)
			}
		case AuditKindApply:
			applyEvents++
			if e.Outcome != AuditOutcomeOK || e.Entities != 2 {
				t.Errorf("apply event wrong: %+v", e)
			}
		}
	}
	if niceEvents != 2 {
		t.Errorf("nice events = %d, want 2 (two threads scheduled)", niceEvents)
	}
	if applyEvents != 1 {
		t.Errorf("apply events = %d, want 1", applyEvents)
	}
}

// TestMiddlewareAuditBreakerLifecycle: opening, failed probes, and closing
// of a breaker all leave audit events.
func TestMiddlewareAuditBreakerLifecycle(t *testing.T) {
	sink := &MemorySink{}
	trail := NewAuditTrail(0, sink)
	d := upDriver("flaky", 1)
	mw := NewMiddleware(nil)
	mw.SetAudit(trail)
	mw.SetResilience(Resilience{
		FailureThreshold: 2,
		BaseBackoff:      time.Second,
		StalenessBound:   time.Nanosecond,
	})
	if err := mw.Bind(Binding{
		Policy: NewQSPolicy(), Translator: NewNiceTranslator(newFakeOS()),
		Drivers: []Driver{d}, Period: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	d.down = true
	mw.Step(0)               // failure 1
	mw.Step(1 * time.Second) // failure 2 -> breaker opens
	mw.Step(2 * time.Second) // probe fails -> reopen
	d.down = false
	mw.Step(4 * time.Second) // probe succeeds -> closed
	var outcomes []string
	for _, e := range sink.Events() {
		if e.Kind == AuditKindBreaker {
			outcomes = append(outcomes, strings.SplitN(e.Outcome, " ", 2)[0])
		}
	}
	want := []string{"open", "reopen", "closed"}
	if len(outcomes) != len(want) {
		t.Fatalf("breaker outcomes = %v, want %v", outcomes, want)
	}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("breaker outcomes = %v, want %v", outcomes, want)
		}
	}
}
