package spe

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"lachesis/internal/simos"
)

// route delivers an operator's output stream to the replicas of one
// downstream physical operator (fan-out across routes, partitioning across
// replicas within a route).
type route struct {
	targets []*PhysicalOp
	keyBy   bool
	rr      int
}

func (r *route) pick(t Tuple) *PhysicalOp {
	if len(r.targets) == 1 {
		return r.targets[0]
	}
	if r.keyBy {
		return r.targets[int(t.Key%uint64(len(r.targets)))]
	}
	p := r.targets[r.rr]
	r.rr = (r.rr + 1) % len(r.targets)
	return p
}

// pendingEmit is an output tuple that could not be delivered yet because
// the destination queue was full (backpressure).
type pendingEmit struct {
	target *PhysicalOp
	tuple  Tuple
}

// PhysicalOp is one physical operator: a chain of one or more fused logical
// operators, replicated by fission, executing on a dedicated kernel thread
// (or a worker pool). It is the unit Lachesis schedules.
type PhysicalOp struct {
	engine     *Engine
	deployment *Deployment
	name       string
	chain      []*LogicalOp
	process    []ProcessFunc // per chain element (nil = synthetic)
	credit     []float64     // synthetic selectivity credit per element
	replica    int
	kind       OpKind

	in     *queue           // nil for ingress heads
	waitQ  *simos.WaitQueue // waited on when the input queue is empty
	spaceQ *simos.WaitQueue // waited on by upstreams when in is full
	outs   []*route

	source   Source // ingress heads only
	consumed int64  // ingress: tuples pulled from source

	rng       *rand.Rand
	working   bool
	current   Tuple
	remaining time.Duration

	pendingOut []pendingEmit
	// emitScratch reuses the per-tuple chain output buffers.
	emitScratch [][]Tuple

	thread simos.ThreadID
	// pooled marks operators executed by the worker pool rather than a
	// dedicated thread (UL-SS mode; ingress operators always keep their
	// own thread, as Storm spouts do under EdgeWise).
	pooled bool
	// stopped marks a torn-down operator: it never becomes ready again and
	// its dedicated thread exits at its next dispatch.
	stopped bool
	stats   opStats
}

// Name returns the physical operator's unique name (query.chain.replica).
func (p *PhysicalOp) Name() string { return p.name }

// Kind returns the operator's role.
func (p *PhysicalOp) Kind() OpKind { return p.kind }

// Replica returns the fission replica index.
func (p *PhysicalOp) Replica() int { return p.replica }

// ThreadID returns the kernel thread running this operator, or 0 in
// worker-pool mode.
func (p *PhysicalOp) ThreadID() simos.ThreadID { return p.thread }

// Deployment returns the deployment this operator belongs to.
func (p *PhysicalOp) Deployment() *Deployment { return p.deployment }

// LogicalNames returns the names of the fused logical operators.
func (p *PhysicalOp) LogicalNames() []string {
	out := make([]string, len(p.chain))
	for i, l := range p.chain {
		out[i] = l.Name
	}
	return out
}

// QueueLen returns the input queue length. For ingress operators it is the
// backlog of source tuples not yet ingested (the paper's source queue).
func (p *PhysicalOp) QueueLen(now time.Duration) int {
	if p.kind == KindIngress {
		backlog := p.source.Arrived(now) - p.consumed
		if backlog < 0 {
			backlog = 0
		}
		const maxInt = int(^uint(0) >> 1)
		if backlog > int64(maxInt) {
			return maxInt
		}
		return int(backlog)
	}
	return p.in.len()
}

// OldestWait returns how long the head input tuple has been waiting.
func (p *PhysicalOp) OldestWait(now time.Duration) time.Duration {
	if p.kind == KindIngress {
		if p.source.Arrived(now) <= p.consumed {
			return 0
		}
		d := now - p.source.ArrivalTime(p.consumed)
		if d < 0 {
			return 0
		}
		return d
	}
	head, ok := p.in.peek()
	if !ok {
		return 0
	}
	d := now - head.IngressTime
	if d < 0 {
		return 0
	}
	return d
}

// Ready reports whether the operator has work it could do right now.
func (p *PhysicalOp) Ready(now time.Duration) bool {
	if p.stopped {
		return false
	}
	if p.working || len(p.pendingOut) > 0 {
		return true
	}
	return p.QueueLen(now) > 0
}

// CostHint returns the configured average per-input-tuple CPU cost of the
// whole chain.
func (p *PhysicalOp) CostHint() time.Duration { return chainCost(p.chain) }

// SelectivityHint returns the configured selectivity of the whole chain.
func (p *PhysicalOp) SelectivityHint() float64 { return chainSelectivity(p.chain) }

// DownstreamOps returns the physical operators fed by this one. It is
// read-only topology information, available to user-level schedulers that
// are (unlike Lachesis) coupled to the engine.
func (p *PhysicalOp) DownstreamOps() []*PhysicalOp {
	var out []*PhysicalOp
	for _, r := range p.outs {
		out = append(out, r.targets...)
	}
	return out
}

// DownstreamNames returns the names of the physical operators fed by this
// one.
func (p *PhysicalOp) DownstreamNames() []string {
	var out []string
	for _, r := range p.outs {
		for _, t := range r.targets {
			out = append(out, t.name)
		}
	}
	return out
}

// Snapshot captures the operator's public metrics at virtual time now.
func (p *PhysicalOp) Snapshot(now time.Duration) OpSnapshot {
	return OpSnapshot{
		Name:            p.name,
		Query:           p.deployment.Query.Name,
		Logical:         p.LogicalNames(),
		Replica:         p.replica,
		Kind:            p.kind,
		Thread:          int(p.thread),
		QueueLen:        p.QueueLen(now),
		OldestWait:      p.OldestWait(now),
		InCount:         p.stats.inCount,
		OutCount:        p.stats.outCount,
		Ingested:        p.stats.ingested,
		EgressCount:     p.stats.egressCount,
		Busy:            p.stats.busy,
		BlockEvents:     p.stats.blockEvents,
		BlockTime:       p.stats.blockTime,
		CostHint:        p.CostHint(),
		SelectivityHint: p.SelectivityHint(),
		MeanProcLatency: p.stats.proc.mean(),
		MeanE2ELatency:  p.stats.e2e.mean(),
		Downstream:      p.DownstreamNames(),
	}
}

// chainCost returns the expected CPU cost per chain input tuple:
// c1 + s1*c2 + s1*s2*c3 + ...
func chainCost(chain []*LogicalOp) time.Duration {
	cost := 0.0
	scale := 1.0
	for _, op := range chain {
		cost += scale * float64(op.Cost)
		scale *= op.Selectivity
	}
	return time.Duration(cost)
}

// chainSelectivity returns the product of the chain's selectivities.
func chainSelectivity(chain []*LogicalOp) float64 {
	s := 1.0
	for _, op := range chain {
		if op.Kind == KindEgress {
			continue
		}
		s *= op.Selectivity
	}
	return s
}

// Deployment is one query deployed on an engine.
type Deployment struct {
	Query  *LogicalQuery
	engine *Engine
	ops    []*PhysicalOp
	// physByLogical maps each logical operator name to the physical
	// operators executing it (>=1 after fission, shared after fusion).
	physByLogical map[string][]*PhysicalOp
}

// Ops returns all physical operators of the deployment.
func (d *Deployment) Ops() []*PhysicalOp {
	out := make([]*PhysicalOp, len(d.ops))
	copy(out, d.ops)
	return out
}

// PhysicalFor returns the physical operators executing a logical operator.
func (d *Deployment) PhysicalFor(logicalName string) []*PhysicalOp {
	out := make([]*PhysicalOp, len(d.physByLogical[logicalName]))
	copy(out, d.physByLogical[logicalName])
	return out
}

// Ingresses returns the ingress physical operators.
func (d *Deployment) Ingresses() []*PhysicalOp {
	var out []*PhysicalOp
	for _, p := range d.ops {
		if p.kind == KindIngress {
			out = append(out, p)
		}
	}
	return out
}

// Egresses returns the physical operators whose chain ends at an egress.
func (d *Deployment) Egresses() []*PhysicalOp {
	var out []*PhysicalOp
	for _, p := range d.ops {
		if p.chain[len(p.chain)-1].Kind == KindEgress {
			out = append(out, p)
		}
	}
	return out
}

// Ingested returns the total tuples ingested across all ingress operators.
func (d *Deployment) Ingested() int64 {
	var sum int64
	for _, p := range d.ops {
		sum += p.stats.ingested
	}
	return sum
}

// EgressCount returns the total tuples delivered across all egresses.
func (d *Deployment) EgressCount() int64 {
	var sum int64
	for _, p := range d.ops {
		sum += p.stats.egressCount
	}
	return sum
}

// LatencySnapshot aggregates the egress latency recorders.
type LatencySnapshot struct {
	Count       int64
	MeanProc    time.Duration
	MeanE2E     time.Duration
	ProcSamples []float64 // seconds
	E2ESamples  []float64 // seconds
}

// Latencies returns the deployment's aggregated egress latency statistics
// since the last ResetStats.
func (d *Deployment) Latencies() LatencySnapshot {
	var out LatencySnapshot
	var sumProc, sumE2E time.Duration
	for _, p := range d.Egresses() {
		out.Count += p.stats.proc.count
		sumProc += p.stats.proc.sum
		sumE2E += p.stats.e2e.sum
		out.ProcSamples = append(out.ProcSamples, p.stats.proc.samples()...)
		out.E2ESamples = append(out.E2ESamples, p.stats.e2e.samples()...)
	}
	if out.Count > 0 {
		out.MeanProc = sumProc / time.Duration(out.Count)
		out.MeanE2E = sumE2E / time.Duration(out.Count)
	}
	return out
}

// ResetStats clears the latency recorders (called at the end of warmup).
// Monotonic counters are unaffected.
func (d *Deployment) ResetStats() {
	for _, p := range d.ops {
		p.stats.proc.reset()
		p.stats.e2e.reset()
	}
}

// buildPhysical converts the logical DAG into physical operators, applying
// Flink-style chaining (fusion) when enabled and fission per Parallelism.
func (e *Engine) buildPhysical(d *Deployment, src Source) error {
	q := d.Query
	chains, err := buildChains(q, e.cfg.Chaining)
	if err != nil {
		return err
	}

	// Create physical replicas for every chain.
	headToPhys := make(map[string][]*PhysicalOp) // chain head logical name -> replicas
	for _, chain := range chains {
		par := chain[0].Parallelism
		name := chainName(q.Name, chain)
		for rep := 0; rep < par; rep++ {
			p := &PhysicalOp{
				engine:     e,
				deployment: d,
				name:       name + "." + strconv.Itoa(rep),
				chain:      chain,
				credit:     make([]float64, len(chain)),
				replica:    rep,
				rng:        rand.New(rand.NewSource(e.cfg.Seed + int64(len(d.ops))*7919 + int64(rep))),
			}
			for _, l := range chain {
				proc := l.Process
				if l.NewProcess != nil {
					proc = l.NewProcess(rep)
				}
				p.process = append(p.process, proc)
			}
			switch {
			case chain[0].Kind == KindIngress:
				p.kind = KindIngress
				p.source = src
			default:
				p.kind = chain[len(chain)-1].Kind
				p.in = newQueue(p.name+".in", e.queueCapacity())
			}
			p.waitQ = e.kernel.NewWaitQueue(p.name + ".data")
			p.spaceQ = e.kernel.NewWaitQueue(p.name + ".space")
			d.ops = append(d.ops, p)
			headToPhys[chain[0].Name] = append(headToPhys[chain[0].Name], p)
			for _, l := range chain {
				d.physByLogical[l.Name] = append(d.physByLogical[l.Name], p)
			}
		}
	}

	// Wire routes: the last logical op of each chain feeds the chains
	// headed by its downstream logical operators.
	for _, chain := range chains {
		last := chain[len(chain)-1]
		for _, dsName := range q.Downstream(last.Name) {
			targets, ok := headToPhys[dsName]
			if !ok {
				// dsName was fused into this chain; skip internal edges.
				continue
			}
			r := &route{targets: targets, keyBy: q.Op(dsName).KeyBy}
			for _, p := range headToPhys[chain[0].Name] {
				p.outs = append(p.outs, r)
			}
		}
	}

	seed := e.cfg.Seed
	for i, p := range d.ops {
		p.stats.proc = newLatencyRec(seed + int64(i)*31 + 1)
		p.stats.e2e = newLatencyRec(seed + int64(i)*31 + 2)
	}
	return nil
}

// buildChains groups logical operators into fusion chains. Without chaining
// every operator is its own chain. With chaining, maximal linear segments
// with matching parallelism and no key-by boundary are fused, as Flink
// does.
func buildChains(q *LogicalQuery, chaining bool) ([][]*LogicalOp, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ops := q.Ops()
	if !chaining {
		out := make([][]*LogicalOp, len(ops))
		for i, op := range ops {
			out[i] = []*LogicalOp{op}
		}
		return out, nil
	}
	inChain := make(map[string]bool, len(ops))
	var out [][]*LogicalOp
	for _, op := range ops {
		if inChain[op.Name] {
			continue
		}
		// Only start a chain at an operator that cannot be fused into a
		// predecessor.
		if up := q.Upstream(op.Name); len(up) == 1 && canFuse(q, q.Op(up[0]), op) && !inChain[up[0]] {
			// The chain will start upstream; defer until we reach its head.
			// (ops are in insertion order, not necessarily topological, so
			// walk to the head explicitly.)
			head := op
			for {
				up := q.Upstream(head.Name)
				if len(up) != 1 || !canFuse(q, q.Op(up[0]), head) {
					break
				}
				head = q.Op(up[0])
			}
			if inChain[head.Name] {
				continue
			}
			op = head
		}
		chain := []*LogicalOp{op}
		inChain[op.Name] = true
		cur := op
		for {
			ds := q.Downstream(cur.Name)
			if len(ds) != 1 {
				break
			}
			next := q.Op(ds[0])
			if inChain[next.Name] || !canFuse(q, cur, next) {
				break
			}
			chain = append(chain, next)
			inChain[next.Name] = true
			cur = next
		}
		out = append(out, chain)
	}
	return out, nil
}

// canFuse reports whether downstream can be fused onto upstream.
func canFuse(q *LogicalQuery, up, down *LogicalOp) bool {
	return len(q.Downstream(up.Name)) == 1 &&
		len(q.Upstream(down.Name)) == 1 &&
		up.Parallelism == down.Parallelism &&
		!down.KeyBy
}

func chainName(query string, chain []*LogicalOp) string {
	if len(chain) == 1 {
		return query + "." + chain[0].Name
	}
	return fmt.Sprintf("%s.%s-%s", query, chain[0].Name, chain[len(chain)-1].Name)
}
