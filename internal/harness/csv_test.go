package harness

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sweepForCSV(t *testing.T) []Series {
	t.Helper()
	series, err := Sweep(
		[]Setup{tinySetup(SchedOS), tinySetup(SchedLachesisQS)},
		[]float64{300, 600}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return series
}

func TestWriteCSV(t *testing.T) {
	series := sweepForCSV(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 rates x 2 schedulers.
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if rows[0][0] != "rate" || rows[0][2] != "throughput_tps" {
		t.Errorf("header = %v", rows[0])
	}
	seen := map[string]bool{}
	for _, r := range rows[1:] {
		seen[r[0]+"/"+r[1]] = true
	}
	for _, want := range []string{"300/os", "300/lachesis-qs", "600/os", "600/lachesis-qs"} {
		if !seen[want] {
			t.Errorf("missing row %s", want)
		}
	}
}

func TestWriteLatencySamplesCSV(t *testing.T) {
	series := sweepForCSV(t)
	var buf bytes.Buffer
	if err := WriteLatencySamplesCSV(&buf, series, 600); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines < 100 {
		t.Errorf("sample rows = %d, want many", lines)
	}
	if !strings.HasPrefix(buf.String(), "scheduler,latency_s") {
		t.Errorf("header wrong: %q", buf.String()[:40])
	}
}

func TestMaybeCSVWritesFile(t *testing.T) {
	series := sweepForCSV(t)
	dir := t.TempDir()
	sc := Scale{CSVDir: dir}
	if err := maybeCSV(sc, "figX", series); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figX.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "rate,scheduler") {
		t.Errorf("csv content = %q", string(data)[:40])
	}
	// Disabled when no directory configured.
	if err := maybeCSV(Scale{}, "figY", series); err != nil {
		t.Fatal(err)
	}
}
