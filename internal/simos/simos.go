// Package simos implements a deterministic, discrete-event simulation of a
// Linux-like node: kernel threads scheduled by a CFS-style fair scheduler
// with nice values and a hierarchical cgroup CPU controller (cpu.shares).
//
// It is the substrate that replaces the physical Odroid/Xeon machines of the
// Lachesis paper. The scheduling mechanisms that Lachesis manipulates are
// reproduced faithfully:
//
//   - Per-thread nice values in [-20, 19] with the CFS weight law
//     w(n) = 1024 / 1.25^n, so the CPU-share ratio of two threads is
//     1.25^(n2-n1), exactly as described in §2 of the paper.
//   - Hierarchical cgroups whose cpu.shares weight a fair-share tree;
//     nice values only compete within their own cgroup.
//   - vruntime-ordered picking with sleeper fairness, preemption at
//     timeslice granularity, and multiple CPUs.
//
// The whole node runs single-threaded on a virtual clock, so simulations are
// reproducible bit-for-bit and virtual hours complete in real seconds.
package simos

import (
	"fmt"
	"math"
	"time"
)

// Nice bounds, as on Linux.
const (
	NiceMin     = -20
	NiceMax     = 19
	NiceDefault = 0
)

// Shares bounds for the cgroup CPU controller (cgroup v1 cpu.shares).
const (
	SharesMin     = 2
	SharesMax     = 262144
	SharesDefault = 1024
)

// weightNice0 is the CFS weight of a nice-0 thread.
const weightNice0 = 1024.0

// NiceWeight returns the CFS load weight for a nice value: 1024 / 1.25^n.
// Values outside [NiceMin, NiceMax] are clamped.
func NiceWeight(nice int) float64 {
	n := ClampNice(nice)
	return weightNice0 / math.Pow(1.25, float64(n))
}

// ClampNice clamps n to the valid nice range.
func ClampNice(n int) int {
	if n < NiceMin {
		return NiceMin
	}
	if n > NiceMax {
		return NiceMax
	}
	return n
}

// ClampShares clamps s to the valid cpu.shares range.
func ClampShares(s int) int {
	if s < SharesMin {
		return SharesMin
	}
	if s > SharesMax {
		return SharesMax
	}
	return s
}

// ThreadID identifies a kernel thread. IDs start at 1.
type ThreadID int

// CgroupID identifies a cgroup. The root cgroup is RootCgroup.
type CgroupID int

// RootCgroup is the ID of the root of the cgroup hierarchy.
const RootCgroup CgroupID = 1

// Action tells the kernel what a thread does at the end of its timeslice.
type Action int

const (
	// ActionYield keeps the thread runnable; it will compete for the CPU
	// again based on its vruntime.
	ActionYield Action = iota + 1
	// ActionSleep blocks the thread until Decision.WakeAt.
	ActionSleep
	// ActionWait blocks the thread on Decision.WaitOn until woken.
	ActionWait
	// ActionExit terminates the thread.
	ActionExit
)

// Decision is a thread's report of what it did with a granted timeslice.
type Decision struct {
	// Used is the virtual CPU time consumed, in (0, granted] for
	// ActionYield and [0, granted] otherwise.
	Used time.Duration
	// Action is the thread's next disposition.
	Action Action
	// WakeAt is the absolute virtual time to wake at (ActionSleep).
	WakeAt time.Duration
	// WaitOn is the wait queue to block on (ActionWait).
	WaitOn *WaitQueue
	// WaitUnless, if set, is re-checked when the wait is applied (at the
	// end of the timeslice): if it returns true the thread stays runnable
	// instead of blocking. This closes the classic lost-wakeup race where
	// the condition becomes true between the thread's decision to wait and
	// the wait taking effect.
	WaitUnless func(now time.Duration) bool
}

// Runner is the behaviour of a thread. The kernel grants the thread CPU in
// timeslices; Run must simulate up to granted virtual CPU time and report
// what happened. Run is always called from the single simulation goroutine.
type Runner interface {
	Run(ctx *RunContext, granted time.Duration) Decision
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx *RunContext, granted time.Duration) Decision

// Run implements Runner.
func (f RunnerFunc) Run(ctx *RunContext, granted time.Duration) Decision {
	return f(ctx, granted)
}

// RunContext is passed to Runner.Run. It exposes the virtual time and lets
// the runner request wake-ups of threads blocked on wait queues. Wakes take
// effect when the timeslice ends.
type RunContext struct {
	kernel *Kernel
	now    time.Duration
	wakes  []*WaitQueue
}

// Now returns the virtual time at the start of the timeslice.
func (c *RunContext) Now() time.Duration { return c.now }

// Wake requests that all threads blocked on wq become runnable when the
// current timeslice ends. Waking an empty queue is a no-op.
func (c *RunContext) Wake(wq *WaitQueue) {
	if wq == nil {
		return
	}
	c.wakes = append(c.wakes, wq)
}

// WaitQueue is a set of threads blocked until woken, analogous to a kernel
// wait queue. Create with Kernel.NewWaitQueue.
type WaitQueue struct {
	name    string
	waiters []*thread
}

// Name returns the queue's diagnostic name.
func (wq *WaitQueue) Name() string { return wq.name }

// Len returns the number of blocked threads.
func (wq *WaitQueue) Len() int { return len(wq.waiters) }

// NotFoundError reports an unknown thread or cgroup ID.
type NotFoundError struct {
	Kind string // "thread" or "cgroup"
	ID   int
}

// Error implements error.
func (e *NotFoundError) Error() string {
	return fmt.Sprintf("simos: %s %d not found", e.Kind, e.ID)
}
