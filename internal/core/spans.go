package core

import (
	"time"

	"lachesis/internal/span"
)

// SetSpans attaches a causal-trace recorder to the middleware. Every
// subsequent Step opens a "cycle" root span with "fetch" children per
// driver and a "binding" child per due binding (itself parenting
// "schedule", "apply", "guard", and "flush" spans), so a slow cycle can
// be attributed phase by phase. nil detaches tracing; instrumented paths
// then cost one pointer test.
func (m *Middleware) SetSpans(rec *span.Recorder) { m.spans = rec }

// Spans returns the attached trace recorder (nil when tracing is off).
func (m *Middleware) Spans() *span.Recorder { return m.spans }

// DefaultSpanFloor is the slow-span floor production deployments use: a
// healthy sub-millisecond schedule/apply/guard/flush phase is noise, and
// emitting ~4 leaf spans per binding per cycle is what pushes tracing
// overhead past its budget at hundreds of bindings. The floor sits above
// routine timer jitter (a 150µs modeled fetch oversleeps past 1ms on a
// loaded host) and far below a cycle period, so what emits is what
// genuinely shaped the cycle. Slow or failed phases — the ones a trace
// is consulted for — always emit.
const DefaultSpanFloor = 2 * time.Millisecond

// SetSpanFloor sets the slow-span floor for per-binding leaf phase
// spans. Zero (the default) emits every phase span, which tests and
// deep-dive debugging want; daemons pass DefaultSpanFloor.
func (m *Middleware) SetSpanFloor(d time.Duration) { m.spanFloor = d }

// DefaultSpanBudget is the per-cycle cap on non-error spans production
// deployments use. A degraded cycle pushes every fetch and phase over
// the slow-span floor simultaneously; the budget keeps the trace of such
// a cycle rich (hundreds of spans) while bounding what tracing can cost
// at the exact moment the host is struggling. Failed operations bypass
// the budget — errors are rare and are what the trace is for.
const DefaultSpanBudget = 512

// SetSpanBudget caps the number of non-error spans one cycle may emit.
// Zero (the default) is unlimited; daemons pass DefaultSpanBudget. When
// a cycle overruns its budget the cycle root span carries a
// "spans_dropped" attribute with the overflow count.
func (m *Middleware) SetSpanBudget(n int) { m.spanBudget = n }

// allowSpan charges one non-error span against the cycle's budget.
func (m *Middleware) allowSpan() bool {
	return m.spanBudget <= 0 || m.cycleSpans.Add(1) <= int64(m.spanBudget)
}

// emitPhase records a leaf phase span under the binding span when the
// phase failed or met the slow-span floor, reporting whether it did.
// The healthy fast path costs a compare — no allocation, no clock read
// beyond the one the caller already made for stats. The binding span's
// identity (*bctx) is minted lazily on the first phase that emits, so a
// fully-healthy binding never allocates an ID it won't use.
func (m *Middleware) emitPhase(bctx *span.Context, now time.Duration, name string, wall time.Duration, err error) bool {
	if m.spans == nil || (err == nil && wall < m.spanFloor) {
		return false
	}
	if err == nil && !m.allowSpan() {
		return false
	}
	if !bctx.Valid() {
		*bctx = m.spans.ChildContext(m.cycleCtx)
	}
	m.spans.Emit(*bctx, now, name, wall, err)
	return true
}

// emitBinding closes a binding's span: it records only when the binding
// failed, crossed the slow-span floor, or any of its phase children
// emitted — an emitted child must never dangle from a suppressed parent.
// bctx is the identity emitPhase minted (zero when no child emitted; a
// fresh one is minted here if the binding itself warrants recording).
func (m *Middleware) emitBinding(bctx span.Context, now time.Duration, label string, wall time.Duration, err error, childEmitted bool) {
	if m.spans == nil {
		return
	}
	if err == nil && !childEmitted && wall < m.spanFloor {
		return
	}
	// A binding with an emitted child must record regardless of budget —
	// the child must not dangle — so only the healthy-slow case is charged.
	if err == nil && !childEmitted && !m.allowSpan() {
		return
	}
	if !bctx.Valid() {
		bctx = m.spans.ChildContext(m.cycleCtx)
	}
	if !bctx.Valid() {
		return
	}
	sp := span.Span{
		Trace: bctx.Trace, ID: bctx.Span, Parent: m.cycleCtx.Span,
		Name: "binding", At: now, Wall: wall,
		Attrs: span.Attrs{{K: "binding", V: label}},
	}
	if err != nil {
		sp.Err = err.Error()
	}
	m.spans.EmitSpan(sp)
}

// tracedFetch runs one driver's provider update, timing it for stats
// bookkeeping, and emits a "fetch" child span of the current cycle when
// the fetch failed or crossed the slow-span floor.
func (m *Middleware) tracedFetch(now time.Duration, d Driver) fetchOut {
	t0 := m.nowFn()
	vals, err := m.fetchOne(now, d)
	out := fetchOut{vals: vals, err: err, took: m.nowFn().Sub(t0)}
	if m.spans != nil && (err != nil || (out.took >= m.spanFloor && m.allowSpan())) {
		fctx := m.spans.ChildContext(m.cycleCtx)
		sp := span.Span{
			Trace: fctx.Trace, ID: fctx.Span, Parent: m.cycleCtx.Span,
			Name: "fetch", At: now, Wall: out.took,
			Attrs: span.Attrs{{K: "driver", V: d.Name()}},
		}
		if err != nil {
			sp.Err = err.Error()
		}
		m.spans.EmitSpan(sp)
	}
	return out
}
