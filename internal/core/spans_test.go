package core

import (
	"testing"
	"time"

	"lachesis/internal/span"
)

// TestStepEmitsCycleSpanTree: with a recorder attached, one Step yields a
// "cycle" root whose children are the driver fetch and the binding, and
// the binding parents its schedule/apply/flush phases.
func TestStepEmitsCycleSpanTree(t *testing.T) {
	d := &fakeDriver{
		name:     "liebre",
		provided: map[string]EntityValues{MetricQueueSize: {"a": 5}},
		entities: []Entity{{Name: "a", Driver: "liebre", Query: "q", Thread: 1}},
	}
	mw := NewMiddleware(nil)
	if err := mw.Bind(Binding{
		Policy:     NewQSPolicy(),
		Translator: NewNiceTranslator(newFakeOS()),
		Drivers:    []Driver{d},
	}); err != nil {
		t.Fatal(err)
	}
	sink := &span.MemorySink{}
	rec := span.New(span.Config{Process: "test", Seed: 7, Sink: sink})
	mw.SetSpans(rec)
	if mw.Spans() != rec {
		t.Fatal("Spans accessor does not return the attached recorder")
	}

	if _, err := mw.Step(time.Second); err != nil {
		t.Fatal(err)
	}

	roots := span.BuildTrees(rec.Snapshot())
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1 cycle", len(roots))
	}
	cycle := roots[0]
	if cycle.Name != "cycle" || cycle.At != time.Second {
		t.Errorf("root = %q at %v, want cycle at 1s", cycle.Name, cycle.At)
	}
	children := map[string]*span.Node{}
	for _, c := range cycle.Children {
		children[c.Name] = c
	}
	fetch, ok := children["fetch"]
	if !ok {
		t.Fatal("cycle has no fetch child")
	}
	if fetch.Attrs.Get("driver") != "liebre" {
		t.Errorf("fetch driver attr = %q", fetch.Attrs.Get("driver"))
	}
	binding, ok := children["binding"]
	if !ok {
		t.Fatal("cycle has no binding child")
	}
	if binding.Attrs.Get("binding") != "qs/nice" {
		t.Errorf("binding attr = %q", binding.Attrs.Get("binding"))
	}
	phases := map[string]bool{}
	for _, c := range binding.Children {
		phases[c.Name] = true
	}
	if !phases["schedule"] || !phases["apply"] {
		t.Errorf("binding phases = %v, want schedule and apply", phases)
	}
	// Every span shares the cycle's trace and reached the sink.
	for _, sp := range rec.Snapshot() {
		if sp.Trace != cycle.Trace {
			t.Errorf("span %s has trace %s, want %s", sp.Name, sp.Trace, cycle.Trace)
		}
	}
	if got := len(sink.Spans()); got != int(rec.Total()) {
		t.Errorf("sink saw %d spans, recorder %d", got, rec.Total())
	}
}

// TestStepCoalescerFlushSpan: a binding with a Coalescer also emits the
// "flush" phase under its binding span.
func TestStepCoalescerFlushSpan(t *testing.T) {
	d := &fakeDriver{
		name:     "liebre",
		provided: map[string]EntityValues{MetricQueueSize: {"a": 5}},
		entities: []Entity{{Name: "a", Driver: "liebre", Query: "q", Thread: 1}},
	}
	co := NewCoalescer(newFakeOS(), nil)
	mw := NewMiddleware(nil)
	if err := mw.Bind(Binding{
		Policy:     NewQSPolicy(),
		Translator: NewNiceTranslator(co),
		Drivers:    []Driver{d},
		Coalescer:  co,
	}); err != nil {
		t.Fatal(err)
	}
	rec := span.New(span.Config{Process: "test", Seed: 9})
	mw.SetSpans(rec)
	if _, err := mw.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range rec.Snapshot() {
		names[sp.Name] = true
	}
	if !names["flush"] {
		t.Errorf("spans %v missing flush", names)
	}
}

// TestStepWithoutRecorderEmitsNothing: tracing off is the default and
// must not leave any span state behind.
func TestStepWithoutRecorderEmitsNothing(t *testing.T) {
	d := &fakeDriver{
		name:     "liebre",
		provided: map[string]EntityValues{MetricQueueSize: {"a": 5}},
		entities: []Entity{{Name: "a", Driver: "liebre", Query: "q", Thread: 1}},
	}
	mw := NewMiddleware(nil)
	if err := mw.Bind(Binding{
		Policy:     NewQSPolicy(),
		Translator: NewNiceTranslator(newFakeOS()),
		Drivers:    []Driver{d},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	if mw.Spans().Total() != 0 {
		t.Error("nil recorder accumulated spans")
	}
}
