package faults

import (
	"fmt"
	"testing"
	"time"

	"lachesis/internal/fleet"
)

// composedRun drives one fixed op sequence through an AgentPlan and a
// PeerPlan composed on the same component (shared virtual clock), and
// returns a transcript of every outcome. Both wrappers draw from their
// own seeded stream, so interleaving them must not perturb either.
func composedRun(agentSeed, peerSeed int64) []string {
	now := time.Duration(0)
	clock := func() time.Duration { return now }

	agent := WrapAgent(&stubAgent{}, AgentPlan{
		Seed:       agentSeed,
		FailRate:   0.3,
		Partitions: Windows{{From: 20 * time.Second, To: 28 * time.Second}},
		Clock:      clock,
	})
	peer := WrapPeer(&stubPeer{}, PeerPlan{
		Seed:           peerSeed,
		FailRate:       0.3,
		Partitions:     Windows{{From: 24 * time.Second, To: 31 * time.Second}},
		LeaseLoss:      Windows{{From: 5 * time.Second, To: 9 * time.Second}},
		ReplicationLag: Windows{{From: 40 * time.Second, To: 46 * time.Second}},
		Clock:          clock,
	})

	var out []string
	rec := func(op string, err error) {
		out = append(out, fmt.Sprintf("t=%ds %s err=%v", int(now/time.Second), op, err))
	}
	for tick := 0; tick < 60; tick++ {
		now = time.Duration(tick) * time.Second
		// The interleaving a live replica produces: control-plane pushes
		// and status polls mixed with peer lease checks and checkpoints.
		_, err := agent.Propose([]byte("p"))
		rec("agent.propose", err)
		if tick%2 == 0 {
			_, err = agent.Status()
			rec("agent.status", err)
		}
		_, err = peer.Lease()
		rec("peer.lease", err)
		if tick%3 == 0 {
			rec("peer.replicate", peer.Replicate(fleet.Checkpoint{}))
		}
	}
	out = append(out,
		fmt.Sprintf("agent injected=%d calls=%d", agent.Injected(), agent.Calls()),
		fmt.Sprintf("peer injected=%d", peer.Injected()))
	return out
}

// TestComposedPlansDeterministic is the contract the simulation harness
// leans on: fault plans composed on one component stay byte-for-byte
// reproducible for a fixed seed pair — same op sequence, same injected
// outcomes, every time.
func TestComposedPlansDeterministic(t *testing.T) {
	seeds := [][2]int64{{0, 0}, {1, 2}, {42, 7}, {7, 42}}
	for _, sp := range seeds {
		a := composedRun(sp[0], sp[1])
		b := composedRun(sp[0], sp[1])
		if len(a) != len(b) {
			t.Fatalf("seeds %v: transcript lengths differ: %d vs %d", sp, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seeds %v: transcripts diverge at op %d:\n  %s\n  %s", sp, i, a[i], b[i])
			}
		}
	}
	// Different seeds must actually change the injected stream, or the
	// determinism above is vacuous.
	if a, b := composedRun(1, 2), composedRun(3, 4); fmt.Sprint(a) == fmt.Sprint(b) {
		t.Fatal("distinct seed pairs produced identical transcripts — FailRate stream not seeded")
	}
}
