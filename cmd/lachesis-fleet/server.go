package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/fleet"
	"lachesis/internal/guard"
	"lachesis/internal/span"
	"lachesis/internal/telemetry"
)

// maxPolicyPayload bounds a POST /fleet/policy request body (the same
// cap lachesisd puts on its own /policy).
const maxPolicyPayload = 1 << 20

// defaultAuditTail is how many events /debug/audit returns without ?n=.
const defaultAuditTail = 64

// defaultTraceTail is how many spans /debug/trace returns without ?n=.
const defaultTraceTail = 128

// fleetOptions assembles a daemon.
type fleetOptions struct {
	registry fleet.RegistryConfig
	rollout  fleet.RolloutConfig
	conns    fleet.ConnFactory
	sink     core.AuditSink
	// spanSink optionally mirrors every completed span (JSONL via
	// -span-log); the in-memory ring behind /debug/trace is always on.
	spanSink span.Sink
	// flightDir enables the anomaly flight recorder: a per-agent push
	// breaker opening dumps the span ring there. Empty disables.
	flightDir string
	// pprofEnabled mounts net/http/pprof under /debug/pprof/.
	pprofEnabled bool
}

// fleetDaemon owns the coordinator's moving parts and their HTTP
// surface. The registry and coordinator carry their own locks; d.mu
// only guards the last-good bookkeeping.
type fleetDaemon struct {
	reg    *fleet.Registry
	co     *fleet.Coordinator
	tel    *telemetry.Registry
	trail  *core.AuditTrail
	spans  *span.Recorder
	flight *span.FlightRecorder
	pprof  bool
	start  time.Time

	mu sync.Mutex
	// lastGood is the fleet-level stable payload: the last promoted
	// candidate, used as the rollback target of the next rollout.
	lastGood []byte
	// pending is the candidate payload of the in-flight rollout.
	pending []byte
	// promotionsSeen detects promotion transitions across ticks.
	promotionsSeen int64
	// proposals numbers auto-versioned candidates.
	proposals int64
	// policyStore persists lastGood (nil: memory only).
	policyStore guard.PolicyStore
}

func newFleetDaemon(opts fleetOptions) *fleetDaemon {
	d := &fleetDaemon{
		tel:   telemetry.NewRegistry(),
		trail: core.NewAuditTrail(0, opts.sink),
		pprof: opts.pprofEnabled,
		start: time.Now(),
	}
	telemetry.RegisterBuildInfo(d.tel, "lachesis-fleet")
	d.reg = fleet.NewRegistry(opts.registry)
	d.reg.SetAudit(d.trail)
	d.reg.SetTelemetry(d.tel)
	d.co = fleet.NewCoordinator(opts.rollout, d.reg, opts.conns)
	d.co.SetAudit(d.trail)
	d.co.SetTelemetry(d.tel)
	// Tracing is always on: each rollout opens a "rollout" root span whose
	// context parents every per-agent "push" and rides each HTTP hop as a
	// Traceparent header, so one trace ID spans coordinator -> agent ->
	// canary verdict.
	d.spans = span.New(span.Config{Process: "lachesis-fleet", Sink: opts.spanSink})
	d.co.SetSpans(d.spans)
	if opts.flightDir != "" {
		d.flight = span.NewFlightRecorder(d.spans, opts.flightDir, 0)
		flight := d.flight
		d.co.Fanout().SetBreakerHook(func(now time.Duration, agent string) {
			_, _ = flight.Trip(span.Trigger{At: now, Kind: span.TriggerBreakerOpen, Detail: "agent " + agent})
		})
	}
	return d
}

// now is the daemon-relative clock feeding leases and rollout ticks.
func (d *fleetDaemon) now() time.Duration { return time.Since(d.start) }

// attachState wires crash-safe persistence and performs the warm
// restart: registry leases re-anchor at now, an in-flight rollout
// resumes at its persisted phase, and the fleet last-good payload is
// reloaded.
func (d *fleetDaemon) attachState(fs *fleet.Store, ps guard.PolicyStore) error {
	now := d.now()
	d.reg.SetStore(fs)
	if err := d.reg.Restore(now); err != nil {
		return fmt.Errorf("restore registry: %w", err)
	}
	d.co.SetStore(fs)
	if _, err := d.co.Resume(now); err != nil {
		return fmt.Errorf("resume rollout: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.policyStore = ps
	if raw, ok, err := ps.LoadLastGoodPolicy(); err != nil {
		return fmt.Errorf("load fleet last-good: %w", err)
	} else if ok {
		d.lastGood = raw
	}
	// Promotions that happened before the crash must not be mistaken for
	// fresh ones after it.
	d.promotionsSeen = d.co.Status().Promotions
	return nil
}

// tick runs one coordinator cycle: lease sweep, rollout advance, and
// promotion bookkeeping (a freshly promoted candidate becomes the new
// fleet-level last-good, persisted when a store is attached).
func (d *fleetDaemon) tick() {
	now := d.now()
	d.reg.Sweep(now)
	d.co.Tick(now)
	st := d.co.Status()
	d.mu.Lock()
	defer d.mu.Unlock()
	if st.Promotions > d.promotionsSeen && d.pending != nil {
		d.promotionsSeen = st.Promotions
		d.lastGood = d.pending
		d.pending = nil
		if d.policyStore != nil {
			if err := d.policyStore.SaveLastGoodPolicy(d.lastGood); err != nil {
				d.trail.Record(core.AuditEvent{At: now, Kind: fleet.AuditKindFleet,
					Outcome: "WARNING: persisting fleet last-good failed: " + err.Error()})
			}
		}
	}
}

// propose stages a candidate payload fleet-wide. The rollback target is
// the current fleet last-good (the payload itself on the very first
// rollout, making rollback a no-op rather than a nil push).
func (d *fleetDaemon) propose(version string, payload []byte) error {
	d.mu.Lock()
	if version == "" {
		d.proposals++
		version = fmt.Sprintf("fleet-%d", d.proposals)
	}
	stable := d.lastGood
	if stable == nil {
		stable = payload
	}
	d.mu.Unlock()
	if err := d.co.Propose(d.now(), version, payload, stable); err != nil {
		return err
	}
	d.mu.Lock()
	d.pending = payload
	d.mu.Unlock()
	return nil
}

// traceView is the JSON shape of GET /debug/trace.
type traceView struct {
	Total     int64       `json:"total"`
	LastTrace string      `json:"last_trace,omitempty"`
	Trace     string      `json:"trace,omitempty"`
	Spans     []span.Span `json:"spans"`
	Flight    *flightView `json:"flight,omitempty"`
}

// flightView is the /debug/trace summary of the flight recorder.
type flightView struct {
	Trips    int    `json:"trips"`
	LastDump string `json:"last_dump,omitempty"`
}

// fleetHealth is the JSON shape of GET /fleet/health.
type fleetHealth struct {
	Status  string            `json:"status"` // "ok" or "degraded"
	Agents  map[string]int    `json:"agents"` // count per lease state
	Rollout fleet.FleetStatus `json:"rollout"`
}

// handler builds the coordinator HTTP mux.
func (d *fleetDaemon) handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/register", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req fleet.RegisterRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rec, err := d.reg.Register(d.now(), req.ID, req.Addr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, fleet.RegisterResponse{
			Generation: rec.Generation,
			IntervalMs: d.reg.Config().HeartbeatInterval.Milliseconds(),
		})
	})

	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req fleet.HeartbeatRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch err := d.reg.Heartbeat(d.now(), req.ID); {
		case errors.Is(err, fleet.ErrUnknownAgent):
			// 404 tells the beacon to re-register (new lease, new generation).
			http.Error(w, err.Error(), http.StatusNotFound)
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})

	mux.HandleFunc("/fleet/agents", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Agents []fleet.AgentRecord `json:"agents"`
		}{Agents: d.reg.Agents()})
	})

	mux.HandleFunc("/fleet/policy", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, d.co.Status())
		case http.MethodPost:
			body, err := io.ReadAll(io.LimitReader(r.Body, maxPolicyPayload))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := d.propose(r.URL.Query().Get("version"), body); err != nil {
				// 409 mirrors the agent API: a rollout in flight must not be
				// silently displaced.
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			writeJSON(w, http.StatusAccepted, d.co.Status())
		default:
			w.Header().Set("Allow", "GET, POST")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})

	mux.HandleFunc("/fleet/health", func(w http.ResponseWriter, r *http.Request) {
		agents := map[string]int{}
		active := 0
		for _, a := range d.reg.Agents() {
			agents[a.State]++
			if a.State == fleet.LeaseActive {
				active++
			}
		}
		h := fleetHealth{Status: "ok", Agents: agents, Rollout: d.co.Status()}
		code := http.StatusOK
		if active == 0 && len(d.reg.Agents()) > 0 {
			h.Status = "degraded" // a fleet with zero reachable agents is not ok
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		telemetry.TouchUptime(d.tel, d.start)
		if err := d.tel.WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = buf.WriteTo(w)
	})

	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		n := defaultTraceTail
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		v := traceView{Total: d.spans.Total(), LastTrace: d.spans.LastTrace()}
		if id := r.URL.Query().Get("trace"); id != "" {
			v.Trace = id
			v.Spans = d.spans.TraceSpans(id)
		} else {
			v.Spans = d.spans.Snapshot()
			if len(v.Spans) > n {
				v.Spans = v.Spans[len(v.Spans)-n:]
			}
		}
		if d.flight != nil {
			v.Flight = &flightView{Trips: d.flight.Trips(), LastDump: d.flight.LastDump()}
		}
		writeJSON(w, http.StatusOK, v)
	})

	if d.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	mux.HandleFunc("/debug/audit", func(w http.ResponseWriter, r *http.Request) {
		n := defaultAuditTail
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, http.StatusOK, struct {
			Total  int64             `json:"total"`
			Events []core.AuditEvent `json:"events"`
		}{Total: d.trail.Total(), Events: d.trail.Last(n)})
	})

	return mux
}

// writeJSON renders v as an indented JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
