package fleet

import (
	"testing"

	"lachesis/internal/guard"
	"lachesis/internal/reconcile"
)

func TestStoreRegistryRoundTrip(t *testing.T) {
	fs := reconcile.NewMemFS()
	s := NewStore(fs, nil)
	in := []AgentRecord{
		{ID: "a", Addr: "a:1", Generation: 2, State: LeaseActive},
		{ID: "b", Addr: "b:1", Generation: 1, State: LeaseEvicted},
	}
	if err := s.SaveRegistry(in); err != nil {
		t.Fatalf("SaveRegistry: %v", err)
	}
	if fs.Syncs == 0 {
		t.Error("SaveRegistry must sync before rename")
	}
	if len(fs.FileBytes(registryTmpFile)) != 0 {
		t.Error("tmp file must be renamed away")
	}
	out, ok, err := s.LoadRegistry()
	if err != nil || !ok {
		t.Fatalf("LoadRegistry = ok=%v err=%v", ok, err)
	}
	if len(out) != 2 || out[0].ID != "a" || out[1].State != LeaseEvicted {
		t.Fatalf("LoadRegistry = %+v", out)
	}
}

func TestStoreRolloutRoundTrip(t *testing.T) {
	fs := reconcile.NewMemFS()
	s := NewStore(fs, nil)
	in := RolloutState{
		Active: true, Version: "v7", Payload: []byte(`{"p":1}`),
		StablePayload: []byte(`{"p":0}`), Phase: PhaseObserving, Wave: 1, Ticks: 3,
		Cohorts: [][]string{{"a"}, {"b", "c"}},
		Agents: map[string]*AgentRollout{
			"a": {Wave: 0, Pushed: true, Baseline: guard.SLOSample{LatencyP95: 1, OK: true}},
			"b": {Wave: 1},
		},
	}
	if err := s.SaveRollout(in); err != nil {
		t.Fatalf("SaveRollout: %v", err)
	}
	out, ok, err := s.LoadRollout()
	if err != nil || !ok {
		t.Fatalf("LoadRollout = ok=%v err=%v", ok, err)
	}
	if !out.Active || out.Version != "v7" || out.Phase != PhaseObserving || out.Wave != 1 {
		t.Fatalf("LoadRollout = %+v", out)
	}
	if a := out.Agents["a"]; a == nil || !a.Pushed || !a.Baseline.OK {
		t.Fatalf("agent a = %+v, want pushed with baseline", out.Agents["a"])
	}
	if string(out.Payload) != `{"p":1}` || string(out.StablePayload) != `{"p":0}` {
		t.Fatal("payloads must round-trip")
	}
}

func TestStoreMissingAndCorruptDegradeGracefully(t *testing.T) {
	fs := reconcile.NewMemFS()
	warned := 0
	s := NewStore(fs, func(string, ...any) { warned++ })

	if _, ok, err := s.LoadRegistry(); ok || err != nil {
		t.Fatalf("missing registry = ok=%v err=%v, want cold start", ok, err)
	}
	if _, ok, err := s.LoadRollout(); ok || err != nil {
		t.Fatalf("missing rollout = ok=%v err=%v, want idle start", ok, err)
	}

	fs.SetFile(RegistryFile, []byte("garbage"))
	fs.SetFile(RolloutFile, []byte(`{"format":99}`))
	if _, ok, err := s.LoadRegistry(); ok || err != nil {
		t.Fatalf("corrupt registry = ok=%v err=%v, want cold start", ok, err)
	}
	if _, ok, err := s.LoadRollout(); ok || err != nil {
		t.Fatalf("wrong-format rollout = ok=%v err=%v, want idle start", ok, err)
	}
	if warned != 2 {
		t.Fatalf("warned %d times, want 2", warned)
	}
}

func TestStoreLeaseRoundTrip(t *testing.T) {
	fs := reconcile.NewMemFS()
	s := NewStore(fs, nil)
	in := LeaseInfo{Epoch: 4, Holder: "coord-a", RenewedSeq: 17, TTLMs: 3000, Released: true}
	if err := s.SaveLease(in); err != nil {
		t.Fatalf("SaveLease: %v", err)
	}
	if fs.Syncs == 0 {
		t.Error("SaveLease must sync before rename")
	}
	if len(fs.FileBytes(leaseTmpFile)) != 0 {
		t.Error("tmp file must be renamed away")
	}
	out, ok, err := s.LoadLease()
	if err != nil || !ok {
		t.Fatalf("LoadLease = ok=%v err=%v", ok, err)
	}
	if out != in {
		t.Fatalf("LoadLease = %+v, want %+v", out, in)
	}
}

func TestStoreTruncatedTailDegradesToColdStart(t *testing.T) {
	// A crash mid-write (no atomic rename available, torn page, short
	// copy during disaster recovery) leaves a prefix of valid JSON. Every
	// loader must treat it as corruption — warn and cold-start — never
	// error out or half-parse.
	fs := reconcile.NewMemFS()
	s := NewStore(fs, nil)
	if err := s.SaveRegistry([]AgentRecord{{ID: "a", Addr: "a:1"}, {ID: "b", Addr: "b:1"}}); err != nil {
		t.Fatalf("SaveRegistry: %v", err)
	}
	if err := s.SaveRollout(RolloutState{Active: true, Version: "v2"}); err != nil {
		t.Fatalf("SaveRollout: %v", err)
	}
	if err := s.SaveLease(LeaseInfo{Epoch: 9, Holder: "coord-a"}); err != nil {
		t.Fatalf("SaveLease: %v", err)
	}

	for _, name := range []string{RegistryFile, RolloutFile, LeaseFile} {
		whole := fs.FileBytes(name)
		if len(whole) == 0 {
			t.Fatalf("%s: no bytes persisted", name)
		}
		fs.SetFile(name, whole[:len(whole)/2])
	}

	warned := 0
	s = NewStore(fs, func(string, ...any) { warned++ })
	if _, ok, err := s.LoadRegistry(); ok || err != nil {
		t.Fatalf("truncated registry = ok=%v err=%v, want cold start", ok, err)
	}
	if _, ok, err := s.LoadRollout(); ok || err != nil {
		t.Fatalf("truncated rollout = ok=%v err=%v, want cold start", ok, err)
	}
	if _, ok, err := s.LoadLease(); ok || err != nil {
		t.Fatalf("truncated lease = ok=%v err=%v, want cold start", ok, err)
	}
	if warned != 3 {
		t.Fatalf("warned %d times, want 3 (one per truncated file)", warned)
	}
}
