// Command lachesis-fleet is the fleet coordinator: it keeps a leased
// registry of lachesisd agents (POST /register, POST /heartbeat), fans
// versioned policies out to their POST /policy APIs, and runs canary
// rollouts across node cohorts with SLO-delta and guard-violation
// auto-rollback (POST /fleet/policy). With -state, registry and rollout
// state survive coordinator restarts: a crash mid-rollout resumes the
// rollout, it never clobbers the agents back to square one — agents
// keep enforcing their last-good policies autonomously whether or not a
// coordinator is alive.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/fleet"
	"lachesis/internal/httpx"
	"lachesis/internal/reconcile"
	"lachesis/internal/span"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, sigs); err != nil {
		fmt.Fprintf(os.Stderr, "lachesis-fleet: %v\n", err)
		os.Exit(1)
	}
}

// run is the daemon body, factored for tests.
func run(args []string, stdout, stderr io.Writer, sigs chan os.Signal) error {
	fs := flag.NewFlagSet("lachesis-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:9600", "coordinator HTTP address")
	id := fs.String("id", "", "coordinator HA identity (lease holder name; default: the listen address)")
	peers := fs.String("peers", "", "comma-separated peer coordinator addresses for HA (lease observation + checkpoint replication)")
	leaseTTL := fs.Duration("lease-ttl", 0, "leader-lease TTL standbys wait out before promoting (default 3x tick)")
	standbyMode := fs.Bool("standby", false, "start as a standby: apply replicated checkpoints and promote only when the leader's lease expires")
	statePath := fs.String("state", "", "state directory for crash-safe registry/rollout persistence (empty: in-memory)")
	tick := fs.Duration("tick", time.Second, "coordinator cycle period (sweep + rollout advance)")
	heartbeat := fs.Duration("heartbeat", time.Second, "heartbeat interval expected from agents")
	suspectAfter := fs.Int("suspect-after", 3, "missed beats before an agent lease turns suspect")
	evictAfter := fs.Int("evict-after", 10, "missed beats before an agent lease is evicted")
	canaryFraction := fs.Float64("canary-fraction", 0.25, "fraction of agents in the canary cohort")
	waves := fs.Int("waves", 2, "promotion waves after the canary cohort")
	window := fs.Int("window", 5, "observation window per cohort, in ticks")
	pushTicks := fs.Int("push-ticks", 5, "ticks before unreachable agents are degraded out of a wave")
	agentTimeout := fs.Duration("agent-timeout", 2*time.Second, "per-request timeout talking to agents")
	auditPath := fs.String("audit", "", "append-only JSONL audit log (empty: ring buffer only)")
	spanLog := fs.String("span-log", "",
		"append completed trace spans as JSONL to this file (the ring behind /debug/trace is always on)")
	flightDir := fs.String("flight-dir", "",
		"write flight-recorder trace bundles into this directory when an agent's push breaker opens")
	pprofEnabled := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	iterations := fs.Int("iterations", 0, "exit after this many ticks (0: run until signal)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Fail fast on nonsense configuration instead of limping along with
	// silently substituted defaults.
	switch {
	case *tick <= 0:
		return fmt.Errorf("-tick must be positive, got %v", *tick)
	case *heartbeat <= 0:
		return fmt.Errorf("-heartbeat must be positive, got %v", *heartbeat)
	case *canaryFraction <= 0 || *canaryFraction > 1:
		return fmt.Errorf("-canary-fraction must be in (0,1], got %v", *canaryFraction)
	case *suspectAfter <= 0:
		return fmt.Errorf("-suspect-after must be positive, got %d", *suspectAfter)
	case *evictAfter <= *suspectAfter:
		return fmt.Errorf("-evict-after (%d) must exceed -suspect-after (%d)", *evictAfter, *suspectAfter)
	case *waves <= 0 || *window <= 0 || *pushTicks <= 0:
		return errors.New("-waves, -window and -push-ticks must be positive")
	case *leaseTTL < 0:
		return fmt.Errorf("-lease-ttl must not be negative, got %v", *leaseTTL)
	case *standbyMode && *peers == "":
		return errors.New("-standby needs -peers (a standby with nobody to observe would never promote)")
	}
	if *leaseTTL == 0 {
		*leaseTTL = 3 * *tick
	}
	if *id == "" {
		*id = *listen
	}
	peerClients := map[string]fleet.PeerClient{}
	for _, addr := range strings.Split(*peers, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		peerClients[addr] = fleet.NewHTTPPeer(addr, addr, *agentTimeout)
	}

	// Audit trail, optionally mirrored to a JSONL file.
	var trailSink core.AuditSink
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("audit log: %w", err)
		}
		defer f.Close()
		trailSink = core.NewJSONLSink(f)
	}

	var spanSink *span.JSONLSink
	if *spanLog != "" {
		f, err := os.OpenFile(*spanLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("span log: %w", err)
		}
		defer f.Close()
		spanSink = span.NewJSONLSink(f)
		defer func() {
			if err := spanSink.Err(); err != nil {
				fmt.Fprintln(stderr, "lachesis-fleet: span log:", err)
			}
		}()
	}

	opts := fleetOptions{
		registry: fleet.RegistryConfig{
			HeartbeatInterval: *heartbeat,
			SuspectAfter:      *suspectAfter,
			EvictAfter:        *evictAfter,
		},
		rollout: fleet.RolloutConfig{
			CanaryFraction: *canaryFraction,
			Waves:          *waves,
			WindowTicks:    *window,
			PushTicks:      *pushTicks,
		},
		conns:        fleet.HTTPConnFactory(*agentTimeout),
		sink:         trailSink,
		flightDir:    *flightDir,
		pprofEnabled: *pprofEnabled,
		id:           *id,
		peers:        peerClients,
		leaseTTL:     *leaseTTL,
		standby:      *standbyMode,
	}
	if spanSink != nil {
		opts.spanSink = spanSink
	}
	d := newFleetDaemon(opts)

	// Warm restart: registry, rollout state, and the fleet-level
	// last-good policy all come back from the state directory.
	if *statePath != "" {
		sfs, err := reconcile.NewOSFS(*statePath)
		if err != nil {
			return fmt.Errorf("state dir: %w", err)
		}
		warnf := func(format string, args ...any) {
			fmt.Fprintf(stderr, "lachesis-fleet: state: "+format+"\n", args...)
		}
		if err := d.attachState(fleet.NewStore(sfs, warnf), reconcile.NewStore(sfs, warnf)); err != nil {
			return err
		}
		st := d.co.Status()
		fmt.Fprintf(stderr, "lachesis-fleet: state loaded from %s: %d agents, rollout %s\n",
			*statePath, len(d.reg.Agents()), st.Phase)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := httpx.NewServer(d.handler())
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	role := "leading"
	if *standbyMode {
		role = "standby"
	}
	fmt.Fprintf(stderr, "lachesis-fleet: %s listening on %s (%s, tick %v, heartbeat %v, lease ttl %v, %d peers)\n",
		*id, ln.Addr(), role, *tick, *heartbeat, *leaseTTL, len(peerClients))

	ticker := time.NewTicker(*tick)
	defer ticker.Stop()
	ticks := 0
	for {
		select {
		case sig := <-sigs:
			// Graceful shutdown: release the lease (standbys promote without
			// waiting out the TTL) and take a final state checkpoint.
			fmt.Fprintf(stderr, "lachesis-fleet: %v, shutting down\n", sig)
			d.shutdown()
			fmt.Fprintln(stderr, "lachesis-fleet: final state checkpoint taken")
			return nil
		case <-ticker.C:
			d.tick()
			ticks++
			if *iterations > 0 && ticks >= *iterations {
				fmt.Fprintf(stderr, "lachesis-fleet: %d ticks done, exiting\n", ticks)
				return nil
			}
		}
	}
}
