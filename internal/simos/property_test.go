package simos

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickFairnessFollowsWeights: for random nice pairs, the CPU split of
// two always-busy threads must match the kernel weight law within
// tolerance. This is the invariant everything in Lachesis rests on.
func TestQuickFairnessFollowsWeights(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(7)),
		Values: func(args []reflect.Value, rng *rand.Rand) {
			args[0] = reflect.ValueOf(rng.Intn(21) - 10) // nice in [-10,10]
			args[1] = reflect.ValueOf(rng.Intn(21) - 10)
		},
	}
	err := quick.Check(func(n1, n2 int) bool {
		// Keep the weight ratio measurable in a short run.
		if d := n1 - n2; d > 8 || d < -8 {
			return true
		}
		k := New(Config{CPUs: 1})
		a, err := k.Spawn("a", RootCgroup, busyRunner())
		if err != nil {
			return false
		}
		b, err := k.Spawn("b", RootCgroup, busyRunner())
		if err != nil {
			return false
		}
		if k.SetNice(a, n1) != nil || k.SetNice(b, n2) != nil {
			return false
		}
		k.RunUntil(12 * time.Second)
		ia, _ := k.ThreadInfo(a)
		ib, _ := k.ThreadInfo(b)
		if ia.CPUTime == 0 || ib.CPUTime == 0 {
			return false
		}
		got := float64(ia.CPUTime) / float64(ib.CPUTime)
		want := NiceWeight(n1) / NiceWeight(n2)
		return math.Abs(got-want)/want < 0.15
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestQuickCPUConservation: charged thread time never exceeds available
// CPU capacity, and equals busy wall time on unit-capacity CPUs.
func TestQuickCPUConservation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(8))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cpus := 1 + rng.Intn(4)
		k := New(Config{CPUs: cpus, SwitchCost: time.Duration(rng.Intn(50)) * time.Microsecond})
		n := 1 + rng.Intn(6)
		ids := make([]ThreadID, n)
		for i := range ids {
			id, err := k.Spawn("w", RootCgroup, busyRunner())
			if err != nil {
				return false
			}
			ids[i] = id
			if err := k.SetNice(id, rng.Intn(40)-20); err != nil {
				return false
			}
		}
		horizon := 3 * time.Second
		k.RunUntil(horizon)
		var total time.Duration
		for _, id := range ids {
			info, err := k.ThreadInfo(id)
			if err != nil {
				return false
			}
			total += info.CPUTime
		}
		// Each CPU may have one slice in flight past the horizon
		// (charge-ahead at dispatch), so allow one quantum per CPU.
		capacity := time.Duration(cpus) * (horizon + k.Quantum())
		if total > capacity {
			return false
		}
		// Unit capacities: busy wall time equals charged time.
		busy := k.TotalBusyTime()
		return total >= busy-time.Millisecond && total <= busy+time.Millisecond
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestQuickSharesRatios: two busy cgroups with random shares split the CPU
// proportionally.
func TestQuickSharesRatios(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(9))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s1 := 128 << rng.Intn(5) // 128..2048
		s2 := 128 << rng.Intn(5)
		k := New(Config{CPUs: 1})
		g1, err := k.CreateCgroup(RootCgroup, "g1")
		if err != nil {
			return false
		}
		g2, err := k.CreateCgroup(RootCgroup, "g2")
		if err != nil {
			return false
		}
		if k.SetShares(g1, s1) != nil || k.SetShares(g2, s2) != nil {
			return false
		}
		a, err := k.Spawn("a", g1, busyRunner())
		if err != nil {
			return false
		}
		b, err := k.Spawn("b", g2, busyRunner())
		if err != nil {
			return false
		}
		k.RunUntil(15 * time.Second)
		ia, _ := k.ThreadInfo(a)
		ib, _ := k.ThreadInfo(b)
		got := float64(ia.CPUTime) / float64(ib.CPUTime)
		want := float64(s1) / float64(s2)
		return math.Abs(got-want)/want < 0.15
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestVirtualTimeMonotonic: Now never goes backwards across Step calls.
func TestVirtualTimeMonotonic(t *testing.T) {
	k := New(Config{CPUs: 2})
	for i := 0; i < 3; i++ {
		mustSpawn(t, k, "w", RootCgroup, RunnerFunc(func(ctx *RunContext, granted time.Duration) Decision {
			if ctx.Now() > 100*time.Millisecond {
				return Decision{Used: granted / 2, Action: ActionSleep, WakeAt: ctx.Now() + 3*time.Millisecond}
			}
			return Decision{Used: granted, Action: ActionYield}
		}))
	}
	prev := k.Now()
	for i := 0; i < 5000 && k.Step(); i++ {
		if k.Now() < prev {
			t.Fatalf("time went backwards: %v -> %v", prev, k.Now())
		}
		prev = k.Now()
	}
}
