package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lachesis/internal/core"
)

// chaosScale is long enough for the outage, the breaker backoff, and the
// post-outage recovery to all fit inside the run.
var chaosScale = Scale{Warmup: 3 * time.Second, Measure: 16 * time.Second, Reps: 1}

func TestChaosHardenedVsUnhardened(t *testing.T) {
	hardened, err := runChaos(true, chaosScale)
	if err != nil {
		t.Fatal(err)
	}
	unhardened, err := runChaos(false, chaosScale)
	if err != nil {
		t.Fatal(err)
	}

	if hardened.injected == 0 {
		t.Fatal("no faults injected; the chaos plan is inert")
	}
	// The healthy binding B must keep being scheduled through A's outage:
	// strictly more applies than the strict all-or-nothing step manages.
	if hardened.appliesB <= unhardened.appliesB {
		t.Errorf("hardened B applies = %d, want > unhardened %d",
			hardened.appliesB, unhardened.appliesB)
	}
	// Roughly one apply per period over the whole horizon (1s period).
	tl := newChaosTimeline(chaosScale)
	want := int64(tl.horizon/time.Second) - 3
	if hardened.appliesB < want {
		t.Errorf("hardened B applies = %d, want >= %d (every period)", hardened.appliesB, want)
	}

	// The flaky binding recovers after the outage: healthy again, with a
	// success later than the outage end.
	var bindA core.BindingHealth
	found := false
	for _, b := range hardened.health.Bindings {
		if b.Translator == "nice[A]" {
			bindA, found = b, true
		}
	}
	if !found {
		t.Fatal("binding A missing from health snapshot")
	}
	if bindA.State != core.BindingHealthy || bindA.LastSuccess <= tl.outage.To {
		t.Errorf("binding A did not recover: state %v, last success %v (outage ended %v)",
			bindA.State, bindA.LastSuccess, tl.outage.To)
	}

	// The unhardened strict step surfaces errors; the hardened step absorbs
	// them into the health state instead.
	if unhardened.stepErrs == 0 {
		t.Error("unhardened run should surface step errors")
	}
	if len(hardened.chaosErrs) != 0 {
		t.Errorf("chaos agent errors: %v", hardened.chaosErrs)
	}
}

func TestChaosExperimentPrints(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos experiment skipped in -short mode")
	}
	exp, ok := ByID("chaos")
	if !ok {
		t.Fatal("chaos experiment not registered")
	}
	var buf bytes.Buffer
	if err := exp.Run(&buf, Scale{Warmup: 2 * time.Second, Measure: 8 * time.Second, Reps: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hardened:", "unhardened:", "binding qs/nice[A]", "driver stormA"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
