package fleet

import (
	"sync"
	"testing"
	"time"

	"lachesis/internal/guard"
	"lachesis/internal/span"
)

// tracedFake is a fakeAgent that also implements TracedAgent, recording
// every traceparent the fan-out hands it.
type tracedFake struct {
	fakeAgent
	tmu          sync.Mutex
	traceparents []string
}

func (tf *tracedFake) ProposeTraced(payload []byte, traceparent string) (guard.Status, error) {
	tf.tmu.Lock()
	tf.traceparents = append(tf.traceparents, traceparent)
	tf.tmu.Unlock()
	return tf.Propose(payload)
}

// TestRolloutSpanChainAndTraceparent: a rollout emits a root "rollout"
// span, each agent push is a child "push" span, and TracedAgent clients
// receive a traceparent carrying the rollout's trace ID with the push
// span as parent — without the payload bytes changing.
func TestRolloutSpanChainAndTraceparent(t *testing.T) {
	rec := span.New(span.Config{Process: "lachesis-fleet", Seed: 7})
	ids := []string{"n1", "n2", "n3"}
	reg := NewRegistry(RegistryConfig{})
	for _, id := range ids {
		if _, err := reg.Register(0, id, id+":1"); err != nil {
			t.Fatal(err)
		}
	}
	agents := map[string]*tracedFake{}
	for _, id := range ids {
		agents[id] = &tracedFake{fakeAgent: fakeAgent{slo: guard.SLOSample{LatencyP95: 1, Throughput: 100, OK: true}}}
	}
	co := NewCoordinator(RolloutConfig{
		CanaryFraction: 0.34, Waves: 1, WindowTicks: 1, PushTicks: 2,
		Fanout: noSleep(FanoutConfig{Attempts: 1}),
	}, reg, func(a AgentRecord) AgentClient { return agents[a.ID] })
	co.SetSpans(rec)

	if err := co.Propose(0, "v2", []byte(`{"v":2}`), []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	drive(co, 30)
	if st := co.Status(); st.LastDecision != guard.DecisionPromoted {
		t.Fatalf("rollout did not promote: %+v", st)
	}

	var root span.Span
	pushes := map[string]span.Span{} // span ID -> span
	for _, sp := range rec.Snapshot() {
		switch sp.Name {
		case "rollout":
			root = sp
		case "push":
			pushes[sp.ID] = sp
		}
	}
	if root.ID == "" {
		t.Fatal("no rollout root span recorded")
	}
	if root.Attrs.Get("decision") != guard.DecisionPromoted {
		t.Errorf("rollout decision attr = %q", root.Attrs.Get("decision"))
	}
	if len(pushes) != len(ids) {
		t.Fatalf("push spans = %d, want %d", len(pushes), len(ids))
	}
	for id, sp := range pushes {
		if sp.Trace != root.Trace || sp.Parent != root.ID {
			t.Errorf("push %s not a child of the rollout span: %+v", id, sp)
		}
	}
	for id, ag := range agents {
		if ag.proposalCount() != 1 || ag.lastProposal() != `{"v":2}` {
			t.Fatalf("agent %s payload altered or re-pushed: %q", id, ag.lastProposal())
		}
		if len(ag.traceparents) != 1 {
			t.Fatalf("agent %s traceparents = %v, want exactly one", id, ag.traceparents)
		}
		ctx, ok := span.ParseTraceparent(ag.traceparents[0])
		if !ok {
			t.Fatalf("agent %s got malformed traceparent %q", id, ag.traceparents[0])
		}
		if ctx.Trace != root.Trace {
			t.Errorf("agent %s traceparent trace = %s, want rollout trace %s", id, ctx.Trace, root.Trace)
		}
		if _, isPush := pushes[ctx.Span]; !isPush {
			t.Errorf("agent %s traceparent parent span %s is not a push span", id, ctx.Span)
		}
	}
}

// TestRolloutWithoutRecorderSendsNoTraceparent: with no recorder
// attached, TracedAgent clients are reached via plain Propose — no
// empty-string traceparent leaks over the hop.
func TestRolloutWithoutRecorderSendsNoTraceparent(t *testing.T) {
	ag := &tracedFake{fakeAgent: fakeAgent{slo: guard.SLOSample{OK: true, Throughput: 100, LatencyP95: 1}}}
	f := NewFanout(noSleep(FanoutConfig{Attempts: 1}))
	outs := f.Push(0, []AgentRecord{{ID: "n1"}}, func(AgentRecord) AgentClient { return ag }, "v1", []byte(`{}`))
	if len(outs) != 1 || !outs[0].OK {
		t.Fatalf("push failed: %+v", outs)
	}
	if len(ag.traceparents) != 0 {
		t.Errorf("untraced push used ProposeTraced: %v", ag.traceparents)
	}
}

// TestFanoutBreakerHookFiresOnFreshOpen: the hook fires when the breaker
// freshly opens, once, and wiring it to a flight recorder captures the
// moment.
func TestFanoutBreakerHookFiresOnFreshOpen(t *testing.T) {
	f := NewFanout(noSleep(FanoutConfig{Attempts: 1, BreakerThreshold: 2, BreakerCooldown: 10 * time.Second}))
	var opened []string
	f.SetBreakerHook(func(now time.Duration, agent string) { opened = append(opened, agent) })
	down := &fakeAgent{down: true}
	conns := func(AgentRecord) AgentClient { return down }
	rec := []AgentRecord{{ID: "n1"}}

	f.Push(0, rec, conns, "v1", nil) // fail 1
	if len(opened) != 0 {
		t.Fatalf("hook fired before threshold: %v", opened)
	}
	f.Push(time.Second, rec, conns, "v1", nil) // fail 2: fresh open
	if len(opened) != 1 || opened[0] != "n1" {
		t.Fatalf("hook after threshold: %v, want [n1]", opened)
	}
	outs := f.Push(2*time.Second, rec, conns, "v1", nil) // open: skipped, no re-fire
	if !outs[0].Skipped || len(opened) != 1 {
		t.Fatalf("open breaker: outs=%+v opened=%v", outs, opened)
	}
}
