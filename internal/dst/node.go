package dst

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/faults"
	"lachesis/internal/fleet"
	"lachesis/internal/guard"
	"lachesis/internal/span"
)

// Node SLO baseline (the same shape the harness fleet experiments use:
// p95 grows with the backlog the inverted-priority signature builds up).
const (
	nodeBaseP95  = 0.010 // seconds
	nodeBaseTput = 1000  // tuples/s
)

// memOS records nice values in memory; the SLO model reads them back.
type memOS struct {
	mu    sync.Mutex
	nices map[int]int
}

func newMemOS() *memOS { return &memOS{nices: make(map[int]int)} }

func (o *memOS) SetNice(tid, nice int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.nices[tid] = nice
	return nil
}
func (o *memOS) EnsureCgroup(string) error    { return nil }
func (o *memOS) SetShares(string, int) error  { return nil }
func (o *memOS) MoveThread(int, string) error { return nil }

func (o *memOS) nice(tid int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.nices[tid]
}

// snapshot copies the current tid -> nice map (the audit-replay
// invariant's ground truth).
func (o *memOS) snapshot() map[int]int {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[int]int, len(o.nices))
	for k, v := range o.nices {
		out[k] = v
	}
	return out
}

// memPolicyStore is an in-memory guard.PolicyStore so the invariants can
// read exactly what the node holds as last-good.
type memPolicyStore struct {
	mu   sync.Mutex
	raw  []byte
	have bool
}

func (s *memPolicyStore) SaveLastGoodPolicy(config []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.raw = append([]byte(nil), config...)
	s.have = true
	return nil
}

func (s *memPolicyStore) LoadLastGoodPolicy() ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.raw...), s.have, nil
}

// nodeDriver exposes a node's physical operators; the static policies
// fetch no metrics.
type nodeDriver struct {
	entities []core.Entity
}

var _ core.Driver = (*nodeDriver)(nil)

func (d *nodeDriver) Name() string            { return "node" }
func (d *nodeDriver) Entities() []core.Entity { return d.entities }
func (d *nodeDriver) Provides(string) bool    { return false }
func (d *nodeDriver) Fetch(metric string, _ time.Duration) (core.EntityValues, error) {
	return nil, &core.UnknownMetricError{Metric: metric, Driver: "node"}
}

// nodePolicy builds a named static heavy/light policy — the same
// high-level-policy + transformation-rule path lachesisd runs.
func nodePolicy(name string, pri core.LogicalSchedule) core.Policy {
	return core.Transformed(&core.StaticLogicalPolicy{
		PolicyName: name, Priorities: pri,
	}, core.MaxPriorityRule)
}

// node is one simulated lachesisd agent under test: a real
// core.Middleware with per-binding heavy/light operator pairs, a local
// canary controller, an epoch gate, a fault-injected OS chain, and an
// audited write path. It implements fleet.AgentClient, so the
// coordinator replicas talk to it the way they would POST to a live
// daemon.
type node struct {
	id   string
	opts Options

	// mu serializes the decision cycle and the coordinator's calls,
	// exactly like lachesisd's step/HTTP mutex.
	mu      sync.Mutex
	mw      *core.Middleware
	canary  *guard.Canary
	store   *memPolicyStore
	osi     *memOS
	gate    *fleet.EpochGate
	pairs   [][2]int
	now     time.Duration
	backlog float64

	// audit captures every attempted kernel write (the audit-replay
	// invariant folds it against osi).
	audit *core.MemorySink

	// staged counts successful canary stagings keyed by version+payload
	// (the double-push invariant's ledger).
	staged map[string]int

	// promotions/rollbacks mirror the canary counters so tick can log
	// local decisions as events.
	promotions int64
	rollbacks  int64

	// buf collects this node's events; the world drains it each tick.
	buf *eventBuffer
	// tick number for event stamps (set by the world before stepping;
	// reads from fan-out goroutines are guarded by mu).
	tickNo int
}

var (
	_ fleet.AgentClient = (*node)(nil)
	_ fleet.TracedAgent = (*node)(nil)
	_ fleet.FencedAgent = (*node)(nil)
)

// newNode builds an agent with the schedule's binding count, local
// canary window, and OS-outage fault windows checked against clock.
func newNode(id string, s Schedule, af AgentFaults, clock func() time.Duration, opts Options, spans *span.Recorder) (*node, error) {
	n := &node{
		id: id, opts: opts, osi: newMemOS(), store: &memPolicyStore{},
		audit: &core.MemorySink{}, staged: map[string]int{}, buf: &eventBuffer{},
	}
	n.gate, _ = fleet.NewEpochGate(id, nil)
	n.mw = core.NewMiddleware(nil)
	n.canary = guard.NewCanary(guard.Config{Fraction: 0.5, Window: s.LocalWindow})
	n.canary.SetSampler(func([]string) guard.SLOSample { return n.sloLocked() })
	n.canary.SetPolicyStore(n.store)
	if spans != nil {
		n.canary.SetSpans(spans)
	}

	trail := core.NewAuditTrail(64, n.audit)
	osChain := core.AuditOS(faults.WrapOS(n.osi, faults.OSPlan{
		Outages: faultWindows(af.OSOutages),
		Clock:   clock,
	}), trail)
	tr := core.NewNiceTranslator(osChain)

	drv := &nodeDriver{}
	stable := core.LogicalSchedule{"heavy": 10, "light": 1}
	for b := 0; b < s.Bindings; b++ {
		q := fmt.Sprintf("q%03d", b)
		hTid, lTid := 2*b+1, 2*b+2
		drv.entities = append(drv.entities,
			core.Entity{Name: q + ".heavy", Driver: "node", Query: q, Thread: hTid, Logical: []string{"heavy"}},
			core.Entity{Name: q + ".light", Driver: "node", Query: q, Thread: lTid, Logical: []string{"light"}},
		)
		n.pairs = append(n.pairs, [2]int{hTid, lTid})
		slot := n.canary.Slot(nodePolicy(fmt.Sprintf("stable@%s/%s", id, q), stable))
		if err := n.mw.Bind(core.Binding{
			Policy: slot, Translator: tr,
			Drivers: []core.Driver{drv}, Queries: []string{q},
			Period: time.Second,
		}); err != nil {
			return nil, fmt.Errorf("%s: bind %s: %w", id, q, err)
		}
	}
	return n, nil
}

// sloLocked is the node-wide SLO sample (caller holds n.mu). Canary and
// control slots share it, so the LOCAL canary cannot convict a
// node-wide degradation — catching that is the fleet coordinator's job.
func (n *node) sloLocked() guard.SLOSample {
	f := 1 + n.backlog
	return guard.SLOSample{LatencyP95: nodeBaseP95 * f, Throughput: nodeBaseTput / f, OK: true}
}

// tick runs one decision cycle and logs local canary decisions.
func (n *node) tick(tickNo int, now time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tickNo = tickNo
	n.now = now
	_, _ = n.mw.Step(now) // transient OS faults surface as step errors; the next cycle retries
	inv := n.invertedLocked()
	if inv > 0 {
		n.backlog += float64(inv) / float64(len(n.pairs))
	} else if n.backlog > 0 {
		if n.backlog--; n.backlog < 0 {
			n.backlog = 0
		}
	}
	n.canary.Tick(now)
	st := n.canary.Status()
	if st.Promotions > n.promotions {
		n.promotions = st.Promotions
		n.buf.add(tickNo, n.id, EvLocalPromote, st.LastReason)
	}
	if st.Rollbacks > n.rollbacks {
		n.rollbacks = st.Rollbacks
		n.buf.add(tickNo, n.id, EvLocalRollbck, st.LastReason)
	}
}

func (n *node) invertedLocked() int {
	inv := 0
	for _, p := range n.pairs {
		if n.osi.nice(p[0]) > n.osi.nice(p[1]) {
			inv++
		}
	}
	return inv
}

// Propose implements fleet.AgentClient (the agent-side POST /policy).
func (n *node) Propose(payload []byte) (guard.Status, error) {
	return n.ProposeTraced(payload, "")
}

// ProposeTraced implements fleet.TracedAgent.
func (n *node) ProposeTraced(payload []byte, traceparent string) (guard.Status, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var pc struct {
		Priorities map[string]float64 `json:"priorities"`
		Version    string             `json:"version"`
	}
	if err := json.Unmarshal(payload, &pc); err != nil {
		return guard.Status{}, err
	}
	if len(pc.Priorities) == 0 {
		return guard.Status{}, errors.New("policy has no priorities")
	}
	name := pc.Version
	if name == "" {
		name = fmt.Sprintf("reload-%d", len(n.staged)+1)
	}
	cand := nodePolicy(name, core.LogicalSchedule(pc.Priorities))
	parent, _ := span.ParseTraceparent(traceparent)
	if err := n.canary.ProposeCtx(n.now, name, cand, payload, parent); err != nil {
		return guard.Status{}, &fleet.ConflictError{Agent: n.id, Body: err.Error()}
	}
	n.staged[name+"|"+string(payload)]++
	n.buf.add(n.tickNo, n.id, EvStaged, name)
	return n.canary.Status(), nil
}

// ProposeFenced implements fleet.FencedAgent: the epoch gate lachesisd
// runs on POST /policy's X-Lachesis-Epoch header. Options.DisableFencing
// is the injected regression: the admission check is skipped, so a
// deposed coordinator's stale pushes land as if they were current.
func (n *node) ProposeFenced(payload []byte, traceparent string, epoch int64) (guard.Status, error) {
	if !n.opts.DisableFencing {
		if err := n.gate.Admit(epoch); err != nil {
			var fe *fleet.FencedError
			if errors.As(err, &fe) {
				n.mu.Lock()
				n.buf.add(n.tickNo, n.id, EvGateReject, fmt.Sprintf("push epoch %d < observed %d", fe.Got, fe.Have))
				n.mu.Unlock()
			}
			return guard.Status{}, err
		}
	} else {
		n.gate.Observe(epoch) // ratchet still tracks, only enforcement is off
	}
	return n.ProposeTraced(payload, traceparent)
}

// Status implements fleet.AgentClient.
func (n *node) Status() (guard.Status, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.canary.Status(), nil
}

// SLO implements fleet.AgentClient (the coordinator's /metrics scrape).
func (n *node) SLO() (guard.SLOSample, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sloLocked(), nil
}

// stagedCount returns how many times the exact version+payload pair was
// staged on this node.
func (n *node) stagedCount(version string, payload []byte) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.staged[version+"|"+string(payload)]
}

// lastGood returns the node's persisted last-good payload (nil if none).
func (n *node) lastGood() []byte {
	raw, ok, _ := n.store.LoadLastGoodPolicy()
	if !ok {
		return nil
	}
	return raw
}

func (n *node) inverted() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.invertedLocked()
}

func (n *node) gateEpoch() int64 { return n.gate.Epoch() }
