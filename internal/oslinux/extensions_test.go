package oslinux

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeExtSystem adds scheduler control to the fake.
type fakeExtSystem struct {
	*fakeSystem
	sched map[int]int
}

var _ ExtendedSystem = (*fakeExtSystem)(nil)

func newFakeExtSystem() *fakeExtSystem {
	return &fakeExtSystem{fakeSystem: newFakeSystem(), sched: make(map[int]int)}
}

func (f *fakeExtSystem) SetScheduler(tid, prio int) error {
	if f.fail != nil {
		return f.fail
	}
	f.sched[tid] = prio
	return nil
}

func TestSetQuotaV1(t *testing.T) {
	sys := newFakeSystem()
	c := newControl(t, sys, V1)
	if err := c.EnsureCgroup("g"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetQuota("g", 30*time.Millisecond, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := sys.writes["/sys/fs/cgroup/cpu/lachesis/g/cpu.cfs_quota_us"]; got != "30000" {
		t.Errorf("quota = %q", got)
	}
	if got := sys.writes["/sys/fs/cgroup/cpu/lachesis/g/cpu.cfs_period_us"]; got != "100000" {
		t.Errorf("period = %q", got)
	}
	// Removing the quota writes -1.
	if err := c.SetQuota("g", 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := sys.writes["/sys/fs/cgroup/cpu/lachesis/g/cpu.cfs_quota_us"]; got != "-1" {
		t.Errorf("removed quota = %q", got)
	}
}

func TestSetQuotaV2(t *testing.T) {
	sys := newFakeSystem()
	c := newControl(t, sys, V2)
	if err := c.SetQuota("g", 25*time.Millisecond, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := sys.writes["/sys/fs/cgroup/cpu/lachesis/g/cpu.max"]; got != "25000 100000" {
		t.Errorf("cpu.max = %q", got)
	}
	if err := c.SetQuota("g", 0, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := sys.writes["/sys/fs/cgroup/cpu/lachesis/g/cpu.max"]; got != "max 50000" {
		t.Errorf("unlimited cpu.max = %q", got)
	}
}

func TestSetRealtimeAndNormal(t *testing.T) {
	sys := newFakeExtSystem()
	c, err := New(Config{Root: "/cg", System: sys})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetRealtime(42, 200); err != nil {
		t.Fatal(err)
	}
	if sys.sched[42] != 99 {
		t.Errorf("rt prio = %d, want clamped 99", sys.sched[42])
	}
	if err := c.SetNormal(42); err != nil {
		t.Fatal(err)
	}
	if sys.sched[42] != 0 {
		t.Errorf("normal prio = %d", sys.sched[42])
	}
}

func TestRealtimeRequiresExtendedSystem(t *testing.T) {
	c := newControl(t, newFakeSystem(), V1) // plain System, no SetScheduler
	if err := c.SetRealtime(1, 10); err == nil {
		t.Error("plain system should not support RT")
	}
	if err := c.SetNormal(1); err == nil {
		t.Error("plain system should not support RT")
	}
}

func TestDryRunSupportsExtensions(t *testing.T) {
	var buf bytes.Buffer
	c, err := New(Config{Root: "/cg", System: DryRunSystem{W: &buf}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetQuota("g", 10*time.Millisecond, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRealtime(7, 50); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNormal(7); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cfs_quota_us", "chrt -f -p 50 7", "chrt -o -p 0 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("dry-run missing %q:\n%s", want, out)
		}
	}
}
