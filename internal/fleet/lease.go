package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/guard"
	"lachesis/internal/telemetry"
)

// EpochHeader carries the leader's fencing epoch on policy pushes
// (coordinator -> agent POST /policy) and on coordinator lease/register
// responses (so agents and peers learn the current epoch). Absent or
// zero means "unfenced": a local operator proposal, which is always
// admitted.
const EpochHeader = "X-Lachesis-Epoch"

// FencedError reports that a push was rejected because it carried a
// stale fencing epoch: the receiver has already seen a newer leader.
// It is NOT transient — retrying the same epoch can never succeed, so
// the fan-out surfaces it immediately and the deposed coordinator must
// step down instead of retrying.
type FencedError struct {
	// Agent is the rejecting agent's ID when known.
	Agent string
	// Have is the newest epoch the receiver has observed (0 if unknown,
	// e.g. on the client side of an HTTP 403).
	Have int64
	// Got is the stale epoch the rejected push carried.
	Got int64
	// Body is the raw rejection body for HTTP rejections.
	Body string
}

// Error implements error.
func (e *FencedError) Error() string {
	who := e.Agent
	if who == "" {
		who = "agent"
	}
	if e.Have > 0 {
		return fmt.Sprintf("fleet: %s: fenced: push epoch %d < observed epoch %d", who, e.Got, e.Have)
	}
	if e.Body != "" {
		return fmt.Sprintf("fleet: %s: fenced: push epoch %d rejected: %s", who, e.Got, e.Body)
	}
	return fmt.Sprintf("fleet: %s: fenced: push epoch %d rejected", who, e.Got)
}

// IsFenced reports whether err is (or wraps) a FencedError.
func IsFenced(err error) bool {
	var fe *FencedError
	return errors.As(err, &fe)
}

// FencedAgent is an optional extension of AgentClient: clients that can
// carry a fencing epoch alongside a policy push implement it. The
// HTTPAgent sends the epoch as the EpochHeader request header; the
// harness's in-process nodes run it through their EpochGate directly.
// Epoch 0 must behave exactly like ProposeTraced (unfenced).
type FencedAgent interface {
	// ProposeFenced is ProposeTraced plus the fencing epoch of the
	// pushing leader's lease.
	ProposeFenced(payload []byte, traceparent string, epoch int64) (guard.Status, error)
}

// LeaseInfo is the leader lease as published on GET /lease, inside
// replication checkpoints, and in the persisted lease file. Staleness
// is never judged by comparing clocks across processes: RenewedSeq
// increments on every renewal, and each observer tracks, against its
// own clock, how long ago the (Epoch, RenewedSeq) pair last advanced.
type LeaseInfo struct {
	// Epoch is the fencing token: it increases by at least one on every
	// acquisition, so of two leaders the one with the higher epoch wins.
	Epoch int64 `json:"epoch"`
	// Holder is the coordinator ID holding the lease.
	Holder string `json:"holder,omitempty"`
	// RenewedSeq increments on every renewal by the holder.
	RenewedSeq int64 `json:"renewed_seq"`
	// TTLMs is the holder's declared lease TTL: observers that see no
	// renewal for this long (on their own clock) treat the lease as
	// expired.
	TTLMs int64 `json:"ttl_ms"`
	// Released marks a graceful abdication: observers may promote
	// immediately instead of waiting out the TTL.
	Released bool `json:"released,omitempty"`
}

// TTL returns the lease's declared TTL as a duration.
func (l LeaseInfo) TTL() time.Duration { return time.Duration(l.TTLMs) * time.Millisecond }

// newer reports whether o advances on l (higher epoch, or same epoch
// with a higher renewal sequence or a fresh release flag).
func (l LeaseInfo) newer(o LeaseInfo) bool {
	if o.Epoch != l.Epoch {
		return o.Epoch > l.Epoch
	}
	return o.RenewedSeq > l.RenewedSeq || (o.Released && !l.Released)
}

// LeaseConfig tunes a coordinator's leader-lease state machine.
type LeaseConfig struct {
	// ID is this coordinator's stable identity (lease holder name).
	ID string
	// TTL is the lease lifetime observers wait out before declaring the
	// leader dead (default 3s). The leader must renew (tick) well inside
	// it.
	TTL time.Duration
}

// LeaseManager is one coordinator's view of the fleet leader lease. It
// is both sides of the protocol: when leading it renews and publishes
// the lease; when standing by it observes the leader's lease (via
// replication checkpoints or GET /lease polls) and reports expiry so
// the daemon can promote. Epochs are monotonic across restarts when a
// Store is attached — the persisted lease file (fsync'd atomic rename,
// same ritual as the registry) anchors the next acquisition above
// every epoch this process has ever seen.
type LeaseManager struct {
	cfg LeaseConfig

	mu      sync.Mutex
	leading bool
	cur     LeaseInfo // our lease while leading
	seen    LeaseInfo // newest lease observed from anyone (incl. our own)
	seenAt  time.Duration
	store   *Store
	trail   *core.AuditTrail

	acquisitions int64
	depositions  int64

	gLeader *telemetry.Gauge
	gEpoch  *telemetry.Gauge
}

// NewLeaseManager builds a lease state machine (zero TTL selects 3s).
// The manager starts as a standby with its staleness clock anchored at
// 0; call Restore at startup to anchor it at the current instant and
// load any persisted epoch.
func NewLeaseManager(cfg LeaseConfig) *LeaseManager {
	if cfg.TTL <= 0 {
		cfg.TTL = 3 * time.Second
	}
	return &LeaseManager{cfg: cfg}
}

// TTL returns the effective lease TTL.
func (m *LeaseManager) TTL() time.Duration { return m.cfg.TTL }

// Holder returns this coordinator's HA identity (the holder name it
// writes into leases it acquires).
func (m *LeaseManager) Holder() string { return m.cfg.ID }

// SetStore attaches crash-safe lease persistence: acquisitions and
// renewals are saved, and Restore loads the file so epochs stay
// monotonic across restarts. nil disables.
func (m *LeaseManager) SetStore(s *Store) { m.mu.Lock(); m.store = s; m.mu.Unlock() }

// SetAudit installs an audit trail for lease transitions. nil disables.
func (m *LeaseManager) SetAudit(trail *core.AuditTrail) { m.mu.Lock(); m.trail = trail; m.mu.Unlock() }

// SetTelemetry registers the lease gauges: leader state (1 leading,
// 0 standby) and the current epoch.
func (m *LeaseManager) SetTelemetry(reg *telemetry.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gLeader = reg.Gauge(MetricFleetLeaderState)
	m.gEpoch = reg.Gauge(MetricFleetLeaseEpoch)
	m.exportLocked()
}

// Restore anchors the staleness clock at now and, with a store
// attached, loads the persisted lease so the next acquisition bumps
// past every epoch a previous incarnation held or observed. A restart
// never resumes leadership directly — the lease file proves what epoch
// we reached, not that the lease is still ours.
func (m *LeaseManager) Restore(now time.Duration) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seenAt = now
	if m.store == nil {
		return nil
	}
	info, ok, err := m.store.LoadLease()
	if err != nil {
		return err
	}
	if ok && m.seen.newer(info) {
		m.seen = info
	}
	return nil
}

// Acquire takes the lease with an epoch strictly above every epoch this
// manager has held or observed, persists it, and switches to leading.
// Exactly-one-leader rests on observation, not mutual exclusion: a
// standby only calls Acquire after the previous lease expired or was
// released, and fencing epochs make the overlap window safe when it
// guesses wrong (split brain).
func (m *LeaseManager) Acquire(now time.Duration) LeaseInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	epoch := m.seen.Epoch
	if m.cur.Epoch > epoch {
		epoch = m.cur.Epoch
	}
	m.cur = LeaseInfo{
		Epoch:      epoch + 1,
		Holder:     m.cfg.ID,
		RenewedSeq: 1,
		TTLMs:      m.cfg.TTL.Milliseconds(),
	}
	m.leading = true
	m.seen = m.cur
	m.seenAt = now
	m.acquisitions++
	m.persistLocked()
	m.record(now, fmt.Sprintf("lease acquired by %s (epoch %d, ttl %v)", m.cfg.ID, m.cur.Epoch, m.cfg.TTL))
	m.exportLocked()
	return m.cur
}

// Renew advances the lease's renewal sequence (leader tick). A no-op
// when not leading.
func (m *LeaseManager) Renew(now time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.leading {
		return
	}
	m.cur.RenewedSeq++
	m.seen = m.cur
	m.seenAt = now
	m.persistLocked()
}

// Release abdicates gracefully: the lease is marked released and
// persisted, leadership drops, and the returned info should be
// published to peers so a standby promotes immediately instead of
// waiting out the TTL.
func (m *LeaseManager) Release(now time.Duration) LeaseInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.leading {
		return m.seen
	}
	m.cur.Released = true
	m.leading = false
	m.seen = m.cur
	m.seenAt = now
	m.persistLocked()
	m.record(now, fmt.Sprintf("lease released by %s (epoch %d)", m.cfg.ID, m.cur.Epoch))
	m.exportLocked()
	return m.cur
}

// Observe folds in a lease seen from a peer (GET /lease poll or a
// replication checkpoint). Advancing observations reset the staleness
// clock. Observing an epoch above our own while leading means another
// coordinator won a newer lease: we are deposed and step down —
// returned as true so the daemon can demote itself.
func (m *LeaseManager) Observe(info LeaseInfo, now time.Duration) (deposed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.seen.newer(info) {
		m.seen = info
		m.seenAt = now
		m.persistLocked()
	}
	if m.leading && info.Epoch > m.cur.Epoch {
		deposed = true
		m.stepDownLocked(now, fmt.Sprintf("observed newer lease (epoch %d > ours %d, holder %s)",
			info.Epoch, m.cur.Epoch, info.Holder))
	}
	return deposed
}

// Deposed handles direct fencing feedback: an agent rejected our push
// because it has seen a newer epoch. While leading this steps down
// immediately (split-brain healing) and returns true.
func (m *LeaseManager) Deposed(now time.Duration, agent string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.leading {
		return false
	}
	m.stepDownLocked(now, fmt.Sprintf("push fenced by agent %s: a newer leader exists", agent))
	return true
}

// stepDownLocked drops leadership without releasing the lease (the
// newer leader already superseded it).
func (m *LeaseManager) stepDownLocked(now time.Duration, reason string) {
	m.leading = false
	m.depositions++
	m.record(now, fmt.Sprintf("stepping down (epoch %d): %s", m.cur.Epoch, reason))
	m.exportLocked()
}

// Expired reports, from this observer's own clock, whether the last
// observed lease is stale: released, or not renewed within its TTL
// (falling back to our configured TTL when the leader declared none).
// Always false while leading.
func (m *LeaseManager) Expired(now time.Duration) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.leading {
		return false
	}
	if m.seen.Released {
		return true
	}
	ttl := m.seen.TTL()
	if ttl <= 0 {
		ttl = m.cfg.TTL
	}
	return now-m.seenAt > ttl
}

// Leading reports whether this coordinator currently holds the lease.
func (m *LeaseManager) Leading() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.leading
}

// Info returns the lease to publish on GET /lease: our own while
// leading, else the newest observed one.
func (m *LeaseManager) Info() LeaseInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.leading {
		return m.cur
	}
	return m.seen
}

// FenceEpoch returns the epoch to stamp on fan-out pushes: our lease's
// epoch while leading, 0 (unfenced — but a standby never pushes)
// otherwise.
func (m *LeaseManager) FenceEpoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.leading {
		return m.cur.Epoch
	}
	return 0
}

// HighWaterEpoch returns the newest epoch this manager has ever held
// or observed. Unlike FenceEpoch — which deliberately reads 0 on a
// standby, because a non-leader must never stamp a push — this
// quantity only ratchets: within a process because observations fold
// in through newer() and acquisitions advance past it, and across a
// restart because every ratchet is persisted and re-anchors the next
// acquisition. Monotonicity checkers (the dst harness's
// epoch-monotonic invariant) should watch this, not FenceEpoch, or a
// legitimate deposition looks like an epoch decrease.
func (m *LeaseManager) HighWaterEpoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur.Epoch > m.seen.Epoch {
		return m.cur.Epoch
	}
	return m.seen.Epoch
}

// Acquisitions returns how often this manager took the lease.
func (m *LeaseManager) Acquisitions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acquisitions
}

// Depositions returns how often this manager was deposed while leading
// (newer lease observed, or a push fenced).
func (m *LeaseManager) Depositions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.depositions
}

// persistLocked saves the newest lease view through the store. m.seen
// is the right record even while leading (Acquire/Renew/Release all
// mirror m.cur into it): persisting m.cur instead would let a leader
// that just observed a newer epoch write its own stale lease to disk,
// breaking epoch monotonicity across a restart.
func (m *LeaseManager) persistLocked() {
	if m.store == nil {
		return
	}
	if err := m.store.SaveLease(m.seen); err != nil && m.trail != nil {
		m.trail.Record(core.AuditEvent{Kind: AuditKindFleet, Outcome: "WARNING: persisting lease failed: " + err.Error()})
	}
}

// exportLocked refreshes the leader gauges (caller holds m.mu).
func (m *LeaseManager) exportLocked() {
	if m.gLeader == nil {
		return
	}
	if m.leading {
		m.gLeader.Set(1)
		m.gEpoch.Set(float64(m.cur.Epoch))
	} else {
		m.gLeader.Set(0)
		m.gEpoch.Set(float64(m.seen.Epoch))
	}
}

// record emits a fleet audit event (caller holds m.mu).
func (m *LeaseManager) record(now time.Duration, outcome string) {
	if m.trail != nil {
		m.trail.Record(core.AuditEvent{At: now, Kind: AuditKindFleet, Outcome: outcome})
	}
}

// EpochStore persists the highest fencing epoch an agent has observed.
// reconcile.Store implements it beside the agent's last-good policy, so
// fencing survives agent restarts.
type EpochStore interface {
	// SaveFleetEpoch durably records the epoch.
	SaveFleetEpoch(epoch int64) error
	// LoadFleetEpoch reads the recorded epoch; ok is false when none was
	// saved (or the file is corrupt — fencing degrades open rather than
	// blocking a node from ever accepting policy again).
	LoadFleetEpoch() (epoch int64, ok bool, err error)
}

// EpochGate is the agent side of fencing: it remembers the highest
// coordinator epoch this agent has observed and rejects pushes carrying
// an older one, so a deposed leader's stale writes can never clobber
// the new leader's rollout. Epoch 0 (no header) is always admitted —
// local operator proposals are unfenced by design; the threat model is
// a stale *coordinator*, not a hostile one.
type EpochGate struct {
	name string

	mu       sync.Mutex
	epoch    int64
	store    EpochStore
	trail    *core.AuditTrail
	rejected int64

	ctrRejects *telemetry.Counter
}

// NewEpochGate builds a gate for one agent (name appears in rejection
// errors and audit events) and loads the persisted epoch from store
// (nil store keeps the epoch in memory only).
func NewEpochGate(name string, store EpochStore) (*EpochGate, error) {
	g := &EpochGate{name: name, store: store}
	if store != nil {
		e, ok, err := store.LoadFleetEpoch()
		if err != nil {
			return nil, err
		}
		if ok {
			g.epoch = e
		}
	}
	return g, nil
}

// SetAudit installs an audit trail for fenced rejections. nil disables.
func (g *EpochGate) SetAudit(trail *core.AuditTrail) { g.mu.Lock(); g.trail = trail; g.mu.Unlock() }

// SetTelemetry registers the fenced-rejection counter.
func (g *EpochGate) SetTelemetry(reg *telemetry.Registry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ctrRejects = reg.Counter(MetricFleetFencedRejectsTotal)
}

// Admit checks a push's fencing epoch: 0 is unfenced and always
// admitted; an epoch at or above the highest seen is admitted and
// ratchets (and persists) the high-water mark; a lower epoch returns a
// *FencedError. Persistence failure does not block admission — the
// ratchet stays in memory and a warning is recorded.
func (g *EpochGate) Admit(epoch int64) error {
	if epoch <= 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if epoch < g.epoch {
		g.rejected++
		if g.ctrRejects != nil {
			g.ctrRejects.Inc()
		}
		err := &FencedError{Agent: g.name, Have: g.epoch, Got: epoch}
		if g.trail != nil {
			g.trail.Record(core.AuditEvent{Kind: AuditKindFleet, Outcome: "fenced: " + err.Error()})
		}
		return err
	}
	g.ratchetLocked(epoch)
	return nil
}

// Observe ratchets the high-water mark without admitting anything — the
// path for epochs learned out-of-band (register/heartbeat responses),
// where a stale value is simply ignored.
func (g *EpochGate) Observe(epoch int64) {
	if epoch <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ratchetLocked(epoch)
}

// ratchetLocked raises (never lowers) the stored epoch and persists it.
func (g *EpochGate) ratchetLocked(epoch int64) {
	if epoch <= g.epoch {
		return
	}
	g.epoch = epoch
	if g.store != nil {
		if err := g.store.SaveFleetEpoch(epoch); err != nil && g.trail != nil {
			g.trail.Record(core.AuditEvent{Kind: AuditKindFleet,
				Outcome: "WARNING: persisting fleet epoch failed: " + err.Error()})
		}
	}
}

// Epoch returns the highest epoch observed so far.
func (g *EpochGate) Epoch() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Rejected returns how many pushes this gate has fenced off.
func (g *EpochGate) Rejected() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rejected
}
