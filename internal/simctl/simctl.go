// Package simctl binds the Lachesis core to the simulated node: it adapts
// simos.Kernel to core.OSInterface (nice + cgroup control) and runs the
// middleware main loop as a simulated thread, so Lachesis' own (small) CPU
// footprint is part of every experiment, as in the paper (§6.7: around 1%
// CPU).
package simctl

import (
	"fmt"
	"sync"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/simos"
	"lachesis/internal/telemetry"
)

// OSAdapter implements core.OSInterface on a simulated kernel. Cgroups
// created by translators live under a dedicated "lachesis" root cgroup.
// The adapter caches nice values and thread placements to avoid redundant
// control operations, like the real middleware avoids redundant syscalls.
// All operations are serialized by an internal mutex so the adapter can
// sit under the middleware's parallel apply pipeline; the simulated kernel
// itself stays single-threaded behind that lock.
type OSAdapter struct {
	kernel *simos.Kernel
	root   simos.CgroupID

	// mu guards the cache maps, the op counters, and — by serializing
	// every control call — the single-threaded simulated kernel beneath.
	mu     sync.Mutex
	groups map[string]simos.CgroupID
	nices  map[int]int
	placed map[int]string
	// orig remembers each thread's cgroup before Lachesis first moved it,
	// so RestoreThread can undo the placement.
	orig map[int]simos.CgroupID

	// ControlOps counts effective (non-cached) control operations. It is
	// written under mu; read it only after the run has quiesced (e.g.
	// after Kernel.Run returns).
	ControlOps int64
	// CachedOps counts control calls absorbed by the adapter's cache
	// (redundant re-applies that never reached the kernel). Same reading
	// rule as ControlOps.
	CachedOps int64

	// Cached instruments (nil until SetTelemetry).
	ctrOps    *telemetry.Counter
	ctrCached *telemetry.Counter
}

var _ core.OSInterface = (*OSAdapter)(nil)

// NewOSAdapter creates the adapter and its root cgroup.
func NewOSAdapter(k *simos.Kernel) (*OSAdapter, error) {
	root, err := k.CreateCgroup(simos.RootCgroup, "lachesis")
	if err != nil {
		return nil, fmt.Errorf("lachesis root cgroup: %w", err)
	}
	return &OSAdapter{
		kernel: k,
		root:   root,
		groups: make(map[string]simos.CgroupID),
		nices:  make(map[int]int),
		placed: make(map[int]string),
		orig:   make(map[int]simos.CgroupID),
	}, nil
}

// SetNice implements core.OSInterface.
func (a *OSAdapter) SetNice(tid int, nice int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if cur, ok := a.nices[tid]; ok && cur == nice {
		a.countCached()
		return nil
	}
	if err := a.kernel.SetNice(simos.ThreadID(tid), nice); err != nil {
		a.evictIfVanished(tid, err)
		return classify(err)
	}
	a.nices[tid] = nice
	a.countOp()
	return nil
}

// EnsureCgroup implements core.OSInterface.
func (a *OSAdapter) EnsureCgroup(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.groups[name]; ok {
		a.countCached()
		return nil
	}
	id, err := a.kernel.CreateCgroup(a.root, name)
	if err != nil {
		return classify(err)
	}
	a.groups[name] = id
	a.countOp()
	return nil
}

// SetShares implements core.OSInterface.
func (a *OSAdapter) SetShares(cgroupName string, shares int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	id, ok := a.groups[cgroupName]
	if !ok {
		return fmt.Errorf("simctl: unknown cgroup %q", cgroupName)
	}
	if cur, err := a.kernel.Shares(id); err == nil && cur == simos.ClampShares(shares) {
		a.countCached()
		return nil
	}
	if err := a.kernel.SetShares(id, shares); err != nil {
		return classify(err)
	}
	a.countOp()
	return nil
}

// MoveThread implements core.OSInterface.
func (a *OSAdapter) MoveThread(tid int, cgroupName string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.placed[tid] == cgroupName {
		a.countCached()
		return nil
	}
	id, ok := a.groups[cgroupName]
	if !ok {
		return fmt.Errorf("simctl: unknown cgroup %q", cgroupName)
	}
	if _, tracked := a.orig[tid]; !tracked {
		if info, err := a.kernel.ThreadInfo(simos.ThreadID(tid)); err == nil {
			a.orig[tid] = info.Cgroup
		}
	}
	if err := a.kernel.MoveThread(simos.ThreadID(tid), id); err != nil {
		a.evictIfVanished(tid, err)
		return classify(err)
	}
	a.placed[tid] = cgroupName
	a.countOp()
	return nil
}

// Cgroup returns the kernel id of a Lachesis-managed cgroup, letting
// tests cross-check applied shares against kernel state.
func (a *OSAdapter) Cgroup(name string) (simos.CgroupID, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	id, ok := a.groups[name]
	return id, ok
}

// Runner executes a core.Middleware as a simulated thread. Each main-loop
// iteration consumes simulated CPU proportional to the work done, then
// sleeps until the next policy is due (the GCD sleep of Algorithm 1, done
// event-driven).
type Runner struct {
	mw *core.Middleware
	// Errs counts Step errors (policies keep running; errors are counted,
	// matching a long-running daemon that logs and continues).
	Errs int64
	// LastErr retains the most recent error for diagnostics.
	LastErr error
	// PostStep, when set, runs after every Step with the step's virtual
	// time — the hook a guarded stack uses to tick its canary controller
	// and watchdog cycle accounting, mirroring the daemon's main loop.
	// Set before the kernel runs.
	PostStep func(now time.Duration)
}

// Per-iteration CPU cost model for the middleware thread: a base cost plus
// per-policy and per-entity work (metric fetch + normalization + control
// calls). Calibrated so the footprint lands near the paper's ~1% CPU for
// typical deployments.
const (
	stepBaseCost      = 100 * time.Microsecond
	stepPerPolicyCost = 150 * time.Microsecond
	stepPerEntityCost = 8 * time.Microsecond
)

// StartMiddleware spawns the middleware thread on kernel k in its own
// cgroup. It returns the runner for error inspection.
func StartMiddleware(k *simos.Kernel, mw *core.Middleware) (*Runner, error) {
	cg, err := k.CreateCgroup(simos.RootCgroup, "lachesis-daemon")
	if err != nil {
		return nil, fmt.Errorf("middleware cgroup: %w", err)
	}
	r := &Runner{mw: mw}
	if _, err := k.Spawn("lachesis", cg, simos.RunnerFunc(r.run)); err != nil {
		return nil, fmt.Errorf("spawn middleware: %w", err)
	}
	return r, nil
}

func (r *Runner) run(ctx *simos.RunContext, granted time.Duration) simos.Decision {
	now := ctx.Now()
	stats, err := r.mw.Step(now)
	if err != nil {
		r.Errs++
		r.LastErr = err
	}
	if r.PostStep != nil {
		r.PostStep(now)
	}
	cost := stepBaseCost +
		time.Duration(stats.PoliciesRun)*stepPerPolicyCost +
		time.Duration(stats.Entities)*stepPerEntityCost
	if cost > granted {
		cost = granted
	}
	wake := stats.Next
	if wake <= now+cost {
		wake = now + cost + time.Millisecond
	}
	return simos.Decision{Used: cost, Action: simos.ActionSleep, WakeAt: wake}
}
