package reconcile

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// populate writes a small state and returns the FS holding it.
func populate(t *testing.T) *MemFS {
	t.Helper()
	fs := NewMemFS()
	state, err := NewDesiredState(NewStore(fs, nil))
	if err != nil {
		t.Fatal(err)
	}
	state.SetNice(11, 100, -5, "a")
	state.SetNice(12, 200, 3, "b")
	state.SetShares("q1", 512)
	if err := state.Err(); err != nil {
		t.Fatal(err)
	}
	return fs
}

func loadCounting(t *testing.T, fs *MemFS) (*DesiredState, *int) {
	t.Helper()
	warnings := 0
	store := NewStore(fs, func(string, ...any) { warnings++ })
	state, err := NewDesiredState(store)
	if err != nil {
		t.Fatal(err)
	}
	return state, &warnings
}

// TestStoreTruncatedTrailingLogLine is the crash-torn-write case: the
// daemon died mid-append. The partial trailing line is skipped with a
// warning, every complete line before it wins, and startup never fails.
func TestStoreTruncatedTrailingLogLine(t *testing.T) {
	fs := populate(t)
	log := fs.FileBytes(LogFile)
	// Chop the final record in half (no trailing newline either).
	lines := bytes.Split(bytes.TrimSuffix(log, []byte("\n")), []byte("\n"))
	last := lines[len(lines)-1]
	torn := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
	torn = append(torn, last[:len(last)/2]...)
	fs.SetFile(LogFile, torn)

	state, warnings := loadCounting(t, fs)
	if *warnings == 0 {
		t.Fatal("torn trailing line produced no warning")
	}
	// The torn record (shares/q1) is lost; the two complete ones survive.
	if _, ok := state.Nice(11); !ok {
		t.Fatal("complete record before the torn line was lost")
	}
	if _, ok := state.Nice(12); !ok {
		t.Fatal("complete record before the torn line was lost")
	}
	if _, ok := state.Shares("q1"); ok {
		t.Fatal("torn record was half-applied")
	}
}

func TestStoreGarbageLinesSkipped(t *testing.T) {
	fs := populate(t)
	// Checkpoint so we have a snapshot to corrupt too.
	state, _ := loadCounting(t, fs)
	if err := state.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap := fs.FileBytes(SnapshotFile)
	fs.SetFile(SnapshotFile, append(snap, []byte("not json at all\x00\xff\n{\"kind\":\"\"}\n")...))
	fs.SetFile(LogFile, []byte("{\"op\":\"teleport\"}\n%%%%\n"))

	reloaded, warnings := loadCounting(t, fs)
	if *warnings < 3 {
		t.Fatalf("expected >=3 warnings (garbage snap line, empty-kind entry, unknown op, garbage log), got %d", *warnings)
	}
	if reloaded.Len() != 3 {
		t.Fatalf("valid entries lost: len=%d want 3", reloaded.Len())
	}
}

func TestStoreInvalidHeaderDegradesToLogReplay(t *testing.T) {
	fs := populate(t)
	state, _ := loadCounting(t, fs)
	if err := state.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Smash the snapshot header. The snapshot is discarded, but the log
	// (empty after checkpoint) plus a fresh mutation must still load.
	snap := fs.FileBytes(SnapshotFile)
	fs.SetFile(SnapshotFile, append([]byte("CORRUPT HEADER\n"), snap...))
	state2, warnings := loadCounting(t, fs)
	if *warnings == 0 {
		t.Fatal("corrupt header produced no warning")
	}
	// Snapshot content is unreadable past the bad header policy: entries
	// after line 1 are still parsed individually (lines 2.. are valid
	// JSON entries), so data survives even a smashed header.
	if state2.Len() == 0 {
		t.Fatal("corrupt header wiped all state despite valid entry lines")
	}
}

// TestStoreCompactionReplayIdempotent simulates a crash between snapshot
// rename and log truncation: the log still holds ops already folded into
// the snapshot. Replaying them over the snapshot must be a no-op.
func TestStoreCompactionReplayIdempotent(t *testing.T) {
	fs := populate(t)
	logBefore := fs.FileBytes(LogFile)
	state, _ := loadCounting(t, fs)
	if err := state.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the pre-compaction log, as if truncation never happened.
	fs.SetFile(LogFile, logBefore)

	reloaded, _ := loadCounting(t, fs)
	if reloaded.Len() != 3 {
		t.Fatalf("idempotent replay broke: len=%d", reloaded.Len())
	}
	if e, _ := reloaded.Nice(11); e.Value != -5 || e.Start != 100 {
		t.Fatalf("entry corrupted by double replay: %+v", e)
	}
}

func TestStoreLargeStateRoundTrip(t *testing.T) {
	fs := NewMemFS()
	state, err := NewDesiredState(NewStore(fs, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 300; i++ {
		state.SetNice(i, uint64(i), i%40-20, fmt.Sprintf("op-%d", i))
		if i%3 == 0 {
			state.SetShares(fmt.Sprintf("g%d", i/3), 8*i)
		}
	}
	if err := state.Err(); err != nil {
		t.Fatal(err)
	}
	reloaded, warnings := loadCounting(t, fs)
	if *warnings != 0 {
		t.Fatalf("clean round trip warned %d times", *warnings)
	}
	if reloaded.Len() != state.Len() {
		t.Fatalf("len %d != %d", reloaded.Len(), state.Len())
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	state, err := NewDesiredState(NewStore(fs, nil))
	if err != nil {
		t.Fatal(err)
	}
	state.SetNice(11, 100, -5, "a")
	state.SetShares("q1", 512)
	if err := state.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	state.SetNice(12, 200, 4, "b") // post-checkpoint log record

	reloaded, err := NewDesiredState(NewStore(fs, nil))
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != 3 {
		t.Fatalf("reloaded %d entries", reloaded.Len())
	}
	raw, err := fs.ReadFile(SnapshotFile)
	if err != nil || !strings.Contains(string(raw), "\"format\":1") {
		t.Fatalf("snapshot header missing (err=%v)", err)
	}
}
