package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderBasicChart(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{
		Title: "throughput", Width: 40, Height: 10,
		YLabel: "t/s", XLabel: "rate",
	},
		Series{Name: "os", X: []float64{1, 2, 3, 4}, Y: []float64{10, 20, 25, 25}},
		Series{Name: "lachesis", X: []float64{1, 2, 3, 4}, Y: []float64{10, 20, 30, 35}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"throughput", "* os", "o lachesis", "y: t/s", "x: rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Both glyphs must appear in the plot area.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series glyphs missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+10+2+1+1 { // title + grid + axis + labels + legend
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestRenderPlacesExtremes(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{Width: 21, Height: 5},
		Series{Name: "s", X: []float64{0, 10}, Y: []float64{0, 100}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	// Max value on the top row at the right edge, min at bottom-left.
	top, bottom := lines[0], lines[4]
	if top[len(top)-2] != '*' {
		t.Errorf("top-right glyph missing: %q", top)
	}
	if !strings.Contains(bottom, "|*") {
		t.Errorf("bottom-left glyph missing: %q", bottom)
	}
}

func TestRenderLogY(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{Width: 30, Height: 8, LogY: true, YLabel: "lat"},
		Series{Name: "s", X: []float64{1, 2, 3}, Y: []float64{1, 100, 10000}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(log10)") {
		t.Error("log marker missing")
	}
	// log10 range 0..4: mid value 100 -> log 2 lands on the middle row.
	lines := strings.Split(buf.String(), "\n")
	mid := lines[4] // height 8: middle-ish row
	if !strings.Contains(mid, "*") {
		t.Errorf("mid point not on middle row: %q", mid)
	}
}

func TestRenderSkipsBadPoints(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{Width: 20, Height: 5, LogY: true},
		Series{Name: "s", X: []float64{1, 2, 3, 4}, Y: []float64{math.NaN(), -5, 0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	// One plotted point plus the legend glyph.
	if strings.Count(buf.String(), "*") != 2 {
		t.Errorf("only the positive finite point should plot:\n%s", buf.String())
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, Config{}); err == nil {
		t.Error("no series should fail")
	}
	if err := Render(&buf, Config{}, Series{Name: "s", X: []float64{1}, Y: nil}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if err := Render(&buf, Config{LogY: true},
		Series{Name: "s", X: []float64{1}, Y: []float64{-1}}); err == nil {
		t.Error("no plottable points should fail")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{Width: 10, Height: 4},
		Series{Name: "s", X: []float64{5, 5}, Y: []float64{3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("degenerate series should still plot")
	}
}
