package faults_test

import (
	"errors"
	"testing"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/faults"
	"lachesis/internal/metrics"
)

// stubDriver is a minimal healthy core.Driver for wrapping.
type stubDriver struct {
	name     string
	provided map[string]core.EntityValues
	entities []core.Entity
	fetches  int
}

var _ core.Driver = (*stubDriver)(nil)

func (d *stubDriver) Name() string            { return d.name }
func (d *stubDriver) Entities() []core.Entity { return d.entities }
func (d *stubDriver) Provides(metric string) bool {
	_, ok := d.provided[metric]
	return ok
}
func (d *stubDriver) Fetch(metric string, _ time.Duration) (core.EntityValues, error) {
	d.fetches++
	v, ok := d.provided[metric]
	if !ok {
		return nil, &core.UnknownMetricError{Metric: metric, Driver: d.name}
	}
	out := make(core.EntityValues, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out, nil
}

func newStub(name string, tidBase int) *stubDriver {
	return &stubDriver{
		name:     name,
		provided: map[string]core.EntityValues{core.MetricQueueSize: {"a": 5, "b": 1}},
		entities: []core.Entity{
			{Name: "a", Driver: name, Query: "q", Thread: tidBase},
			{Name: "b", Driver: name, Query: "q", Thread: tidBase + 1},
		},
	}
}

// recordOS is a minimal core.OSInterface that records nice values.
type recordOS struct {
	nices map[int]int
	calls int
}

func newRecordOS() *recordOS { return &recordOS{nices: make(map[int]int)} }

func (o *recordOS) SetNice(tid, nice int) error {
	o.calls++
	o.nices[tid] = nice
	return nil
}
func (o *recordOS) EnsureCgroup(string) error    { o.calls++; return nil }
func (o *recordOS) SetShares(string, int) error  { o.calls++; return nil }
func (o *recordOS) MoveThread(int, string) error { o.calls++; return nil }

func TestDriverFailRateIsSeededAndDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		d := faults.WrapDriver(newStub("s", 1), faults.DriverPlan{Seed: seed, FailRate: 0.2})
		out := make([]bool, 200)
		for i := range out {
			_, err := d.Fetch(core.MetricQueueSize, time.Duration(i)*time.Second)
			out[i] = err != nil
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fetch %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails < 20 || fails > 60 {
		t.Errorf("20%% fail rate over 200 fetches injected %d failures", fails)
	}
}

func TestDriverOutageWindow(t *testing.T) {
	d := faults.WrapDriver(newStub("s", 1), faults.DriverPlan{
		Outages: faults.Windows{{From: 10 * time.Second, To: 20 * time.Second}},
	})
	if _, err := d.Fetch(core.MetricQueueSize, 9*time.Second); err != nil {
		t.Fatalf("before outage: %v", err)
	}
	_, err := d.Fetch(core.MetricQueueSize, 10*time.Second)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("inside outage: err = %v, want injected", err)
	}
	if _, err := d.Fetch(core.MetricQueueSize, 20*time.Second); err != nil {
		t.Fatalf("after outage: %v", err)
	}
	if d.Injected() != 1 {
		t.Errorf("injected = %d, want 1", d.Injected())
	}
}

func TestDriverFreezeServesStaleValues(t *testing.T) {
	inner := newStub("s", 1)
	d := faults.WrapDriver(inner, faults.DriverPlan{
		Freezes: faults.Windows{{From: 1 * time.Second, To: 3 * time.Second}},
	})
	if _, err := d.Fetch(core.MetricQueueSize, 0); err != nil {
		t.Fatal(err)
	}
	inner.provided[core.MetricQueueSize] = core.EntityValues{"a": 999, "b": 999}
	v, err := d.Fetch(core.MetricQueueSize, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v["a"] != 5 {
		t.Errorf("frozen fetch returned %v, want the stale value 5", v["a"])
	}
	v, err = d.Fetch(core.MetricQueueSize, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v["a"] != 999 {
		t.Errorf("post-freeze fetch returned %v, want the fresh value 999", v["a"])
	}
}

func TestDriverEntityChurn(t *testing.T) {
	d := faults.WrapDriver(newStub("s", 1), faults.DriverPlan{Seed: 3, DropEntityRate: 0.5})
	dropped := 0
	for i := 0; i < 50; i++ {
		if len(d.Entities()) < 2 {
			dropped++
		}
	}
	if dropped == 0 || dropped == 50 {
		t.Errorf("churn dropped entities in %d/50 listings, want some but not all", dropped)
	}
}

func TestOSVanishedAndTransientClassification(t *testing.T) {
	os := faults.WrapOS(newRecordOS(), faults.OSPlan{
		VanishedThreads: map[int]bool{42: true},
		VanishedCgroups: map[string]bool{"gone": true},
	})
	if err := os.SetNice(42, 0); !core.IsVanished(err) {
		t.Errorf("vanished tid: err = %v, want ErrEntityVanished", err)
	}
	if err := os.MoveThread(1, "gone"); !core.IsVanished(err) {
		t.Errorf("vanished cgroup: err = %v, want ErrEntityVanished", err)
	}
	if err := os.SetNice(1, -5); err != nil {
		t.Errorf("healthy tid: %v", err)
	}
	os.VanishThread(1)
	if err := os.SetNice(1, -5); !core.IsVanished(err) {
		t.Errorf("after VanishThread: err = %v, want ErrEntityVanished", err)
	}

	now := 5 * time.Second
	flaky := faults.WrapOS(newRecordOS(), faults.OSPlan{
		Seed:          11,
		TransientRate: 0.5,
		Outages:       faults.Windows{{From: 100 * time.Second, To: 200 * time.Second}},
		Clock:         func() time.Duration { return now },
	})
	transients := 0
	for i := 0; i < 100; i++ {
		if err := flaky.SetNice(1, 0); err != nil {
			if !core.IsTransient(err) {
				t.Fatalf("injected error not transient: %v", err)
			}
			transients++
		}
	}
	if transients < 25 || transients > 75 {
		t.Errorf("50%% transient rate injected %d/100", transients)
	}
	now = 150 * time.Second
	if err := flaky.SetNice(1, 0); !core.IsTransient(err) {
		t.Errorf("during OS outage: err = %v, want transient", err)
	}
}

func TestStoreDropAndOutage(t *testing.T) {
	inner := metrics.NewStore(0)
	inner.Record(time.Second, "e.op.queue", 7)
	now := time.Duration(0)
	s := faults.WrapStore(inner, faults.StorePlan{
		Seed:     5,
		DropRate: 0.5,
		Outages:  faults.Windows{{From: 10 * time.Second, To: 20 * time.Second}},
		Clock:    func() time.Duration { return now },
	})
	found := 0
	for i := 0; i < 100; i++ {
		if _, ok := s.Latest("e.op.queue"); ok {
			found++
		}
	}
	if found == 0 || found == 100 {
		t.Errorf("50%% drop rate answered %d/100 lookups", found)
	}
	now = 15 * time.Second
	if _, ok := s.Latest("e.op.queue"); ok {
		t.Error("lookup during store outage should miss")
	}
	if s.Lookups() != 101 || s.Dropped() == 0 {
		t.Errorf("lookups=%d dropped=%d", s.Lookups(), s.Dropped())
	}
}

// TestMiddlewareSurvivesFlakyDriver is the injector-based version of the
// old ad-hoc flakyDriver test: intermittent fetch failures surface as step
// errors but never stop the middleware from scheduling on good periods.
func TestMiddlewareSurvivesFlakyDriver(t *testing.T) {
	d := faults.WrapDriver(newStub("flaky", 1), faults.DriverPlan{Seed: 1, FailRate: 0.4})
	os := newRecordOS()
	mw := core.NewMiddleware(nil)
	// Disable the stale fallback and breaker so every injected failure is
	// visible as a step error, like the pre-hardening loop it replaces.
	mw.SetResilience(core.Resilience{FailureThreshold: 1000, StalenessBound: time.Nanosecond})
	if err := mw.Bind(core.Binding{
		Policy:     core.NewQSPolicy(),
		Translator: core.NewNiceTranslator(os),
		Drivers:    []core.Driver{d},
		Period:     time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	var stepErrs int
	for i := 0; i < 20; i++ {
		if _, err := mw.Step(time.Duration(i) * time.Second); err != nil {
			stepErrs++
		}
	}
	if stepErrs == 0 {
		t.Error("flaky driver should surface some step errors")
	}
	if stepErrs == 20 {
		t.Error("every step failing means no recovery")
	}
	if len(os.nices) == 0 {
		t.Error("no schedules applied despite successful periods")
	}
	if mw.PolicyRuns() == 0 {
		t.Error("no successful policy runs recorded")
	}
	if d.Injected() == 0 {
		t.Error("plan injected no faults")
	}
}

// panickyPolicy crashes on every run.
type panickyPolicy struct{}

func (panickyPolicy) Name() string      { return "panicky" }
func (panickyPolicy) Metrics() []string { return []string{core.MetricQueueSize} }
func (panickyPolicy) Schedule(*core.View) (core.Schedule, error) {
	panic("user policy bug")
}

// TestAcceptanceChaosScenario is the issue's acceptance scenario: a 20%
// driver-fetch failure rate plus one sustained outage on driver A, while
// driver B stays healthy. The healthy binding must run every period, the
// failing binding must degrade (quarantine) during the outage and recover
// after it, and a panicking policy must never abort Step.
func TestAcceptanceChaosScenario(t *testing.T) {
	const (
		seed        = 42
		outageStart = 20 * time.Second
		outageEnd   = 40 * time.Second
		horizon     = 80
	)
	flaky := faults.WrapDriver(newStub("spe-a", 1), faults.DriverPlan{
		Seed:     seed,
		FailRate: 0.2,
		Outages:  faults.Windows{{From: outageStart, To: outageEnd}},
	})
	healthy := newStub("spe-b", 11)

	osA, osB := newRecordOS(), newRecordOS()
	mw := core.NewMiddleware(nil)
	mw.SetResilience(core.Resilience{
		FailureThreshold: 3,
		MaxBackoff:       4 * time.Second, // probe often so recovery is prompt
		StalenessBound:   5 * time.Second,
	})
	for _, b := range []core.Binding{
		{Policy: core.NewQSPolicy(), Translator: core.NewNiceTranslator(osA),
			Drivers: []core.Driver{flaky}, Period: time.Second},
		{Policy: core.NewQSPolicy(), Translator: core.NewNiceTranslator(osB),
			Drivers: []core.Driver{healthy}, Period: time.Second},
		{Policy: panickyPolicy{}, Translator: core.NewNiceTranslator(newRecordOS()),
			Drivers: []core.Driver{healthy}, Period: time.Second},
	} {
		if err := mw.Bind(b); err != nil {
			t.Fatal(err)
		}
	}

	healthyRuns, sawQuarantine := 0, false
	for i := 0; i < horizon; i++ {
		now := time.Duration(i) * time.Second
		callsBefore := osB.calls
		stats, _ := mw.Step(now)
		if osB.calls <= callsBefore {
			t.Fatalf("t=%v: healthy binding did not apply a schedule", now)
		}
		healthyRuns++
		_ = stats
		h := mw.Health()
		for _, bh := range h.Bindings {
			if bh.Policy == "qs" && bh.Translator == "nice" && bh.State == core.BindingQuarantined {
				// Identify the flaky binding by its driver association via
				// LastError mentioning spe-a.
				sawQuarantine = true
			}
		}
	}
	if healthyRuns != horizon {
		t.Errorf("healthy binding ran %d/%d periods", healthyRuns, horizon)
	}
	if !sawQuarantine {
		t.Error("flaky binding never quarantined during the outage")
	}
	if mw.PanicsRecovered() == 0 {
		t.Error("panicking policy should have been caught")
	}

	// After the outage, both QS bindings (the flaky one included) must
	// have recovered: last success after the outage ended, state healthy.
	h := mw.Health()
	recovered := 0
	for _, bh := range h.Bindings {
		if bh.Policy != "qs" {
			continue
		}
		if !bh.HasSucceeded || bh.LastSuccess <= outageEnd {
			t.Errorf("binding %s/%s did not recover: %+v", bh.Policy, bh.Translator, bh)
			continue
		}
		if bh.State != core.BindingHealthy {
			t.Errorf("binding %s/%s state = %v after recovery", bh.Policy, bh.Translator, bh.State)
		}
		recovered++
	}
	if recovered != 2 {
		t.Fatalf("recovered %d/2 QS bindings: %+v", recovered, h.Bindings)
	}
	if len(osA.nices) == 0 {
		t.Error("flaky binding never applied a schedule")
	}
	// The panicking binding is permanently broken and must be quarantined
	// by now, not silently healthy.
	for _, bh := range h.Bindings {
		if bh.Policy == "panicky" && bh.State == core.BindingHealthy {
			t.Error("panicking binding reported healthy")
		}
	}
}
