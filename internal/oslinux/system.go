package oslinux

import (
	"fmt"
	"io"
	"os"
	"syscall"
	"unsafe"
)

// hostSystem is the real host binding.
type hostSystem struct{}

var _ System = hostSystem{}

// Setpriority implements System via setpriority(2). On Linux,
// PRIO_PROCESS with a tid addresses a single thread.
func (hostSystem) Setpriority(tid, nice int) error {
	return syscall.Setpriority(syscall.PRIO_PROCESS, tid, nice)
}

// MkdirAll implements System.
func (hostSystem) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// Remove implements System. Cgroup directories are removed with plain
// rmdir; the kernel refuses unless the group is empty.
func (hostSystem) Remove(path string) error { return os.Remove(path) }

// WriteFile implements System. Cgroup control files must be opened
// write-only without truncation semantics mattering.
func (hostSystem) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// ReadFile implements ReadSystem, the observation capability backing the
// reconciler's /proc and cgroupfs reads. DryRunSystem deliberately does
// not implement it: a dry run cannot repair, so it must not observe.
func (hostSystem) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// schedParam mirrors struct sched_param for sched_setscheduler(2).
type schedParam struct {
	priority int32
}

// Scheduling policy constants from <sched.h>.
const (
	schedOther = 0
	schedFIFO  = 1
)

// SetScheduler implements ExtendedSystem via sched_setscheduler(2).
func (hostSystem) SetScheduler(tid, prio int) error {
	policy := schedOther
	if prio > 0 {
		policy = schedFIFO
	}
	param := schedParam{priority: int32(prio)}
	_, _, errno := syscall.Syscall(syscall.SYS_SCHED_SETSCHEDULER,
		uintptr(tid), uintptr(policy), uintptr(unsafe.Pointer(&param)))
	if errno != 0 {
		return errno
	}
	return nil
}

// DryRunSystem logs every operation instead of performing it, for
// inspecting what the middleware would do on a host (cmd/lachesisd
// -dry-run).
type DryRunSystem struct {
	W io.Writer
}

var _ System = DryRunSystem{}

// Setpriority implements System.
func (d DryRunSystem) Setpriority(tid, nice int) error {
	fmt.Fprintf(d.W, "dry-run: renice tid=%d nice=%d\n", tid, nice)
	return nil
}

// MkdirAll implements System.
func (d DryRunSystem) MkdirAll(path string) error {
	fmt.Fprintf(d.W, "dry-run: mkdir -p %s\n", path)
	return nil
}

// WriteFile implements System.
func (d DryRunSystem) WriteFile(path string, data []byte) error {
	fmt.Fprintf(d.W, "dry-run: echo %q > %s\n", string(data), path)
	return nil
}

// Remove implements System.
func (d DryRunSystem) Remove(path string) error {
	fmt.Fprintf(d.W, "dry-run: rmdir %s\n", path)
	return nil
}

// SetScheduler implements ExtendedSystem.
func (d DryRunSystem) SetScheduler(tid, prio int) error {
	if prio > 0 {
		fmt.Fprintf(d.W, "dry-run: chrt -f -p %d %d\n", prio, tid)
	} else {
		fmt.Fprintf(d.W, "dry-run: chrt -o -p 0 %d\n", tid)
	}
	return nil
}
