package guard

import (
	"fmt"
	"sync"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/telemetry"
)

// Watchdog telemetry metric names.
const (
	MetricWatchdogOverrunsTotal = "lachesis_watchdog_overruns_total"
	MetricWatchdogDegraded      = "lachesis_watchdog_degraded"
)

// WatchdogConfig sets the per-phase wall-clock deadlines of the decision
// cycle. A zero deadline leaves that phase unbounded.
type WatchdogConfig struct {
	// Fetch bounds one driver's metric fetch (core.PhaseFetch). When the
	// middleware also has an explicit Parallelism.FetchTimeout, that
	// takes precedence.
	Fetch time.Duration
	// Schedule bounds one policy evaluation (core.PhaseSchedule).
	Schedule time.Duration
	// Apply bounds one translator apply (core.PhaseApply). Enforced only
	// for bindings with an OpGuard: the guard's buffering is what makes
	// cancelling an apply safe.
	Apply time.Duration
	// TripAfter is how many consecutive decision cycles with at least
	// one overrun trip the watchdog to degraded mode; the same count of
	// consecutive clean cycles recovers it (default 3).
	TripAfter int
}

// Watchdog implements core.StepWatchdog: it hands the middleware the
// configured per-phase deadlines, counts overruns, and trips to degraded
// mode after repeated overruns. Cancelled cycles issue no control ops —
// the OS keeps enforcing the coalescer's last-applied mirror — and each
// overrun surfaces as a binding failure that feeds the circuit breaker,
// so degraded mode composes with quarantine: the watchdog reports, the
// breaker backs off.
type Watchdog struct {
	cfg WatchdogConfig

	mu          sync.Mutex
	overruns    int64
	cycleOver   int // overruns observed in the current cycle
	consecutive int // consecutive cycles with >= 1 overrun
	clean       int // consecutive clean cycles while degraded
	degraded    bool

	trail    *core.AuditTrail
	tel      *telemetry.Registry
	gDegrade *telemetry.Gauge
	tripHook func(now time.Duration, detail string)
}

var _ core.StepWatchdog = (*Watchdog)(nil)

// NewWatchdog builds a watchdog from a config (zero TripAfter defaults
// to 3).
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.TripAfter <= 0 {
		cfg.TripAfter = 3
	}
	return &Watchdog{cfg: cfg}
}

// SetTelemetry registers the watchdog's instruments in a registry.
func (w *Watchdog) SetTelemetry(reg *telemetry.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tel = reg
	w.gDegrade = reg.Gauge(MetricWatchdogDegraded)
	w.gDegrade.Set(0)
}

// SetAudit installs an audit trail for overrun and degraded-transition
// events. nil disables.
func (w *Watchdog) SetAudit(trail *core.AuditTrail) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.trail = trail
}

// SetTripHook installs a callback fired when the watchdog trips to
// degraded mode (typically span.FlightRecorder.Trip, dumping the recent
// cycles' trace). It does not fire on recovery. The hook runs with the
// watchdog's lock held and must not call back into the watchdog. nil
// disables.
func (w *Watchdog) SetTripHook(hook func(now time.Duration, detail string)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tripHook = hook
}

// PhaseDeadline implements core.StepWatchdog.
func (w *Watchdog) PhaseDeadline(phase string) time.Duration {
	switch phase {
	case core.PhaseFetch:
		return w.cfg.Fetch
	case core.PhaseSchedule:
		return w.cfg.Schedule
	case core.PhaseApply:
		return w.cfg.Apply
	}
	return 0
}

// PhaseOverrun implements core.StepWatchdog. Safe for concurrent use by
// the parallel pipeline's workers.
func (w *Watchdog) PhaseOverrun(scope, phase string, deadline time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.overruns++
	w.cycleOver++
	if w.tel != nil {
		w.tel.Counter(MetricWatchdogOverrunsTotal,
			telemetry.L("scope", scope), telemetry.L("phase", phase)).Inc()
	}
}

// CycleDone must be called once after each Middleware.Step: it folds the
// cycle's overruns into the consecutive count and flips degraded mode.
func (w *Watchdog) CycleDone(now time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cycleOver > 0 {
		w.consecutive++
		w.clean = 0
		if !w.degraded && w.consecutive >= w.cfg.TripAfter {
			w.degraded = true
			w.transitionLocked(now, fmt.Sprintf("degraded after %d consecutive overrun cycles", w.consecutive))
		}
	} else {
		w.consecutive = 0
		if w.degraded {
			w.clean++
			if w.clean >= w.cfg.TripAfter {
				w.degraded = false
				w.clean = 0
				w.transitionLocked(now, "recovered")
			}
		}
	}
	w.cycleOver = 0
}

// transitionLocked records a degraded-mode transition.
func (w *Watchdog) transitionLocked(now time.Duration, outcome string) {
	if w.gDegrade != nil {
		if w.degraded {
			w.gDegrade.Set(1)
		} else {
			w.gDegrade.Set(0)
		}
	}
	if w.trail != nil {
		w.trail.Record(core.AuditEvent{At: now, Kind: core.AuditKindWatchdog, Outcome: outcome})
	}
	if w.degraded && w.tripHook != nil {
		w.tripHook(now, outcome)
	}
}

// Degraded reports whether repeated overruns tripped the watchdog.
func (w *Watchdog) Degraded() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.degraded
}

// Overruns returns the lifetime overrun count.
func (w *Watchdog) Overruns() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.overruns
}

// WatchdogStatus is a point-in-time snapshot for /health.
type WatchdogStatus struct {
	Degraded          bool  `json:"degraded"`
	Overruns          int64 `json:"overruns"`
	ConsecutiveCycles int   `json:"consecutive_overrun_cycles"`
}

// Status snapshots the watchdog state.
func (w *Watchdog) Status() WatchdogStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WatchdogStatus{Degraded: w.degraded, Overruns: w.overruns, ConsecutiveCycles: w.consecutive}
}
