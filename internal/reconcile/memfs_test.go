package reconcile

import (
	"bytes"
	"testing"
)

// TestMemFSDropUnsynced pins the page-cache model behind the dst
// harness's crash semantics: reads see every write immediately, but a
// simulated power loss keeps only fsynced bytes.
func TestMemFSDropUnsynced(t *testing.T) {
	fs := NewMemFS()

	// Disciplined writer: write → fsync → rename. Survives intact.
	f, _ := fs.Create("durable.tmp")
	_, _ = f.Write([]byte("kept"))
	_ = f.Sync()
	_ = f.Close()
	if err := fs.Rename("durable.tmp", "durable"); err != nil {
		t.Fatal(err)
	}

	// Sloppy writer: syncs once, then keeps appending without syncing.
	g, _ := fs.Create("tail")
	_, _ = g.Write([]byte("synced-"))
	_ = g.Sync()
	_, _ = g.Write([]byte("lost"))
	_ = g.Close()

	// Never-synced writer: the whole file is page cache.
	h, _ := fs.Create("ghost")
	_, _ = h.Write([]byte("gone"))
	_ = h.Close()

	// Before the crash, reads see everything.
	if b, _ := fs.ReadFile("tail"); !bytes.Equal(b, []byte("synced-lost")) {
		t.Fatalf("pre-crash read = %q, want synced-lost", b)
	}

	fs.DropUnsynced()

	if b, err := fs.ReadFile("durable"); err != nil || !bytes.Equal(b, []byte("kept")) {
		t.Fatalf("durable file after crash = %q, %v", b, err)
	}
	if b, _ := fs.ReadFile("tail"); !bytes.Equal(b, []byte("synced-")) {
		t.Fatalf("partially synced file after crash = %q, want synced-", b)
	}
	if _, err := fs.ReadFile("ghost"); err == nil {
		t.Fatal("never-synced file survived the crash")
	}

	// SetFile injections count as durable (tests corrupt at-rest bytes).
	fs.SetFile("corrupt", []byte("{broken"))
	fs.DropUnsynced()
	if b, err := fs.ReadFile("corrupt"); err != nil || !bytes.Equal(b, []byte("{broken")) {
		t.Fatalf("injected file after crash = %q, %v", b, err)
	}
}
