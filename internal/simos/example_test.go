package simos_test

import (
	"fmt"
	"time"

	"lachesis/internal/simos"
)

// Example shows the kernel's nice semantics: a boosted thread receives a
// weight-proportional CPU share (w(n) = 1024/1.25^n).
func Example() {
	k := simos.New(simos.Config{CPUs: 1})
	busy := simos.RunnerFunc(func(ctx *simos.RunContext, granted time.Duration) simos.Decision {
		return simos.Decision{Used: granted, Action: simos.ActionYield}
	})
	hot, _ := k.Spawn("hot", simos.RootCgroup, busy)
	cold, _ := k.Spawn("cold", simos.RootCgroup, busy)
	_ = k.SetNice(hot, -5) // weight ratio 1.25^5 ~ 3.05

	k.RunUntil(10 * time.Second)
	hi, _ := k.ThreadInfo(hot)
	ci, _ := k.ThreadInfo(cold)
	ratio := float64(hi.CPUTime) / float64(ci.CPUTime)
	fmt.Printf("nice -5 vs 0 CPU ratio: %.1f\n", ratio)
	// Output:
	// nice -5 vs 0 CPU ratio: 3.1
}

// Example_cgroups shows cpu.shares controlling the split between groups
// regardless of thread counts.
func Example_cgroups() {
	k := simos.New(simos.Config{CPUs: 1})
	busy := simos.RunnerFunc(func(ctx *simos.RunContext, granted time.Duration) simos.Decision {
		return simos.Decision{Used: granted, Action: simos.ActionYield}
	})
	gold, _ := k.CreateCgroup(simos.RootCgroup, "gold")
	bronze, _ := k.CreateCgroup(simos.RootCgroup, "bronze")
	_ = k.SetShares(gold, 3072)
	_ = k.SetShares(bronze, 1024)
	a, _ := k.Spawn("a", gold, busy)
	b, _ := k.Spawn("b", bronze, busy)

	k.RunUntil(20 * time.Second)
	ai, _ := k.ThreadInfo(a)
	bi, _ := k.ThreadInfo(b)
	fmt.Printf("shares 3072 vs 1024 CPU ratio: %.1f\n", float64(ai.CPUTime)/float64(bi.CPUTime))
	// Output:
	// shares 3072 vs 1024 CPU ratio: 3.0
}
