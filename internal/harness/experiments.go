package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"lachesis/internal/simos"
	"lachesis/internal/spe"
	"lachesis/internal/workloads"
)

// Scale sizes an experiment run. The paper runs >=10 minutes x >=5
// repetitions on hardware; virtual time lets us default to shorter
// windows with the same steady-state behaviour.
type Scale struct {
	Warmup  time.Duration
	Measure time.Duration
	Reps    int
	// Progress, if set, receives status lines.
	Progress func(string)
	// CSVDir, if set, additionally writes each experiment's aggregated
	// series as CSV files into the directory (for external plotting).
	CSVDir string
	// ArtifactDir, if set, receives machine-readable benchmark artifacts
	// (BENCH_*.json, decision-audit JSONL, Prometheus dumps) from the
	// experiments that produce them.
	ArtifactDir string
	// BigCounts selects the extended binding counts (2k/4k/10k) the
	// scale experiment appends beyond the classic 16-512 sweep; see
	// scale.go for how those rows are measured.
	BigCounts []int
}

// QuickScale is sized for test suites and benchmarks. Its scale sweep
// extends to 2000 bindings — the CI regression point of the hot-path
// budget — but skips the larger extended counts.
var QuickScale = Scale{Warmup: 5 * time.Second, Measure: 20 * time.Second, Reps: 1, BigCounts: []int{2000}}

// FullScale approximates the paper's measurement windows and sweeps the
// full extended-scale story up to 10k bindings.
var FullScale = Scale{Warmup: 15 * time.Second, Measure: 60 * time.Second, Reps: 3, BigCounts: []int{2000, 4000, 10000}}

// maybeCSV writes a sweep's series to <CSVDir>/<name>.csv when requested.
func maybeCSV(sc Scale, name string, series []Series) error {
	if sc.CSVDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(sc.CSVDir, name+".csv"))
	if err != nil {
		return err
	}
	werr := WriteCSV(f, series)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// Experiment reproduces one figure or table of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, sc Scale) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: motivation — custom scheduling of LR on an edge device", fig1},
		{"fig5", "Figure 5: ETL in Storm (Odroid): OS vs EdgeWise vs Lachesis-QS", fig5},
		{"fig6", "Figure 6: distributions of input queue sizes in ETL", fig6},
		{"fig7", "Figure 7: STATS in Storm (Odroid)", fig7},
		{"fig8", "Figure 8: distributions of input queue sizes in STATS", fig8},
		{"fig9", "Figure 9: LR in Storm: OS vs RANDOM vs Lachesis-QS", fig9},
		{"fig10", "Figure 10: VS in Storm: OS vs RANDOM vs Lachesis-QS", fig10},
		{"fig11", "Figure 11: LR in Flink", fig11},
		{"fig12", "Figure 12: VS in Flink", fig12},
		{"fig13", "Figure 13: tail latency distributions of LR/VS in Storm/Flink", fig13},
		{"fig14", "Figure 14: multi-query scheduling of SYN in Liebre", fig14},
		{"fig15", "Figure 15: the effect of scheduling granularity on Haren", fig15},
		{"fig16", "Figure 16: the effect of blocking operations on SYN", fig16},
		{"fig17", "Figure 17: scalability study of LR in Storm/Flink (1-4 nodes)", fig17},
		{"fig18", "Figure 18: multi-SPE/query scheduling of LR, VS, SYN (Xeon)", fig18},
		{"table1", "Table 1: summary of configurations and highlights", table1},
		{"chaos", "Chaos: resilience under injected faults — hardened vs unhardened", chaosExp},
		{"overhead", "Overhead: decision-cycle cost per binding count (§6.7 self-cost)", overheadExp},
		{"drift", "Drift: desired-state reconciliation vs fire-and-forget, warm restart", driftExp},
		{"rollout", "Rollout: adversarial policy vs guarded (canary+invariants+watchdog) and unguarded stacks", rolloutExp},
		{"scale", "Scale: parallel decision pipeline vs sequential, 16-512 bindings", scaleExp},
		{"fleet", "Fleet: coordinated rollout across simulated lachesisd agents — cohort containment, coordinator crash", fleetExp},
		{"failover", "Failover: coordinator HA — leader kill mid-wave, standby promotion, split-brain fencing", failoverExp},
		{"traceoverhead", "Trace overhead: decision-cycle cost with and without the span recorder, 256 bindings", traceOverheadExp},
		{"dst", "DST: deterministic simulation — randomized fault schedules, invariant checks, failing-seed shrinking", dstExp},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// singleQuery builds the per-scheduler setups of a single-query Odroid
// experiment.
func singleQuery(flavor spe.Flavor, build func() *spe.LogicalQuery,
	source func(float64, int64) spe.Source, sc Scale, scheds ...Scheduler) []Setup {
	out := make([]Setup, 0, len(scheds))
	for _, sched := range scheds {
		out = append(out, Setup{
			Name:      string(sched),
			Machine:   simos.OdroidXU4(),
			Engines:   []EngineSpec{{Flavor: flavor}},
			Queries:   []QuerySpec{{Build: build, Source: source}},
			Scheduler: sched,
			Warmup:    sc.Warmup,
			Measure:   sc.Measure,
			Seed:      11,
		})
	}
	return out
}

// Rate grids, calibrated to the simulated Odroid so that the default OS
// saturation point falls inside each sweep (see EXPERIMENTS.md).
var (
	etlRates   = []float64{1000, 1200, 1300, 1400, 1500, 1600, 1700}
	statsRates = []float64{200, 280, 320, 340, 360, 400}
	lrRates    = []float64{3000, 4000, 4500, 5000, 5500, 6000, 6500}
	vsRates    = []float64{1500, 2000, 2500, 3000, 3300, 3600}
	synRates   = []float64{150, 250, 350, 420, 480, 550}
)

func fig1(w io.Writer, sc Scale) error {
	setups := singleQuery(spe.FlavorStorm,
		func() *spe.LogicalQuery { return workloads.LinearRoad(1) },
		workloads.LRSource, sc, SchedOS, SchedLachesisQS)
	series, err := Sweep(setups, lrRates, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	if err := maybeCSV(sc, "fig1", series); err != nil {
		return err
	}
	PrintPerformance(w, "Figure 1: LR on an edge device — OS vs custom scheduling", series)
	return nil
}

func fig5(w io.Writer, sc Scale) error {
	setups := singleQuery(spe.FlavorStorm, workloads.ETL, workloads.IoTSource, sc,
		SchedOS, SchedEdgeWise, SchedLachesisQS)
	series, err := Sweep(setups, etlRates, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	if err := maybeCSV(sc, "fig5", series); err != nil {
		return err
	}
	PrintPerformance(w, "Figure 5: performance comparison of ETL in Storm", series)
	return nil
}

func fig6(w io.Writer, sc Scale) error {
	setups := singleQuery(spe.FlavorStorm, workloads.ETL, workloads.IoTSource, sc,
		SchedOS, SchedEdgeWise, SchedLachesisQS)
	series, err := Sweep(setups, etlRates, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	if err := maybeCSV(sc, "fig6", series); err != nil {
		return err
	}
	PrintQueueDistributions(w, "Figure 6: distributions of input queue sizes in ETL", series)
	return nil
}

func fig7(w io.Writer, sc Scale) error {
	setups := singleQuery(spe.FlavorStorm, workloads.STATS, workloads.IoTSource, sc,
		SchedOS, SchedEdgeWise, SchedLachesisQS)
	series, err := Sweep(setups, statsRates, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	if err := maybeCSV(sc, "fig7", series); err != nil {
		return err
	}
	PrintPerformance(w, "Figure 7: performance comparison of STATS in Storm", series)
	return nil
}

func fig8(w io.Writer, sc Scale) error {
	setups := singleQuery(spe.FlavorStorm, workloads.STATS, workloads.IoTSource, sc,
		SchedOS, SchedEdgeWise, SchedLachesisQS)
	series, err := Sweep(setups, statsRates, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	if err := maybeCSV(sc, "fig8", series); err != nil {
		return err
	}
	PrintQueueDistributions(w, "Figure 8: distributions of input queue sizes in STATS", series)
	return nil
}

func fig9(w io.Writer, sc Scale) error {
	setups := singleQuery(spe.FlavorStorm,
		func() *spe.LogicalQuery { return workloads.LinearRoad(1) },
		workloads.LRSource, sc, SchedOS, SchedLachesisRandom, SchedLachesisQS)
	series, err := Sweep(setups, lrRates, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	if err := maybeCSV(sc, "fig9", series); err != nil {
		return err
	}
	PrintPerformance(w, "Figure 9: performance of LR in Storm", series)
	return nil
}

func fig10(w io.Writer, sc Scale) error {
	setups := singleQuery(spe.FlavorStorm, workloads.VoipStream, workloads.VSSource, sc,
		SchedOS, SchedLachesisRandom, SchedLachesisQS)
	series, err := Sweep(setups, vsRates, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	if err := maybeCSV(sc, "fig10", series); err != nil {
		return err
	}
	PrintPerformance(w, "Figure 10: performance of VS in Storm", series)
	return nil
}

func fig11(w io.Writer, sc Scale) error {
	setups := singleQuery(spe.FlavorFlink,
		func() *spe.LogicalQuery { return workloads.LinearRoad(1) },
		workloads.LRSource, sc, SchedOS, SchedLachesisRandom, SchedLachesisQS)
	series, err := Sweep(setups, lrRates, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	if err := maybeCSV(sc, "fig11", series); err != nil {
		return err
	}
	PrintPerformance(w, "Figure 11: performance of LR in Flink (chaining disabled)", series)
	return nil
}

func fig12(w io.Writer, sc Scale) error {
	setups := singleQuery(spe.FlavorFlink, workloads.VoipStream, workloads.VSSource, sc,
		SchedOS, SchedLachesisRandom, SchedLachesisQS)
	series, err := Sweep(setups, vsRates, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	if err := maybeCSV(sc, "fig12", series); err != nil {
		return err
	}
	PrintPerformance(w, "Figure 12: performance of VS in Flink", series)
	return nil
}

func fig13(w io.Writer, sc Scale) error {
	cases := []struct {
		title  string
		flavor spe.Flavor
		build  func() *spe.LogicalQuery
		source func(float64, int64) spe.Source
		rate   float64
	}{
		{"LR in Storm", spe.FlavorStorm, func() *spe.LogicalQuery { return workloads.LinearRoad(1) }, workloads.LRSource, 5500},
		{"VS in Storm", spe.FlavorStorm, workloads.VoipStream, workloads.VSSource, 3000},
		{"LR in Flink", spe.FlavorFlink, func() *spe.LogicalQuery { return workloads.LinearRoad(1) }, workloads.LRSource, 5500},
		{"VS in Flink", spe.FlavorFlink, workloads.VoipStream, workloads.VSSource, 3000},
	}
	for _, c := range cases {
		setups := singleQuery(c.flavor, c.build, c.source, sc, SchedOS, SchedLachesisQS)
		series, err := Sweep(setups, []float64{c.rate}, sc.Reps, sc.Progress)
		if err != nil {
			return err
		}
		PrintLatencyDistributions(w, "Figure 13: latency distribution — "+c.title, series, c.rate)
	}
	return nil
}

// synSetups builds the multi-query Liebre setups of §6.4.
func synSetups(sc Scale, blocking bool, scheds []Scheduler, harenPeriod time.Duration) []Setup {
	cfg := workloads.DefaultSyn(23)
	if blocking {
		cfg = workloads.BlockingSyn(23)
	}
	queries := make([]QuerySpec, cfg.Queries)
	for i := range queries {
		idx := i
		queries[i] = QuerySpec{
			Build: func() *spe.LogicalQuery {
				// Rebuild the full set and pick one query, so per-query
				// costs stay identical across schedulers and runs.
				return workloads.SYN(cfg)[idx]
			},
			Source: workloads.SynSource,
		}
	}
	var out []Setup
	for _, sched := range scheds {
		s := Setup{
			Name:        string(sched),
			Machine:     simos.OdroidXU4(),
			Engines:     []EngineSpec{{Flavor: spe.FlavorLiebre}},
			Queries:     queries,
			Scheduler:   sched,
			Translator:  TranslateShares, // per-operator cgroups (>40 ops)
			HarenPeriod: harenPeriod,
			Warmup:      sc.Warmup,
			Measure:     sc.Measure,
			Seed:        23,
		}
		if harenPeriod > 50*time.Millisecond && isHaren(sched) {
			s.Name = string(sched) + "-1000"
		}
		out = append(out, s)
	}
	return out
}

func isHaren(s Scheduler) bool {
	_, ok := harenPolicy(s)
	return ok
}

func fig14(w io.Writer, sc Scale) error {
	setups := synSetups(sc, false, []Scheduler{
		SchedOS,
		SchedLachesisQS, SchedLachesisFCFS, SchedLachesisHR,
		SchedHarenQS, SchedHarenFCFS, SchedHarenHR,
	}, 0)
	series, err := Sweep(setups, synRates, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	if err := maybeCSV(sc, "fig14", series); err != nil {
		return err
	}
	PrintPerformance(w, "Figure 14: multi-query scheduling of SYN in Liebre (rate is per query)", series)
	return nil
}

func fig15(w io.Writer, sc Scale) error {
	fast := synSetups(sc, false, []Scheduler{SchedHarenFCFS}, 50*time.Millisecond)
	slow := synSetups(sc, false, []Scheduler{SchedHarenFCFS}, time.Second)
	lach := synSetups(sc, false, []Scheduler{SchedLachesisFCFS}, 0)
	setups := append(append(fast, slow...), lach...)
	series, err := Sweep(setups, synRates, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	if err := maybeCSV(sc, "fig15", series); err != nil {
		return err
	}
	PrintPerformance(w, "Figure 15: the effect of scheduling granularity on Haren (FCFS)", series)
	return nil
}

func fig16(w io.Writer, sc Scale) error {
	setups := synSetups(sc, true, []Scheduler{
		SchedOS, SchedLachesisFCFS, SchedHarenFCFS,
	}, 0)
	series, err := Sweep(setups, synRates, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	if err := maybeCSV(sc, "fig16", series); err != nil {
		return err
	}
	PrintPerformance(w, "Figure 16: the effect of blocking operations on SYN (FCFS)", series)
	return nil
}

func fig17(w io.Writer, sc Scale) error {
	for _, flavor := range []spe.Flavor{spe.FlavorStorm, spe.FlavorFlink} {
		for _, nodes := range []int{1, 2, 4} {
			setups := []Setup{}
			for _, sched := range []Scheduler{SchedOS, SchedLachesisQS} {
				setups = append(setups, Setup{
					Name:    fmt.Sprintf("%s-%dnode", sched, nodes),
					Machine: simos.OdroidXU4(),
					Engines: []EngineSpec{{Flavor: flavor}},
					Queries: []QuerySpec{{
						Build:  func() *spe.LogicalQuery { return workloads.LinearRoad(1) },
						Source: workloads.LRSource,
					}},
					Scheduler: sched,
					Warmup:    sc.Warmup,
					Measure:   sc.Measure,
					Seed:      17,
				})
			}
			rates := make([]float64, 0, len(lrRates))
			for _, r := range lrRates {
				rates = append(rates, r*float64(nodes))
			}
			series, err := SweepScaleOut(setups, rates, nodes, sc.Reps, sc.Progress)
			if err != nil {
				return err
			}
			PrintPerformance(w, fmt.Sprintf(
				"Figure 17: LR scale-out on %s, fission degree %d over %d Odroids (rate is total)",
				flavor, nodes, nodes), series)
		}
	}
	return nil
}

// Empirically determined per-query maximum sustainable rates for the Xeon
// multi-SPE mix (fraction 1.0 of Fig. 18); see EXPERIMENTS.md.
const (
	fig18VSMax  = 2900.0
	fig18LRMax  = 5500.0
	fig18SYNMax = 145.0 // per SYN query
)

func fig18(w io.Writer, sc Scale) error {
	synCfg := workloads.SynConfig{Queries: 21, OpsPerQuery: 5, Seed: 37}
	queries := []QuerySpec{
		{Build: workloads.VoipStream, Source: workloads.VSSource, RateScale: fig18VSMax, Engine: 0},
		{Build: func() *spe.LogicalQuery { return workloads.LinearRoad(1) }, Source: workloads.LRSource, RateScale: fig18LRMax, Engine: 1},
	}
	for i := 0; i < synCfg.Queries; i++ {
		idx := i
		queries = append(queries, QuerySpec{
			Build:     func() *spe.LogicalQuery { return workloads.SYN(synCfg)[idx] },
			Source:    workloads.SynSource,
			RateScale: fig18SYNMax,
			Engine:    2,
		})
	}
	var setups []Setup
	for _, sched := range []Scheduler{SchedOS, SchedLachesisQS} {
		s := Setup{
			Name:    string(sched),
			Machine: simos.XeonServer(),
			Engines: []EngineSpec{
				{Flavor: spe.FlavorStorm},
				{Flavor: spe.FlavorFlink},
				{Flavor: spe.FlavorLiebre},
			},
			Queries:   queries,
			Scheduler: sched,
			Warmup:    sc.Warmup,
			Measure:   sc.Measure,
			Seed:      18,
		}
		if sched == SchedLachesisQS {
			// The paper's multi-dimensional schedule: one cgroup per query
			// with equal shares, QS by nice within each query.
			s.Translator = TranslateCombined
			s.GroupQueries = true
		}
		setups = append(setups, s)
	}
	// The sweep "rate" is the fraction of each query's maximum rate.
	series, err := Sweep(setups, []float64{0.6, 0.8, 1.0}, sc.Reps, sc.Progress)
	if err != nil {
		return err
	}
	PrintPerQuery(w, "Figure 18: multi-SPE/query scheduling of VS (Storm), LR (Flink), SYN x21 (Liebre) on the Xeon server", series)
	return nil
}

func table1(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "# Table 1: summary of configurations and measured highlights")
	type row struct {
		exp      string
		baseline Scheduler
		lachesis Scheduler
		flavor   spe.Flavor
		build    func() *spe.LogicalQuery
		source   func(float64, int64) spe.Source
		rates    []float64
	}
	rows := []row{
		{"single-query ETL (vs EdgeWise)", SchedEdgeWise, SchedLachesisQS, spe.FlavorStorm, workloads.ETL, workloads.IoTSource, etlRates},
		{"single-query LR Storm (vs OS)", SchedOS, SchedLachesisQS, spe.FlavorStorm, func() *spe.LogicalQuery { return workloads.LinearRoad(1) }, workloads.LRSource, lrRates},
		{"single-query VS Storm (vs OS)", SchedOS, SchedLachesisQS, spe.FlavorStorm, workloads.VoipStream, workloads.VSSource, vsRates},
	}
	fmt.Fprintf(w, "%-34s %14s %14s %14s\n", "experiment", "tput-gain", "lat-factor", "e2e-factor")
	for _, r := range rows {
		setups := singleQuery(r.flavor, r.build, r.source, sc, r.baseline, r.lachesis)
		series, err := Sweep(setups, r.rates, sc.Reps, sc.Progress)
		if err != nil {
			return err
		}
		h := Highlights(series[0], series[1])
		fmt.Fprintf(w, "%-34s %13.0f%% %13.0fx %13.0fx\n",
			r.exp, h.ThroughputGain*100, h.LatencyFactor, h.E2EFactor)
	}
	fmt.Fprintln(w)
	return nil
}
