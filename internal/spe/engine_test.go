package spe

import (
	"math"
	"strings"
	"testing"
	"time"

	"lachesis/internal/simos"
)

// pipelineQuery builds ingress -> work -> egress with the given work cost
// and selectivity.
func pipelineQuery(t *testing.T, name string, cost time.Duration, sel float64) *LogicalQuery {
	t.Helper()
	q := NewQuery(name)
	q.MustAddOp(&LogicalOp{Name: "src", Kind: KindIngress, Cost: 20 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&LogicalOp{Name: "work", Cost: cost, Selectivity: sel})
	q.MustAddOp(&LogicalOp{Name: "sink", Kind: KindEgress, Cost: 10 * time.Microsecond})
	if err := q.Pipeline("src", "work", "sink"); err != nil {
		t.Fatal(err)
	}
	return q
}

func newEngine(t *testing.T, k *simos.Kernel, cfg Config) *Engine {
	t.Helper()
	e, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func deploy(t *testing.T, e *Engine, q *LogicalQuery, src Source) *Deployment {
	t.Helper()
	d, err := e.Deploy(q, src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestQueryValidation(t *testing.T) {
	t.Run("cycle", func(t *testing.T) {
		q := NewQuery("bad")
		q.MustAddOp(&LogicalOp{Name: "i", Kind: KindIngress})
		q.MustAddOp(&LogicalOp{Name: "a", Selectivity: 1})
		q.MustAddOp(&LogicalOp{Name: "b", Selectivity: 1})
		q.MustAddOp(&LogicalOp{Name: "e", Kind: KindEgress})
		q.MustConnect("i", "a")
		q.MustConnect("a", "b")
		q.MustConnect("b", "a")
		q.MustConnect("b", "e")
		if err := q.Validate(); err == nil {
			t.Error("cycle not detected")
		}
	})
	t.Run("no ingress", func(t *testing.T) {
		q := NewQuery("bad")
		q.MustAddOp(&LogicalOp{Name: "e", Kind: KindEgress})
		if err := q.Validate(); err == nil {
			t.Error("missing ingress not detected")
		}
	})
	t.Run("no egress", func(t *testing.T) {
		q := NewQuery("bad")
		q.MustAddOp(&LogicalOp{Name: "i", Kind: KindIngress})
		if err := q.Validate(); err == nil {
			t.Error("missing egress not detected")
		}
	})
	t.Run("duplicate op", func(t *testing.T) {
		q := NewQuery("bad")
		q.MustAddOp(&LogicalOp{Name: "x"})
		if err := q.AddOp(&LogicalOp{Name: "x"}); err == nil {
			t.Error("duplicate op not detected")
		}
	})
	t.Run("duplicate edge", func(t *testing.T) {
		q := NewQuery("bad")
		q.MustAddOp(&LogicalOp{Name: "a"})
		q.MustAddOp(&LogicalOp{Name: "b"})
		q.MustConnect("a", "b")
		if err := q.Connect("a", "b"); err == nil {
			t.Error("duplicate edge not detected")
		}
	})
	t.Run("unknown edge endpoint", func(t *testing.T) {
		q := NewQuery("bad")
		q.MustAddOp(&LogicalOp{Name: "a"})
		if err := q.Connect("a", "nope"); err == nil {
			t.Error("unknown endpoint not detected")
		}
	})
}

func TestPipelineEndToEnd(t *testing.T) {
	k := simos.New(simos.Config{CPUs: 2})
	e := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm})
	q := pipelineQuery(t, "q", 100*time.Microsecond, 1.0)
	d := deploy(t, e, q, NewRateSource(1000, nil))

	k.RunUntil(10 * time.Second)

	ing := d.Ingested()
	if ing < 9800 || ing > 10050 {
		t.Errorf("ingested %d tuples in 10s at 1000/s, want ~10000", ing)
	}
	eg := d.EgressCount()
	if float64(eg) < 0.97*float64(ing) {
		t.Errorf("egress %d much less than ingested %d", eg, ing)
	}
	lat := d.Latencies()
	if lat.Count == 0 {
		t.Fatal("no latency samples")
	}
	// Underloaded pipeline: processing latency should be small (few ms).
	if lat.MeanProc > 50*time.Millisecond {
		t.Errorf("mean processing latency %v too high for underloaded query", lat.MeanProc)
	}
	if lat.MeanE2E < lat.MeanProc {
		t.Errorf("e2e latency %v < processing latency %v", lat.MeanE2E, lat.MeanProc)
	}
}

func TestSelectivityScalesEgress(t *testing.T) {
	tests := []struct {
		sel  float64
		want float64 // egress per ingested
	}{
		{0.5, 0.5},
		{1.0, 1.0},
		{3.0, 3.0},
	}
	for _, tt := range tests {
		k := simos.New(simos.Config{CPUs: 2})
		e := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm})
		q := pipelineQuery(t, "q", 50*time.Microsecond, tt.sel)
		d := deploy(t, e, q, NewRateSource(500, nil))
		k.RunUntil(10 * time.Second)

		ratio := float64(d.EgressCount()) / float64(d.Ingested())
		if math.Abs(ratio-tt.want)/tt.want > 0.05 {
			t.Errorf("sel=%v: egress/ingress = %.3f, want ~%.2f", tt.sel, ratio, tt.want)
		}
	}
}

func TestFissionSplitsLoad(t *testing.T) {
	k := simos.New(simos.Config{CPUs: 4})
	e := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm})
	q := NewQuery("q")
	q.MustAddOp(&LogicalOp{Name: "src", Kind: KindIngress, Cost: 10 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&LogicalOp{Name: "work", Cost: 100 * time.Microsecond, Selectivity: 1, Parallelism: 2})
	q.MustAddOp(&LogicalOp{Name: "sink", Kind: KindEgress})
	if err := q.Pipeline("src", "work", "sink"); err != nil {
		t.Fatal(err)
	}
	d := deploy(t, e, q, NewRateSource(1000, nil))
	k.RunUntil(5 * time.Second)

	reps := d.PhysicalFor("work")
	if len(reps) != 2 {
		t.Fatalf("got %d replicas, want 2", len(reps))
	}
	a := reps[0].Snapshot(k.Now()).InCount
	b := reps[1].Snapshot(k.Now()).InCount
	if a == 0 || b == 0 {
		t.Fatalf("replica starved: %d vs %d", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("round-robin fission imbalance: %d vs %d", a, b)
	}
}

func TestKeyByRoutesConsistently(t *testing.T) {
	k := simos.New(simos.Config{CPUs: 2})
	e := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm})
	q := NewQuery("q")
	q.MustAddOp(&LogicalOp{Name: "src", Kind: KindIngress, Cost: 5 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&LogicalOp{Name: "work", Cost: 20 * time.Microsecond, Selectivity: 1, Parallelism: 2, KeyBy: true})
	q.MustAddOp(&LogicalOp{Name: "sink", Kind: KindEgress})
	if err := q.Pipeline("src", "work", "sink"); err != nil {
		t.Fatal(err)
	}
	// All tuples share one key: everything must land on a single replica.
	src := NewRateSource(500, func(i int64) Tuple { return Tuple{Key: 42} })
	d := deploy(t, e, q, src)
	k.RunUntil(4 * time.Second)

	reps := d.PhysicalFor("work")
	a := reps[0].Snapshot(k.Now()).InCount
	b := reps[1].Snapshot(k.Now()).InCount
	if a != 0 && b != 0 {
		t.Errorf("key-by should route one key to one replica, got %d and %d", a, b)
	}
	if a+b < 1900 {
		t.Errorf("processed %d tuples, want ~2000", a+b)
	}
}

func TestChainingFusesLinearSegments(t *testing.T) {
	q := NewQuery("q")
	q.MustAddOp(&LogicalOp{Name: "src", Kind: KindIngress, Cost: time.Microsecond, Selectivity: 1})
	q.MustAddOp(&LogicalOp{Name: "a", Cost: 10 * time.Microsecond, Selectivity: 2})
	q.MustAddOp(&LogicalOp{Name: "b", Cost: 20 * time.Microsecond, Selectivity: 0.5})
	q.MustAddOp(&LogicalOp{Name: "sink", Kind: KindEgress})
	if err := q.Pipeline("src", "a", "b", "sink"); err != nil {
		t.Fatal(err)
	}
	chains, err := buildChains(q, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 {
		t.Fatalf("want 1 fused chain, got %d", len(chains))
	}
	// Chain cost: 1 + 1*10 + 1*2*20 = 51us.
	cost := chainCost(chains[0])
	if cost != 51*time.Microsecond {
		t.Errorf("chain cost = %v, want 51us", cost)
	}
	// Chain selectivity: 1*2*0.5 = 1 (egress excluded).
	if s := chainSelectivity(chains[0]); math.Abs(s-1.0) > 1e-9 {
		t.Errorf("chain selectivity = %v, want 1", s)
	}
}

func TestChainingBreaksAtFanOutAndKeyBy(t *testing.T) {
	q := NewQuery("q")
	q.MustAddOp(&LogicalOp{Name: "src", Kind: KindIngress, Cost: time.Microsecond, Selectivity: 1})
	q.MustAddOp(&LogicalOp{Name: "a", Cost: time.Microsecond, Selectivity: 1})
	q.MustAddOp(&LogicalOp{Name: "kb", Cost: time.Microsecond, Selectivity: 1, KeyBy: true})
	q.MustAddOp(&LogicalOp{Name: "b1", Cost: time.Microsecond, Selectivity: 1})
	q.MustAddOp(&LogicalOp{Name: "b2", Cost: time.Microsecond, Selectivity: 1})
	q.MustAddOp(&LogicalOp{Name: "s1", Kind: KindEgress})
	q.MustAddOp(&LogicalOp{Name: "s2", Kind: KindEgress})
	q.MustConnect("src", "a")
	q.MustConnect("a", "kb")
	q.MustConnect("kb", "b1")
	q.MustConnect("kb", "b2")
	q.MustConnect("b1", "s1")
	q.MustConnect("b2", "s2")
	chains, err := buildChains(q, true)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: [src a] [kb] [b1 s1] [b2 s2] — key-by breaks the first
	// chain, fan-out prevents kb from fusing downstream.
	if len(chains) != 4 {
		t.Fatalf("want 4 chains, got %d: %v", len(chains), chainNames(chains))
	}
}

func chainNames(chains [][]*LogicalOp) []string {
	var out []string
	for _, c := range chains {
		var names []string
		for _, op := range c {
			names = append(names, op.Name)
		}
		out = append(out, strings.Join(names, "+"))
	}
	return out
}

func TestBoundedQueueBackpressure(t *testing.T) {
	// Flink flavor: a slow operator must bound its queue and push the
	// waiting upstream (backpressure), unlike Storm.
	k := simos.New(simos.Config{CPUs: 1})
	e := newEngine(t, k, Config{Name: "flink", Flavor: FlavorFlink})
	q := pipelineQuery(t, "q", 5*time.Millisecond, 1.0) // can do ~200/s, offered 1000/s
	d := deploy(t, e, q, NewRateSource(1000, nil))
	k.RunUntil(10 * time.Second)

	work := d.PhysicalFor("work")[0]
	if got := work.QueueLen(k.Now()); got > flinkDefaultQueueCapacity {
		t.Errorf("bounded queue exceeded capacity: %d > %d", got, flinkDefaultQueueCapacity)
	}
	// The backlog accumulates at the source instead.
	ing := d.Ingresses()[0]
	if got := ing.QueueLen(k.Now()); got < 1000 {
		t.Errorf("source backlog %d, want large (saturated query)", got)
	}
}

func TestUnboundedQueueGrowsPastSaturation(t *testing.T) {
	k := simos.New(simos.Config{CPUs: 4})
	e := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm})
	q := pipelineQuery(t, "q", 5*time.Millisecond, 1.0) // ~200/s max on one thread
	d := deploy(t, e, q, NewRateSource(1000, nil))
	k.RunUntil(10 * time.Second)

	// With spare CPUs, the ingress keeps up and the internal queue grows.
	work := d.PhysicalFor("work")[0]
	if got := work.QueueLen(k.Now()); got < 2000 {
		t.Errorf("unbounded queue length %d, want thousands at 5x overload", got)
	}
	lat := d.Latencies()
	if lat.MeanProc < 500*time.Millisecond {
		t.Errorf("saturated processing latency %v, want to explode", lat.MeanProc)
	}
}

func TestBlockingOperatorsStillProgressOnOSThreads(t *testing.T) {
	k := simos.New(simos.Config{CPUs: 2})
	e := newEngine(t, k, Config{Name: "liebre", Flavor: FlavorLiebre, Seed: 7})
	q := NewQuery("q")
	q.MustAddOp(&LogicalOp{Name: "src", Kind: KindIngress, Cost: 10 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&LogicalOp{
		Name: "work", Cost: 100 * time.Microsecond, Selectivity: 1,
		BlockProb: 0.05, BlockMax: 20 * time.Millisecond,
	})
	q.MustAddOp(&LogicalOp{Name: "sink", Kind: KindEgress})
	if err := q.Pipeline("src", "work", "sink"); err != nil {
		t.Fatal(err)
	}
	d := deploy(t, e, q, NewRateSource(500, nil))
	k.RunUntil(10 * time.Second)

	snap := d.PhysicalFor("work")[0].Snapshot(k.Now())
	if snap.BlockEvents == 0 {
		t.Fatal("no blocking events sampled")
	}
	// Expected block time: 500 t/s * 10s * 0.05 * 10ms = 2.5s; the OS keeps
	// other threads running, so throughput should hold.
	if got := d.EgressCount(); got < 4500 {
		t.Errorf("egress %d, want ~5000 despite blocking", got)
	}
}

// greedyScheduler is a trivial TaskScheduler: first ready operator wins.
type greedyScheduler struct {
	ops []*PhysicalOp
}

func (s *greedyScheduler) Register(ops []*PhysicalOp) { s.ops = append(s.ops, ops...) }
func (s *greedyScheduler) Next(now time.Duration, canRun func(*PhysicalOp) bool) *PhysicalOp {
	for _, op := range s.ops {
		if canRun(op) {
			return op
		}
	}
	return nil
}
func (s *greedyScheduler) TaskDone(*PhysicalOp, time.Duration) {}

func TestWorkerPoolModeProcessesTuples(t *testing.T) {
	k := simos.New(simos.Config{CPUs: 2})
	e := newEngine(t, k, Config{
		Name:      "liebre",
		Flavor:    FlavorLiebre,
		Mode:      ModeWorkerPool,
		Scheduler: &greedyScheduler{},
		Workers:   2,
	})
	q := pipelineQuery(t, "q", 100*time.Microsecond, 1.0)
	d := deploy(t, e, q, NewRateSource(1000, nil))
	k.RunUntil(5 * time.Second)

	if got := d.EgressCount(); got < 4700 {
		t.Errorf("worker pool egress %d, want ~5000", got)
	}
	// Non-ingress operators have no dedicated threads in pool mode;
	// ingress operators keep theirs (Storm spouts under EdgeWise).
	for _, p := range d.Ops() {
		if p.Kind() == KindIngress {
			if p.ThreadID() == 0 {
				t.Errorf("ingress %s should keep a dedicated thread", p.Name())
			}
			continue
		}
		if p.ThreadID() != 0 {
			t.Errorf("op %s has a dedicated thread in pool mode", p.Name())
		}
	}
	if k.ContractViolations() != 0 {
		t.Errorf("contract violations: %d", k.ContractViolations())
	}
}

func TestWorkerPoolBlockingStallsWorkers(t *testing.T) {
	// One worker + a blocking operator: while the worker sleeps in
	// simulated I/O, nothing else runs — the UL-SS drawback from §6.4.
	mkQuery := func() *LogicalQuery {
		q := NewQuery("q")
		q.MustAddOp(&LogicalOp{Name: "src", Kind: KindIngress, Cost: 10 * time.Microsecond, Selectivity: 1})
		q.MustAddOp(&LogicalOp{
			Name: "work", Cost: 100 * time.Microsecond, Selectivity: 1,
			BlockProb: 0.2, BlockMax: 50 * time.Millisecond,
		})
		q.MustAddOp(&LogicalOp{Name: "sink", Kind: KindEgress})
		if err := q.Pipeline("src", "work", "sink"); err != nil {
			t.Fatal(err)
		}
		return q
	}

	kPool := simos.New(simos.Config{CPUs: 2})
	ePool := newEngine(t, kPool, Config{
		Name: "liebre", Flavor: FlavorLiebre, Mode: ModeWorkerPool,
		Scheduler: &greedyScheduler{}, Workers: 1, Seed: 3,
	})
	dPool := deploy(t, ePool, mkQuery(), NewRateSource(400, nil))
	kPool.RunUntil(10 * time.Second)

	kOS := simos.New(simos.Config{CPUs: 2})
	eOS := newEngine(t, kOS, Config{Name: "liebre", Flavor: FlavorLiebre, Seed: 3})
	dOS := deploy(t, eOS, mkQuery(), NewRateSource(400, nil))
	kOS.RunUntil(10 * time.Second)

	// Expected blocking time ~ 400*10*0.2*25ms = 20s >> wall: the single
	// worker saturates, while OS threads overlap blocking with work.
	if float64(dPool.EgressCount()) > 0.7*float64(dOS.EgressCount()) {
		t.Errorf("blocking should hurt the worker pool: pool=%d os=%d",
			dPool.EgressCount(), dOS.EgressCount())
	}
}

// captureSink records reporter series.
type captureSink struct {
	series map[string][]float64
}

func (c *captureSink) Record(now time.Duration, series string, value float64) {
	if c.series == nil {
		c.series = make(map[string][]float64)
	}
	c.series[series] = append(c.series[series], value)
}

func (c *captureSink) names() map[string]bool {
	out := make(map[string]bool)
	for k := range c.series {
		// Strip "<engine>.<query>.<op>.<replica>." prefix: keep last field.
		out[k[strings.LastIndex(k, ".")+1:]] = true
	}
	return out
}

func TestReporterFlavorSeries(t *testing.T) {
	tests := []struct {
		flavor Flavor
		want   []string
		absent []string
	}{
		{FlavorStorm, []string{SeriesQueue, SeriesIn, SeriesOut, SeriesExecMs}, []string{SeriesSelectivity, SeriesInRate}},
		{FlavorFlink, []string{SeriesQueue, SeriesInRate, SeriesOutRate, SeriesBusyMsPerS}, []string{SeriesIn, SeriesCostMs}},
		{FlavorLiebre, []string{SeriesQueue, SeriesIn, SeriesOut, SeriesCostMs, SeriesSelectivity, SeriesHeadMs}, []string{SeriesInRate}},
	}
	for _, tt := range tests {
		t.Run(tt.flavor.String(), func(t *testing.T) {
			k := simos.New(simos.Config{CPUs: 2})
			e := newEngine(t, k, Config{Name: tt.flavor.String(), Flavor: tt.flavor})
			deploy(t, e, pipelineQuery(t, "q", 50*time.Microsecond, 1.0), NewRateSource(200, nil))
			sink := &captureSink{}
			if err := e.StartReporter(sink, time.Second); err != nil {
				t.Fatal(err)
			}
			k.RunUntil(5 * time.Second)

			got := sink.names()
			for _, w := range tt.want {
				if !got[w] {
					t.Errorf("flavor %v missing series %q (got %v)", tt.flavor, w, got)
				}
			}
			for _, a := range tt.absent {
				if got[a] {
					t.Errorf("flavor %v should not publish %q", tt.flavor, a)
				}
			}
		})
	}
}

func TestResetStatsClearsLatencies(t *testing.T) {
	k := simos.New(simos.Config{CPUs: 2})
	e := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm})
	d := deploy(t, e, pipelineQuery(t, "q", 50*time.Microsecond, 1.0), NewRateSource(500, nil))
	k.RunUntil(2 * time.Second)
	if d.Latencies().Count == 0 {
		t.Fatal("expected latency samples before reset")
	}
	before := d.EgressCount()
	d.ResetStats()
	if d.Latencies().Count != 0 {
		t.Error("latencies should be empty after reset")
	}
	if d.EgressCount() != before {
		t.Error("monotonic counters must survive ResetStats")
	}
	k.RunUntil(4 * time.Second)
	if d.Latencies().Count == 0 {
		t.Error("expected fresh samples after reset")
	}
}

func TestDeployErrors(t *testing.T) {
	k := simos.New(simos.Config{CPUs: 1})
	e := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm})
	q := pipelineQuery(t, "q", time.Microsecond, 1)
	if _, err := e.Deploy(q, nil); err == nil {
		t.Error("nil source should fail")
	}
	deploy(t, e, q, NewRateSource(1, nil))
	if _, err := e.Deploy(q, NewRateSource(1, nil)); err == nil {
		t.Error("duplicate query name should fail")
	}
	if _, err := New(k, Config{Flavor: FlavorStorm}); err == nil {
		t.Error("engine without name should fail")
	}
	if _, err := New(k, Config{Name: "x"}); err == nil {
		t.Error("engine without flavor should fail")
	}
	if _, err := New(k, Config{Name: "y", Flavor: FlavorStorm, Mode: ModeWorkerPool}); err == nil {
		t.Error("pool mode without scheduler should fail")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() (int64, time.Duration) {
		k := simos.New(simos.Config{CPUs: 2})
		e := newEngine(t, k, Config{Name: "storm", Flavor: FlavorStorm, Seed: 42})
		q := NewQuery("q")
		q.MustAddOp(&LogicalOp{Name: "src", Kind: KindIngress, Cost: 10 * time.Microsecond, Selectivity: 1})
		q.MustAddOp(&LogicalOp{Name: "work", Cost: 300 * time.Microsecond, CostJitter: 0.5, Selectivity: 1.5})
		q.MustAddOp(&LogicalOp{Name: "sink", Kind: KindEgress})
		if err := q.Pipeline("src", "work", "sink"); err != nil {
			t.Fatal(err)
		}
		d := deploy(t, e, q, NewRateSource(800, nil))
		k.RunUntil(5 * time.Second)
		return d.EgressCount(), d.Latencies().MeanProc
	}
	c1, l1 := run()
	c2, l2 := run()
	if c1 != c2 || l1 != l2 {
		t.Errorf("nondeterministic run: (%d,%v) vs (%d,%v)", c1, l1, c2, l2)
	}
}
