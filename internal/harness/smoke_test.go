package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestExperimentsSmoke executes a representative subset of the paper's
// experiments end-to-end at a tiny scale, covering every harness code path
// (performance sweeps with UL-SS baselines, latency distributions,
// blocking multi-query pools, the multi-SPE grouping run, and the
// highlights table). Skipped under -short.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test skipped in -short mode")
	}
	sc := Scale{Warmup: time.Second, Measure: 3 * time.Second, Reps: 1}
	for _, id := range []string{"fig7", "fig13", "fig16", "fig18", "table1"} {
		t.Run(id, func(t *testing.T) {
			exp, ok := ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			var buf bytes.Buffer
			if err := exp.Run(&buf, sc); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "#") {
				t.Errorf("no table emitted:\n%.200s", buf.String())
			}
		})
	}
}
