package fleet

import (
	"errors"
	"sync"
	"time"

	"lachesis/internal/driver"
	"lachesis/internal/guard"
)

// fakeAgent is an in-memory AgentClient for tests. It mimics a
// lachesisd agent's policy surface: proposals conflict while a local
// rollout is active, and the test mutates SLO/rollback counters to
// steer fleet verdicts.
type fakeAgent struct {
	mu sync.Mutex
	// st is what Status/accepted proposals report.
	st  guard.Status
	slo guard.SLOSample
	// down simulates a crashed/partitioned agent: every call fails
	// transiently.
	down bool
	// busy simulates a local rollout in flight: proposals 409.
	busy bool
	// proposals records accepted payloads in order.
	proposals []string
}

func (f *fakeAgent) Propose(payload []byte) (guard.Status, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return guard.Status{}, driver.MarkTransient(errors.New("connection refused"))
	}
	if f.busy {
		return guard.Status{}, &ConflictError{Agent: "fake", Body: "rollout in progress"}
	}
	f.proposals = append(f.proposals, string(payload))
	return f.st, nil
}

func (f *fakeAgent) Status() (guard.Status, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return guard.Status{}, driver.MarkTransient(errors.New("connection refused"))
	}
	return f.st, nil
}

func (f *fakeAgent) SLO() (guard.SLOSample, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return guard.SLOSample{}, driver.MarkTransient(errors.New("connection refused"))
	}
	return f.slo, nil
}

func (f *fakeAgent) setSLO(lat, thr float64) {
	f.mu.Lock()
	f.slo = guard.SLOSample{LatencyP95: lat, Throughput: thr, OK: true}
	f.mu.Unlock()
}

func (f *fakeAgent) setDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

func (f *fakeAgent) bumpRollbacks() {
	f.mu.Lock()
	f.st.Rollbacks++
	f.st.Active = false
	f.st.LastDecision = guard.DecisionRolledBack
	f.st.LastReason = "local guard violations"
	f.mu.Unlock()
}

func (f *fakeAgent) proposalCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.proposals)
}

func (f *fakeAgent) lastProposal() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.proposals) == 0 {
		return ""
	}
	return f.proposals[len(f.proposals)-1]
}

// fakeFleet is a set of fakeAgents addressable as a ConnFactory.
type fakeFleet struct {
	mu     sync.Mutex
	agents map[string]*fakeAgent
}

func newFakeFleet(ids ...string) *fakeFleet {
	ff := &fakeFleet{agents: map[string]*fakeAgent{}}
	for _, id := range ids {
		ff.agents[id] = &fakeAgent{slo: guard.SLOSample{LatencyP95: 1, Throughput: 100, OK: true}}
	}
	return ff
}

func (ff *fakeFleet) conns(a AgentRecord) AgentClient {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ag, ok := ff.agents[a.ID]; ok {
		return ag
	}
	ag := &fakeAgent{down: true}
	ff.agents[a.ID] = ag
	return ag
}

func (ff *fakeFleet) get(id string) *fakeAgent {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.agents[id]
}

// noSleep silences fan-out backoff in tests.
func noSleep(fc FanoutConfig) FanoutConfig {
	fc.Sleep = func(time.Duration) {}
	return fc
}
