package harness

import (
	"math"
	"time"

	"lachesis/internal/simos"
	"lachesis/internal/spe"
	"lachesis/internal/stats"
)

// Result is one run's measurements over the measure window (after warmup,
// matching the paper's warmup/cooldown trimming).
type Result struct {
	Setup string
	Rate  float64
	Rep   int

	// Throughput is the sustained processing rate in ingress-equivalent
	// tuples/s: the egress rate divided by the query's expected egress
	// tuples per ingress tuple. It plateaus at the saturation point like
	// the paper's throughput curves.
	Throughput float64
	// IngestRate is the raw ingestion rate at the ingress operators.
	IngestRate float64
	// MeanProc and MeanE2E are average processing / end-to-end latencies
	// over all egress tuples.
	MeanProc time.Duration
	MeanE2E  time.Duration
	// ProcSamples / E2ESamples are reservoir samples in seconds, for the
	// distribution plots (Fig. 13).
	ProcSamples []float64
	E2ESamples  []float64

	// QSGoal is the mean over time of the standard deviation of operator
	// queue sizes (the QS policy goal plotted in Figs. 5-12).
	QSGoal float64
	// FCFSGoal is the mean over time of the maximum head-tuple wait (s).
	FCFSGoal float64
	// QueueSamples are per-operator queue-size samples over time (for the
	// distribution Figs. 6 and 8).
	QueueSamples map[string][]float64

	// PerQuery breaks throughput/latency down by query (Fig. 18).
	PerQuery map[string]QueryResult

	// CPUUtil is overall node utilization in [0,1]; MWCPUFrac is the
	// fraction of total CPU consumed by the Lachesis thread (§6.7).
	CPUUtil   float64
	MWCPUFrac float64
	// Switches is the node's context-switch count during measurement.
	Switches int64
}

// QueryResult is one query's share of a multi-query run.
type QueryResult struct {
	Engine     string
	Throughput float64
	MeanProc   time.Duration
	MeanE2E    time.Duration
}

// Run executes one (setup, rate, repetition) and returns measurements.
func Run(s Setup, rate float64, rep int) (Result, error) {
	s = s.withDefaults()
	st, err := build(s, rate, rep)
	if err != nil {
		return Result{}, err
	}
	k := st.kernel

	// Warmup, then reset latency recorders and counters baselines.
	k.RunUntil(s.Warmup)
	type base struct{ ingested, egress int64 }
	bases := make([]base, len(st.deployments))
	for i, d := range st.deployments {
		d.ResetStats()
		bases[i] = base{ingested: d.Ingested(), egress: d.EgressCount()}
	}
	busyBase := k.TotalBusyTime()
	switchBase := k.ContextSwitches()
	var mwBase time.Duration
	mwTID := 0
	for _, tid := range k.Threads() {
		info, err := k.ThreadInfo(tid)
		if err == nil && info.Name == "lachesis" {
			mwTID = int(tid)
			mwBase = info.CPUTime
		}
	}

	// Measure with 1s goal sampling.
	res := Result{
		Setup:        s.Name,
		Rate:         rate,
		Rep:          rep,
		QueueSamples: make(map[string][]float64),
	}
	var qsGoals, fcfsGoals []float64
	end := s.Warmup + s.Measure
	for t := s.Warmup + time.Second; t <= end; t += time.Second {
		k.RunUntil(t)
		var sizes []float64
		maxWait := 0.0
		for _, eng := range st.engines {
			for _, op := range eng.Ops() {
				if op.Kind() == spe.KindIngress {
					// The source backlog is external to the SPE; the QS
					// goal is over operator input queues only.
					continue
				}
				q := float64(op.QueueLen(k.Now()))
				sizes = append(sizes, q)
				res.QueueSamples[op.Name()] = append(res.QueueSamples[op.Name()], q)
				if w := op.OldestWait(k.Now()).Seconds(); w > maxWait {
					maxWait = w
				}
			}
		}
		qsGoals = append(qsGoals, stats.StdDev(sizes))
		fcfsGoals = append(fcfsGoals, maxWait)
	}
	k.RunUntil(end)

	// Aggregate measurements.
	elapsed := s.Measure.Seconds()
	var totalIngested int64
	var procSum, e2eSum float64
	var procN int64
	res.PerQuery = make(map[string]QueryResult, len(st.deployments))
	var totalProcessed float64
	for i, d := range st.deployments {
		ing := d.Ingested() - bases[i].ingested
		totalIngested += ing
		// Sustained throughput: the egress rate converted back into
		// ingress-equivalent tuples. Unlike the raw ingestion rate, this
		// plateaus at the saturation point (the ingress thread itself is
		// cheap and keeps accepting tuples into growing queues).
		eg := float64(d.EgressCount()-bases[i].egress) / elapsed
		processed := eg
		if exp := d.Query.ExpectedEgressPerIngress(); exp > 0 {
			processed = eg / exp
		}
		totalProcessed += processed
		lat := d.Latencies()
		res.ProcSamples = append(res.ProcSamples, lat.ProcSamples...)
		res.E2ESamples = append(res.E2ESamples, lat.E2ESamples...)
		procSum += lat.MeanProc.Seconds() * float64(lat.Count)
		e2eSum += lat.MeanE2E.Seconds() * float64(lat.Count)
		procN += lat.Count
		res.PerQuery[d.Query.Name] = QueryResult{
			Engine:     engineOf(st, i),
			Throughput: processed,
			MeanProc:   lat.MeanProc,
			MeanE2E:    lat.MeanE2E,
		}
	}
	res.IngestRate = float64(totalIngested) / elapsed
	res.Throughput = totalProcessed
	if procN > 0 {
		res.MeanProc = time.Duration(procSum / float64(procN) * float64(time.Second))
		res.MeanE2E = time.Duration(e2eSum / float64(procN) * float64(time.Second))
	}
	res.QSGoal = stats.Mean(qsGoals)
	res.FCFSGoal = stats.Mean(fcfsGoals)
	res.CPUUtil = (k.TotalBusyTime() - busyBase).Seconds() /
		(elapsed * float64(k.CPUCount()))
	res.Switches = k.ContextSwitches() - switchBase
	if mwTID != 0 {
		info, err := k.ThreadInfo(simos.ThreadID(mwTID))
		if err == nil {
			res.MWCPUFrac = (info.CPUTime - mwBase).Seconds() / (elapsed * float64(k.CPUCount()))
		}
	}
	if math.IsNaN(res.CPUUtil) {
		res.CPUUtil = 0
	}
	return res, nil
}

func engineOf(st *stack, depIdx int) string {
	d := st.deployments[depIdx]
	for _, eng := range st.engines {
		for _, ed := range eng.Deployments() {
			if ed == d {
				return eng.Name()
			}
		}
	}
	return ""
}
