package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/guard"
)

// testAgentServer mimics a lachesisd introspection server's /policy and
// /metrics surface.
func testAgentServer(t *testing.T) (*httptest.Server, *struct {
	sync.Mutex
	busy    bool
	bodies  []string
	metrics string
}) {
	t.Helper()
	state := &struct {
		sync.Mutex
		busy    bool
		bodies  []string
		metrics string
	}{}
	mux := http.NewServeMux()
	mux.HandleFunc("/policy", func(w http.ResponseWriter, r *http.Request) {
		state.Lock()
		defer state.Unlock()
		switch r.Method {
		case http.MethodGet:
			writeTestJSON(w, http.StatusOK, guard.Status{Active: state.busy, Candidate: "v1"})
		case http.MethodPost:
			if state.busy {
				http.Error(w, "rollout in progress", http.StatusConflict)
				return
			}
			buf := make([]byte, 1<<16)
			n, _ := r.Body.Read(buf)
			state.bodies = append(state.bodies, string(buf[:n]))
			writeTestJSON(w, http.StatusAccepted, guard.Status{Active: true, Candidate: "v1"})
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		state.Lock()
		defer state.Unlock()
		_, _ = w.Write([]byte(state.metrics))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, state
}

func writeTestJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func TestHTTPAgentProposeAndStatus(t *testing.T) {
	srv, state := testAgentServer(t)
	ag := NewHTTPAgent("node-a", strings.TrimPrefix(srv.URL, "http://"), time.Second)

	st, err := ag.Propose([]byte(`{"p":1}`))
	if err != nil || !st.Active || st.Candidate != "v1" {
		t.Fatalf("Propose = %+v, %v", st, err)
	}
	state.Lock()
	got := append([]string(nil), state.bodies...)
	state.busy = true
	state.Unlock()
	if len(got) != 1 || got[0] != `{"p":1}` {
		t.Fatalf("agent received %v", got)
	}

	// Busy agent: 409 surfaces as ConflictError, Status still works.
	if _, err := ag.Propose([]byte(`{}`)); !IsConflict(err) {
		t.Fatalf("Propose while busy = %v, want ConflictError", err)
	}
	st, err = ag.Status()
	if err != nil || st.Candidate != "v1" {
		t.Fatalf("Status = %+v, %v", st, err)
	}
}

func TestHTTPAgentTransportErrorsAreTransient(t *testing.T) {
	ag := NewHTTPAgent("node-a", "127.0.0.1:1", 50*time.Millisecond)
	if _, err := ag.Propose([]byte(`{}`)); !core.IsTransient(err) {
		t.Fatalf("Propose against dead agent = %v, want transient", err)
	}
	if _, err := ag.SLO(); !core.IsTransient(err) {
		t.Fatalf("SLO against dead agent = %v, want transient", err)
	}
}

func TestHTTPAgentSLOScrape(t *testing.T) {
	srv, state := testAgentServer(t)
	ag := NewHTTPAgent("node-a", srv.URL, time.Second)

	// No SLO gauges exported: OK=false, no error — verdicts abstain.
	state.Lock()
	state.metrics = "# HELP lachesis_step_seconds\nlachesis_step_seconds 0.1\n"
	state.Unlock()
	s, err := ag.SLO()
	if err != nil || s.OK {
		t.Fatalf("SLO without gauges = %+v, %v; want not-OK", s, err)
	}

	state.Lock()
	state.metrics = strings.Join([]string{
		"# TYPE lachesis_node_latency_p95 gauge",
		`lachesis_node_latency_p95{query="q1"} 0.25`,
		`lachesis_node_latency_p95{query="q2"} 0.75`,
		`lachesis_node_throughput{query="q1"} 1000`,
		`lachesis_node_throughput{query="q2"} 500`,
		"",
	}, "\n")
	state.Unlock()
	s, err = ag.SLO()
	if err != nil || !s.OK {
		t.Fatalf("SLO = %+v, %v", s, err)
	}
	if s.LatencyP95 != 0.75 {
		t.Errorf("LatencyP95 = %v, want max 0.75", s.LatencyP95)
	}
	if s.Throughput != 1500 {
		t.Errorf("Throughput = %v, want summed 1500", s.Throughput)
	}
}

func TestParseSLOSkipsMalformedLines(t *testing.T) {
	s, err := ParseSLO(strings.NewReader("garbage\nlachesis_node_throughput not-a-number\nlachesis_node_throughput 42\n"))
	if err != nil || !s.OK || s.Throughput != 42 {
		t.Fatalf("ParseSLO = %+v, %v", s, err)
	}
}
