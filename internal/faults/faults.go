// Package faults provides deterministic, seeded fault injectors for the
// Lachesis resilience layer. The injectors wrap the three surfaces through
// which the middleware touches the outside world — core.Driver (metric
// fetches), core.OSInterface (scheduling control operations), and the
// metrics store read path — so unit tests and simulated experiments can
// reproduce flaky metric endpoints, sustained SPE outages, vanished
// threads, and cgroupfs write failures without any real failure source.
//
// All randomness comes from a caller-supplied seed: the same plan over the
// same call sequence injects the same faults, which is what makes chaos
// tests assertable.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lachesis/internal/core"
)

// ErrInjected marks every failure this package fabricates, so tests can
// distinguish injected faults from real bugs.
var ErrInjected = errors.New("faults: injected failure")

// Window is a half-open virtual-time interval [From, To).
type Window struct {
	From, To time.Duration
}

// Contains reports whether now falls inside the window.
func (w Window) Contains(now time.Duration) bool {
	return now >= w.From && now < w.To
}

// Windows is a set of outage/freeze intervals.
type Windows []Window

// Contains reports whether now falls inside any window.
func (ws Windows) Contains(now time.Duration) bool {
	for _, w := range ws {
		if w.Contains(now) {
			return true
		}
	}
	return false
}

// --- driver injector ---

// DriverPlan configures a fault-injecting driver wrapper.
type DriverPlan struct {
	// Seed drives all probabilistic faults (0 is a valid seed).
	Seed int64
	// FailRate is the probability in [0,1] that any one Fetch fails.
	FailRate float64
	// Outages are windows during which every Fetch fails (a sustained
	// metrics-endpoint outage).
	Outages Windows
	// Freezes are windows during which Fetch serves the last good values
	// without consulting the wrapped driver — a stuck exporter that keeps
	// answering with stale data.
	Freezes Windows
	// DropEntityRate is the probability that any one entity is omitted
	// from an Entities listing (entity churn: threads vanishing between
	// listing and control).
	DropEntityRate float64
	// Latency is added to every successful Fetch via Sleep, when set.
	Latency time.Duration
	// SlowWindows are virtual-time windows during which every successful
	// Fetch additionally sleeps SlowLatency (wall-clock) — a degraded
	// metrics endpoint that answers, just slowly. Used to exercise the
	// watchdog's fetch-deadline path: virtual time selects the window,
	// the wall-clock sleep trips the deadline.
	SlowWindows Windows
	// SlowLatency is the extra delay injected inside SlowWindows.
	SlowLatency time.Duration
	// Sleep implements Latency and SlowLatency (nil = no-op, keeping
	// virtual-time tests deterministic; real deployments can pass
	// time.Sleep).
	Sleep func(time.Duration)
}

// Driver wraps a core.Driver with the faults of a DriverPlan.
type Driver struct {
	inner core.Driver
	plan  DriverPlan
	rng   *rand.Rand

	frozen map[string]core.EntityValues

	fetches  int
	injected int
}

var _ core.Driver = (*Driver)(nil)

// WrapDriver wraps a driver with a fault plan.
func WrapDriver(inner core.Driver, plan DriverPlan) *Driver {
	return &Driver{
		inner:  inner,
		plan:   plan,
		rng:    rand.New(rand.NewSource(plan.Seed)),
		frozen: make(map[string]core.EntityValues),
	}
}

// Name implements core.Driver.
func (d *Driver) Name() string { return d.inner.Name() }

// Provides implements core.Driver.
func (d *Driver) Provides(metric string) bool { return d.inner.Provides(metric) }

// Entities implements core.Driver, dropping each entity with probability
// DropEntityRate.
func (d *Driver) Entities() []core.Entity {
	ents := d.inner.Entities()
	if d.plan.DropEntityRate <= 0 {
		return ents
	}
	out := ents[:0:0]
	for _, e := range ents {
		if d.rng.Float64() < d.plan.DropEntityRate {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Fetch implements core.Driver with the plan's faults applied, in order:
// outage windows, freeze windows, then the probabilistic failure rate.
func (d *Driver) Fetch(metric string, now time.Duration) (core.EntityValues, error) {
	d.fetches++
	if d.plan.Outages.Contains(now) {
		d.injected++
		return nil, fmt.Errorf("fetch %q from %q: endpoint outage: %w", metric, d.Name(), ErrInjected)
	}
	if d.plan.Freezes.Contains(now) {
		if v, ok := d.frozen[metric]; ok {
			d.injected++
			return cloneValues(v), nil
		}
		// Nothing cached yet: fall through to a real fetch.
	}
	if d.plan.FailRate > 0 && d.rng.Float64() < d.plan.FailRate {
		d.injected++
		return nil, fmt.Errorf("fetch %q from %q: endpoint timeout: %w", metric, d.Name(), ErrInjected)
	}
	v, err := d.inner.Fetch(metric, now)
	if err != nil {
		return nil, err
	}
	if d.plan.Sleep != nil {
		if d.plan.Latency > 0 {
			d.plan.Sleep(d.plan.Latency)
		}
		if d.plan.SlowLatency > 0 && d.plan.SlowWindows.Contains(now) {
			d.injected++
			d.plan.Sleep(d.plan.SlowLatency)
		}
	}
	d.frozen[metric] = cloneValues(v)
	return v, nil
}

// Fetches returns how many Fetch calls the wrapper has seen.
func (d *Driver) Fetches() int { return d.fetches }

// Injected returns how many faults the wrapper has injected.
func (d *Driver) Injected() int { return d.injected }

func cloneValues(v core.EntityValues) core.EntityValues {
	out := make(core.EntityValues, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// --- OS injector ---

// OSPlan configures a fault-injecting OS wrapper.
type OSPlan struct {
	// Seed drives all probabilistic faults.
	Seed int64
	// TransientRate is the probability in [0,1] that any one control
	// operation fails with a retryable core.ErrTransient (EAGAIN-style).
	TransientRate float64
	// Outages are windows during which every control operation fails
	// transiently (e.g. cgroupfs remounted read-only).
	Outages Windows
	// Clock supplies the virtual time outage windows are checked against
	// (nil disables windows).
	Clock func() time.Duration
	// VanishedThreads lists tids whose operations fail permanently with
	// core.ErrEntityVanished (ESRCH: the thread exited).
	VanishedThreads map[int]bool
	// VanishedCgroups lists cgroup names whose operations fail with
	// core.ErrEntityVanished (ENOENT: the group was torn down).
	VanishedCgroups map[string]bool
	// Latency is added to every successful control operation via Sleep,
	// when set (a slow cgroupfs / syscall path).
	Latency time.Duration
	// SlowWindows are virtual-time windows (checked against Clock)
	// during which every control operation additionally sleeps
	// SlowLatency — exercising the watchdog's apply-deadline path.
	SlowWindows Windows
	// SlowLatency is the extra delay injected inside SlowWindows.
	SlowLatency time.Duration
	// Sleep implements Latency and SlowLatency (nil = no-op).
	Sleep func(time.Duration)
}

// OS wraps a core.OSInterface with the faults of an OSPlan. It forwards
// the optional CgroupRemover, PlacementRestorer, and CacheInvalidator
// capabilities when the wrapped interface has them. The injector state is
// mutex-guarded: an OS chain may be driven by concurrent apply workers
// once the middleware runs its parallel pipeline.
type OS struct {
	inner core.OSInterface
	plan  OSPlan
	mu    sync.Mutex
	rng   *rand.Rand

	ops      int
	injected int
}

var _ core.OSInterface = (*OS)(nil)

// WrapOS wraps an OS interface with a fault plan.
func WrapOS(inner core.OSInterface, plan OSPlan) *OS {
	return &OS{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// VanishThread marks a thread as exited: all further operations on it fail
// with core.ErrEntityVanished.
func (o *OS) VanishThread(tid int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.plan.VanishedThreads == nil {
		o.plan.VanishedThreads = make(map[int]bool)
	}
	o.plan.VanishedThreads[tid] = true
}

// inject applies the plan's generic faults to one operation; it returns a
// non-nil error when the operation should fail.
func (o *OS) inject(op string) error {
	o.mu.Lock()
	o.ops++
	if o.plan.Clock != nil && o.plan.Outages.Contains(o.plan.Clock()) {
		o.injected++
		o.mu.Unlock()
		return fmt.Errorf("%s: OS outage: %w (%w)", op, core.ErrTransient, ErrInjected)
	}
	if o.plan.TransientRate > 0 && o.rng.Float64() < o.plan.TransientRate {
		o.injected++
		o.mu.Unlock()
		return fmt.Errorf("%s: resource temporarily unavailable: %w (%w)", op, core.ErrTransient, ErrInjected)
	}
	// Latency is applied outside the lock so a slow op does not
	// serialize concurrent apply workers behind the injector state.
	var sleep time.Duration
	if o.plan.Sleep != nil {
		if o.plan.Latency > 0 {
			sleep += o.plan.Latency
		}
		if o.plan.SlowLatency > 0 && o.plan.Clock != nil && o.plan.SlowWindows.Contains(o.plan.Clock()) {
			o.injected++
			sleep += o.plan.SlowLatency
		}
	}
	o.mu.Unlock()
	if sleep > 0 {
		o.plan.Sleep(sleep)
	}
	return nil
}

func (o *OS) vanishedTID(op string, tid int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.plan.VanishedThreads[tid] {
		o.injected++
		return fmt.Errorf("%s tid %d: no such process: %w (%w)", op, tid, core.ErrEntityVanished, ErrInjected)
	}
	return nil
}

func (o *OS) vanishedCgroup(op, name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.plan.VanishedCgroups[name] {
		o.injected++
		return fmt.Errorf("%s cgroup %s: no such file or directory: %w (%w)", op, name, core.ErrEntityVanished, ErrInjected)
	}
	return nil
}

// SetNice implements core.OSInterface.
func (o *OS) SetNice(tid, nice int) error {
	if err := o.vanishedTID("setpriority", tid); err != nil {
		return err
	}
	if err := o.inject("setpriority"); err != nil {
		return err
	}
	return o.inner.SetNice(tid, nice)
}

// EnsureCgroup implements core.OSInterface.
func (o *OS) EnsureCgroup(name string) error {
	if err := o.inject("mkdir"); err != nil {
		return err
	}
	return o.inner.EnsureCgroup(name)
}

// SetShares implements core.OSInterface.
func (o *OS) SetShares(name string, shares int) error {
	if err := o.vanishedCgroup("cpu.shares", name); err != nil {
		return err
	}
	if err := o.inject("cpu.shares"); err != nil {
		return err
	}
	return o.inner.SetShares(name, shares)
}

// MoveThread implements core.OSInterface.
func (o *OS) MoveThread(tid int, name string) error {
	if err := o.vanishedTID("cgroup.procs", tid); err != nil {
		return err
	}
	if err := o.vanishedCgroup("cgroup.procs", name); err != nil {
		return err
	}
	if err := o.inject("cgroup.procs"); err != nil {
		return err
	}
	return o.inner.MoveThread(tid, name)
}

// RemoveCgroup implements core.CgroupRemover, delegating when the wrapped
// interface supports it (no-op success otherwise).
func (o *OS) RemoveCgroup(name string) error {
	if err := o.vanishedCgroup("rmdir", name); err != nil {
		return err
	}
	if err := o.inject("rmdir"); err != nil {
		return err
	}
	if r, ok := o.inner.(core.CgroupRemover); ok {
		return r.RemoveCgroup(name)
	}
	return nil
}

// RestoreThread implements core.PlacementRestorer, delegating when the
// wrapped interface supports it (no-op success otherwise).
func (o *OS) RestoreThread(tid int) error {
	if err := o.vanishedTID("restore", tid); err != nil {
		return err
	}
	if err := o.inject("restore"); err != nil {
		return err
	}
	if r, ok := o.inner.(core.PlacementRestorer); ok {
		return r.RestoreThread(tid)
	}
	return nil
}

// InvalidateThread implements core.CacheInvalidator. Invalidation is a
// cache hint, not a control operation, so no faults are injected — it
// propagates unconditionally.
func (o *OS) InvalidateThread(tid int) { core.InvalidateThreadState(o.inner, tid) }

// InvalidateCgroup implements core.CacheInvalidator.
func (o *OS) InvalidateCgroup(name string) { core.InvalidateCgroupState(o.inner, name) }

// Ops returns how many control operations the wrapper has seen.
func (o *OS) Ops() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ops
}

// Injected returns how many faults the wrapper has injected.
func (o *OS) Injected() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.injected
}
