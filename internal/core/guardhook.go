package core

import (
	"errors"
	"fmt"
	"time"
)

// Decision-cycle phase names, as reported to a StepWatchdog. They match
// the pipeline of Algorithm 1: metric fetch, policy schedule, translator
// apply.
const (
	PhaseFetch    = "fetch"
	PhaseSchedule = "schedule"
	PhaseApply    = "apply"
)

// ErrPhaseDeadline reports that a decision-cycle phase exceeded its
// watchdog deadline and was cancelled. The cancelled cycle issues no
// control ops: the OS keeps enforcing the coalescer's last-applied
// mirror.
var ErrPhaseDeadline = errors.New("core: phase deadline exceeded")

// ErrRunInFlight reports that a binding's previous, deadline-cancelled
// phase is still executing (the middleware abandoned it but the goroutine
// has not returned). New runs are refused until it drains, so a stuck
// policy or translator cannot pile up concurrent executions.
var ErrRunInFlight = errors.New("core: cancelled run still in flight")

// ApplyGuard brackets one binding's translator apply with batch
// validation. A guard buffers the control ops the translator emits during
// an apply and releases them to the OS chain only if the whole batch
// satisfies its invariants; a violated batch is dropped and FinishApply
// returns the violation, which the middleware treats like any apply error
// (it feeds the circuit breaker). internal/guard provides the production
// implementation; core only defines the bracket so it never depends on
// the guard package.
type ApplyGuard interface {
	// BeginApply opens a validation batch for one binding's apply. view
	// is the metric view the schedule was computed from (starvation
	// detection reads queue metrics from it).
	BeginApply(now time.Duration, binding string, view *View)
	// FinishApply validates the buffered batch. On success the ops are
	// forwarded downstream and it returns nil; on violation the batch is
	// dropped and the violations are returned as an error.
	FinishApply() error
	// AbandonApply drops the open batch without validating or forwarding
	// it, because the apply was cancelled by a watchdog deadline. The
	// translator goroutine may still be running and writing into the
	// dead batch; done closes when it has returned, after which the
	// guard may accept a new batch.
	AbandonApply(done <-chan struct{})
}

// StepWatchdog imposes wall-clock deadlines on the phases of a binding's
// decision cycle. Implementations must be safe for concurrent use: the
// parallel pipeline reports overruns from worker goroutines.
// internal/guard provides the production implementation.
type StepWatchdog interface {
	// PhaseDeadline returns the deadline for one phase; 0 or negative
	// disables the deadline for that phase.
	PhaseDeadline(phase string) time.Duration
	// PhaseOverrun is called when a phase exceeded its deadline and was
	// cancelled. scope is the binding label (or driver name for fetch).
	PhaseOverrun(scope, phase string, deadline time.Duration)
}

// SetWatchdog installs a decision-cycle watchdog. Schedule deadlines
// cancel an overrunning policy; apply deadlines additionally require the
// binding to have a Guard (only a guard's buffering makes cancelling an
// apply safe: nothing has reached the OS chain yet, so the coalescer's
// last-applied mirror simply stays in force). nil removes the watchdog.
// Call before the first Step; the watchdog is read by step goroutines.
func (m *Middleware) SetWatchdog(wd StepWatchdog) { m.watchdog = wd }

// Watchdog returns the installed step watchdog (nil when none).
func (m *Middleware) Watchdog() StepWatchdog { return m.watchdog }

// phaseDeadline returns the watchdog deadline for one phase, or 0 when no
// watchdog is installed or the phase is unbounded.
func (m *Middleware) phaseDeadline(phase string) time.Duration {
	if m.watchdog == nil {
		return 0
	}
	if d := m.watchdog.PhaseDeadline(phase); d > 0 {
		return d
	}
	return 0
}

// overrun reports a phase overrun to the watchdog and the audit trail.
func (m *Middleware) overrun(now time.Duration, bp *boundPolicy, phase string, deadline time.Duration) {
	m.watchdog.PhaseOverrun(bp.label, phase, deadline)
	m.auditRecord(AuditEvent{
		At: now, Kind: AuditKindWatchdog, Policy: bp.Policy.Name(),
		Translator: bp.Translator.Name(),
		Outcome:    fmt.Sprintf("%s deadline %v exceeded; cycle cancelled", phase, deadline),
	})
}

// scheduleBounded runs the policy under a watchdog deadline. On overrun
// the cycle is cancelled: the abandoned goroutine keeps running (policies
// only read the view, so it cannot corrupt OS state) and the binding
// refuses new runs until it drains.
func (m *Middleware) scheduleBounded(now time.Duration, bp *boundPolicy, view *View, deadline time.Duration) (Schedule, error) {
	if deadline <= 0 {
		// The unbounded path is the hot one: route through the binding so
		// in-place policies reuse their schedule buffers.
		return m.safeScheduleBP(bp, view)
	}
	type schedOut struct {
		sched Schedule
		err   error
	}
	done := make(chan schedOut, 1)
	go func() {
		s, err := m.safeSchedule(bp.Policy, view)
		done <- schedOut{s, err}
	}()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case o := <-done:
		return o.sched, o.err
	case <-timer.C:
		bp.inflight.Store(true)
		go func() {
			<-done
			bp.inflight.Store(false)
		}()
		m.overrun(now, bp, PhaseSchedule, deadline)
		return Schedule{}, fmt.Errorf("%w: %s of %s after %v", ErrPhaseDeadline, PhaseSchedule, bp.label, deadline)
	}
}

// applyBounded runs the translator under a watchdog deadline. Callers
// guarantee bp.Guard != nil: the guard is buffering every control op, so
// on overrun nothing has reached the OS chain — AbandonApply drops the
// dead batch once the abandoned goroutine returns, and the coalescer's
// last-applied mirror stays in force.
func (m *Middleware) applyBounded(now time.Duration, bp *boundPolicy, sched Schedule, ents map[string]Entity, deadline time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- m.safeApply(bp.Translator, sched, ents) }()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		bp.inflight.Store(true)
		release := make(chan struct{})
		go func() {
			<-done
			close(release)
			bp.inflight.Store(false)
		}()
		bp.Guard.AbandonApply(release)
		m.overrun(now, bp, PhaseApply, deadline)
		return fmt.Errorf("%w: %s of %s after %v", ErrPhaseDeadline, PhaseApply, bp.label, deadline)
	}
}
