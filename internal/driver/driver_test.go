package driver

import (
	"testing"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/metrics"
	"lachesis/internal/simos"
	"lachesis/internal/spe"
)

// deploy builds an engine of the given flavor with a 3-op pipeline and a
// reporter into a fresh store.
func deploy(t *testing.T, flavor spe.Flavor) (*simos.Kernel, *Driver, *metrics.Store) {
	t.Helper()
	k := simos.New(simos.Config{CPUs: 2})
	e, err := spe.New(k, spe.Config{Name: "eng", Flavor: flavor, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := spe.NewQuery("q")
	q.MustAddOp(&spe.LogicalOp{Name: "src", Kind: spe.KindIngress, Cost: 10 * time.Microsecond, Selectivity: 1})
	q.MustAddOp(&spe.LogicalOp{Name: "work", Cost: 200 * time.Microsecond, Selectivity: 2})
	q.MustAddOp(&spe.LogicalOp{Name: "sink", Kind: spe.KindEgress, Cost: 20 * time.Microsecond})
	if err := q.Pipeline("src", "work", "sink"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Deploy(q, spe.NewRateSource(500, nil)); err != nil {
		t.Fatal(err)
	}
	store := metrics.NewStore(time.Second)
	if err := e.StartReporter(store, time.Second); err != nil {
		t.Fatal(err)
	}
	drv, err := New(e, store)
	if err != nil {
		t.Fatal(err)
	}
	return k, drv, store
}

func TestEntitiesExposeTopology(t *testing.T) {
	k, drv, _ := deploy(t, spe.FlavorStorm)
	k.RunUntil(2 * time.Second)
	ents := drv.Entities()
	if len(ents) != 3 {
		t.Fatalf("entities = %d, want 3", len(ents))
	}
	byName := make(map[string]core.Entity)
	for _, e := range ents {
		byName[e.Name] = e
		if e.Thread == 0 {
			t.Errorf("%s has no thread", e.Name)
		}
		if e.Query != "q" || e.Driver != "eng" {
			t.Errorf("entity fields wrong: %+v", e)
		}
	}
	src := byName["q.src.0"]
	if !src.Ingress || len(src.Downstream) != 1 || src.Downstream[0] != "q.work.0" {
		t.Errorf("src entity wrong: %+v", src)
	}
	if !byName["q.sink.0"].Egress {
		t.Error("sink entity should be egress")
	}
}

func TestFlavorMetricSurface(t *testing.T) {
	tests := []struct {
		flavor   spe.Flavor
		provides []string
		lacks    []string
	}{
		{spe.FlavorStorm,
			[]string{core.MetricQueueSize, core.MetricInCount, core.MetricOutCount, core.MetricCostMs},
			[]string{core.MetricSelectivity, core.MetricInRate, core.MetricHeadWaitMs}},
		{spe.FlavorFlink,
			[]string{core.MetricQueueSize, core.MetricInRate, core.MetricOutRate, core.MetricBusyMsPerS},
			[]string{core.MetricInCount, core.MetricCostMs, core.MetricSelectivity}},
		{spe.FlavorLiebre,
			[]string{core.MetricQueueSize, core.MetricCostMs, core.MetricSelectivity, core.MetricHeadWaitMs},
			[]string{core.MetricInRate, core.MetricBusyMsPerS}},
	}
	for _, tt := range tests {
		t.Run(tt.flavor.String(), func(t *testing.T) {
			_, drv, _ := deploy(t, tt.flavor)
			for _, m := range tt.provides {
				if !drv.Provides(m) {
					t.Errorf("%v should provide %s", tt.flavor, m)
				}
			}
			for _, m := range tt.lacks {
				if drv.Provides(m) {
					t.Errorf("%v should NOT provide %s directly", tt.flavor, m)
				}
			}
		})
	}
}

func TestFetchReadsStore(t *testing.T) {
	k, drv, _ := deploy(t, spe.FlavorStorm)
	k.RunUntil(3 * time.Second)
	vals, err := drv.Fetch(core.MetricInCount, k.Now())
	if err != nil {
		t.Fatal(err)
	}
	if vals["q.work.0"] <= 0 {
		t.Errorf("work in_count = %v, want > 0", vals["q.work.0"])
	}
	// Ingress queue metric excludes the external backlog.
	qs, err := drv.Fetch(core.MetricQueueSize, k.Now())
	if err != nil {
		t.Fatal(err)
	}
	if qs["q.src.0"] != 0 {
		t.Errorf("ingress queue_size = %v, want 0 (source backlog is external)", qs["q.src.0"])
	}
}

func TestFetchUnknownMetric(t *testing.T) {
	_, drv, _ := deploy(t, spe.FlavorStorm)
	if _, err := drv.Fetch("no_such", 0); err == nil {
		t.Error("unknown metric should fail")
	}
}

func TestFetchBeforeFirstReportIsEmpty(t *testing.T) {
	_, drv, _ := deploy(t, spe.FlavorStorm)
	vals, err := drv.Fetch(core.MetricQueueSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 0 {
		t.Errorf("no reports yet, got %v", vals)
	}
}

func TestEndToEndWithProvider(t *testing.T) {
	// The Fig. 4 scenario: the provider derives selectivity for a
	// Storm-like driver (counts only) and for a Flink-like driver (rates).
	for _, flavor := range []spe.Flavor{spe.FlavorStorm, spe.FlavorFlink} {
		t.Run(flavor.String(), func(t *testing.T) {
			k, drv, _ := deploy(t, flavor)
			p := core.NewProvider(nil)
			if err := p.Register(core.MetricSelectivity); err != nil {
				t.Fatal(err)
			}
			k.RunUntil(2 * time.Second)
			if _, err := p.Update(k.Now(), []core.Driver{drv}); err != nil {
				t.Fatal(err)
			}
			k.RunUntil(4 * time.Second)
			vals, err := p.Update(k.Now(), []core.Driver{drv})
			if err != nil {
				t.Fatal(err)
			}
			sel := vals["eng"][core.MetricSelectivity]["q.work.0"]
			if sel < 1.8 || sel > 2.2 {
				t.Errorf("derived selectivity = %v, want ~2", sel)
			}
		})
	}
}
