package oslinux

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// fakeSystem records operations. failOn injects a queue of errors per
// operation name: each call pops one (nil entries succeed), letting tests
// model transient failures that clear after a retry.
type fakeSystem struct {
	nices   map[int]int
	dirs    []string
	writes  map[string]string
	removed []string
	fail    error
	failOn  map[string][]error
}

var _ System = (*fakeSystem)(nil)

func newFakeSystem() *fakeSystem {
	return &fakeSystem{
		nices:  make(map[int]int),
		writes: make(map[string]string),
		failOn: make(map[string][]error),
	}
}

// pop consumes the next injected error for op (nil = success).
func (f *fakeSystem) pop(op string) error {
	if f.fail != nil {
		return f.fail
	}
	q := f.failOn[op]
	if len(q) == 0 {
		return nil
	}
	err := q[0]
	f.failOn[op] = q[1:]
	return err
}

func (f *fakeSystem) Setpriority(tid, nice int) error {
	if err := f.pop("Setpriority"); err != nil {
		return err
	}
	f.nices[tid] = nice
	return nil
}
func (f *fakeSystem) MkdirAll(path string) error {
	if err := f.pop("MkdirAll"); err != nil {
		return err
	}
	f.dirs = append(f.dirs, path)
	return nil
}
func (f *fakeSystem) WriteFile(path string, data []byte) error {
	if err := f.pop("WriteFile"); err != nil {
		return err
	}
	f.writes[path] = string(data)
	return nil
}
func (f *fakeSystem) Remove(path string) error {
	if err := f.pop("Remove"); err != nil {
		return err
	}
	f.removed = append(f.removed, path)
	return nil
}

func newControl(t *testing.T, sys System, v CgroupVersion) *Control {
	t.Helper()
	c, err := New(Config{Root: "/sys/fs/cgroup/cpu/lachesis", Version: v, System: sys})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetNiceClampsAndDelegates(t *testing.T) {
	sys := newFakeSystem()
	c := newControl(t, sys, V1)
	if err := c.SetNice(42, -100); err != nil {
		t.Fatal(err)
	}
	if sys.nices[42] != -20 {
		t.Errorf("nice = %d, want clamped -20", sys.nices[42])
	}
	if err := c.SetNice(43, 100); err != nil {
		t.Fatal(err)
	}
	if sys.nices[43] != 19 {
		t.Errorf("nice = %d, want clamped 19", sys.nices[43])
	}
}

func TestCgroupV1Flow(t *testing.T) {
	sys := newFakeSystem()
	c := newControl(t, sys, V1)
	if err := c.EnsureCgroup("query-q1"); err != nil {
		t.Fatal(err)
	}
	if len(sys.dirs) != 1 || !strings.HasSuffix(sys.dirs[0], "/query-q1") {
		t.Errorf("dirs = %v", sys.dirs)
	}
	// Idempotent: second ensure does not re-mkdir.
	if err := c.EnsureCgroup("query-q1"); err != nil {
		t.Fatal(err)
	}
	if len(sys.dirs) != 1 {
		t.Errorf("EnsureCgroup not cached: %v", sys.dirs)
	}
	if err := c.SetShares("query-q1", 2048); err != nil {
		t.Fatal(err)
	}
	if got := sys.writes["/sys/fs/cgroup/cpu/lachesis/query-q1/cpu.shares"]; got != "2048" {
		t.Errorf("cpu.shares write = %q", got)
	}
	if err := c.MoveThread(1234, "query-q1"); err != nil {
		t.Fatal(err)
	}
	if got := sys.writes["/sys/fs/cgroup/cpu/lachesis/query-q1/tasks"]; got != "1234" {
		t.Errorf("tasks write = %q", got)
	}
}

func TestCgroupV2WeightConversion(t *testing.T) {
	sys := newFakeSystem()
	c := newControl(t, sys, V2)
	if err := c.EnsureCgroup("g"); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		shares int
		weight string
	}{
		{2, "1"},
		{1024, "39"}, // kernel default shares -> near default weight region
		{262144, "10000"},
	}
	for _, tt := range tests {
		if err := c.SetShares("g", tt.shares); err != nil {
			t.Fatal(err)
		}
		if got := sys.writes["/sys/fs/cgroup/cpu/lachesis/g/cpu.weight"]; got != tt.weight {
			t.Errorf("shares %d -> weight %q, want %q", tt.shares, got, tt.weight)
		}
	}
	if err := c.MoveThread(7, "g"); err != nil {
		t.Fatal(err)
	}
	if got := sys.writes["/sys/fs/cgroup/cpu/lachesis/g/cgroup.threads"]; got != "7" {
		t.Errorf("cgroup.threads write = %q", got)
	}
}

func TestSharesClamping(t *testing.T) {
	sys := newFakeSystem()
	c := newControl(t, sys, V1)
	if err := c.EnsureCgroup("g"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetShares("g", 0); err != nil {
		t.Fatal(err)
	}
	if got := sys.writes["/sys/fs/cgroup/cpu/lachesis/g/cpu.shares"]; got != "2" {
		t.Errorf("shares clamped to %q, want 2", got)
	}
}

func TestSanitizeCgroupNames(t *testing.T) {
	sys := newFakeSystem()
	c := newControl(t, sys, V1)
	if err := c.EnsureCgroup("storm/lr toll#1"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(sys.dirs[0], "/storm_lr_toll_1") {
		t.Errorf("sanitized dir = %v", sys.dirs)
	}
}

func TestErrorsAreWrapped(t *testing.T) {
	sys := newFakeSystem()
	sys.fail = errors.New("EPERM")
	c := newControl(t, sys, V1)
	if err := c.SetNice(1, 0); err == nil || !strings.Contains(err.Error(), "EPERM") {
		t.Errorf("SetNice error = %v", err)
	}
	if err := c.EnsureCgroup("g"); err == nil {
		t.Error("EnsureCgroup should propagate failure")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing root should fail")
	}
}

func TestDryRunSystemLogs(t *testing.T) {
	var buf bytes.Buffer
	c, err := New(Config{Root: "/cg", System: DryRunSystem{W: &buf}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetNice(5, -3); err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureCgroup("g"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetShares("g", 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"renice tid=5 nice=-3", "mkdir -p /cg/g", "cpu.shares"} {
		if !strings.Contains(out, want) {
			t.Errorf("dry-run output missing %q:\n%s", want, out)
		}
	}
}
