package harness

import (
	"fmt"
	"time"
)

// RunScaleOut executes one scale-out run (§6.5): the workload is fission-
// partitioned over `nodes` identical Odroids, each running its own engine
// and — when Lachesis is enabled — its own independent middleware instance
// with no cross-node coordination. The paper's Linear Road partitions by
// key (segment/vehicle), so the partitions are independent: each node
// processes 1/nodes of the total rate. Cross-partition shuffle traffic is
// not modeled (see DESIGN.md).
func RunScaleOut(s Setup, totalRate float64, nodes, rep int) (Result, error) {
	if nodes < 1 {
		nodes = 1
	}
	perNode := totalRate / float64(nodes)
	merged := Result{
		Setup:        s.Name,
		Rate:         totalRate,
		Rep:          rep,
		QueueSamples: make(map[string][]float64),
		PerQuery:     make(map[string]QueryResult),
	}
	var procW, e2eW, count float64
	var qsGoal, fcfsGoal, util, mw float64
	for n := 0; n < nodes; n++ {
		ns := s
		ns.Seed = s.Seed + int64(n)*7919
		r, err := Run(ns, perNode, rep)
		if err != nil {
			return Result{}, fmt.Errorf("node %d: %w", n, err)
		}
		merged.Throughput += r.Throughput
		merged.IngestRate += r.IngestRate
		w := float64(len(r.ProcSamples)) + 1
		procW += r.MeanProc.Seconds() * w
		e2eW += r.MeanE2E.Seconds() * w
		count += w
		merged.ProcSamples = append(merged.ProcSamples, r.ProcSamples...)
		merged.E2ESamples = append(merged.E2ESamples, r.E2ESamples...)
		qsGoal += r.QSGoal
		fcfsGoal += r.FCFSGoal
		util += r.CPUUtil
		mw += r.MWCPUFrac
		merged.Switches += r.Switches
		for op, samples := range r.QueueSamples {
			key := fmt.Sprintf("node%d.%s", n, op)
			merged.QueueSamples[key] = samples
		}
		for q, qr := range r.PerQuery {
			key := q
			if nodes > 1 {
				key = fmt.Sprintf("node%d.%s", n, q)
			}
			merged.PerQuery[key] = qr
		}
	}
	if count > 0 {
		merged.MeanProc = time.Duration(procW / count * float64(time.Second))
		merged.MeanE2E = time.Duration(e2eW / count * float64(time.Second))
	}
	merged.QSGoal = qsGoal / float64(nodes)
	merged.FCFSGoal = fcfsGoal / float64(nodes)
	merged.CPUUtil = util / float64(nodes)
	merged.MWCPUFrac = mw / float64(nodes)
	return merged, nil
}

// SweepScaleOut is Sweep over RunScaleOut: rates are total rates across
// all nodes.
func SweepScaleOut(setups []Setup, totalRates []float64, nodes, reps int, progress func(string)) ([]Series, error) {
	if reps < 1 {
		reps = 1
	}
	out := make([]Series, 0, len(setups))
	for _, s := range setups {
		series := Series{Setup: s}
		for _, rate := range totalRates {
			if progress != nil {
				progress(fmt.Sprintf("%s @ %.0f t/s over %d nodes", s.Name, rate, nodes))
			}
			p := Point{Rate: rate}
			for rep := 0; rep < reps; rep++ {
				r, err := RunScaleOut(s, rate, nodes, rep)
				if err != nil {
					return nil, err
				}
				p.Reps = append(p.Reps, r)
			}
			aggregate(&p)
			series.Points = append(series.Points, p)
		}
		out = append(out, series)
	}
	return out, nil
}
