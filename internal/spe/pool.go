package spe

import (
	"time"

	"lachesis/internal/simos"
)

// TaskScheduler is the decision logic of a user-level streaming scheduler
// (UL-SS). Implementations (EdgeWise, Haren — see internal/ulss) pick which
// physical operator each pool worker executes next. This reproduces the
// state-of-the-art baselines the paper compares against: operators run as
// user-level tasks on a small pool of kernel threads, with fresh in-engine
// metrics but all the UL-SS drawbacks (blocking operations stall a whole
// worker).
type TaskScheduler interface {
	// Register adds newly deployed operators to the scheduler's task set.
	Register(ops []*PhysicalOp)
	// Next picks the operator to run at virtual time now among those for
	// which canRun returns true, or nil if none should run.
	Next(now time.Duration, canRun func(*PhysicalOp) bool) *PhysicalOp
	// TaskDone reports that an operator ran for used CPU time.
	TaskDone(op *PhysicalOp, used time.Duration)
}

// workerPool executes all deployed operators on a fixed set of kernel
// threads, consulting a TaskScheduler for every pick.
type workerPool struct {
	engine *Engine
	sched  TaskScheduler
	batch  time.Duration
	waitQ  *simos.WaitQueue
	// busyUntil marks operators held by a worker until the given virtual
	// time: a worker's timeslice (and any blocking call) occupies the
	// operator for its wall duration, so no other worker may run it
	// meanwhile — operators are single-threaded user-level tasks.
	busyUntil map[*PhysicalOp]time.Duration
	// pickOverhead is charged when a worker wakes up and finds nothing to
	// do, modeling the UL-SS dispatch cost.
	pickOverhead time.Duration
}

func newWorkerPool(e *Engine, sched TaskScheduler, workers int, batch time.Duration) *workerPool {
	if batch <= 0 {
		batch = time.Millisecond
	}
	wp := &workerPool{
		engine:       e,
		sched:        sched,
		batch:        batch,
		waitQ:        e.kernel.NewWaitQueue(e.cfg.Name + ".pool"),
		busyUntil:    make(map[*PhysicalOp]time.Duration),
		pickOverhead: 2 * time.Microsecond,
	}
	return wp
}

func (wp *workerPool) spawnWorkers(n int) error {
	for i := 0; i < n; i++ {
		name := wp.engine.cfg.Name + ".worker"
		if _, err := wp.engine.kernel.Spawn(name, wp.engine.cgroup, wp.workerRunner(i)); err != nil {
			return err
		}
	}
	return nil
}

// anyReady reports whether some pooled operator has runnable work that no
// worker currently holds.
func (wp *workerPool) anyReady(now time.Duration) bool {
	for _, op := range wp.engine.Ops() {
		if op.pooled && now >= wp.busyUntil[op] && op.Ready(now) {
			return true
		}
	}
	return false
}

// anyHeldReady reports whether some pooled operator has work but is
// occupied by another worker's in-flight slice.
func (wp *workerPool) anyHeldReady(now time.Duration) bool {
	for _, op := range wp.engine.Ops() {
		if op.pooled && now < wp.busyUntil[op] && op.Ready(now) {
			return true
		}
	}
	return false
}

func (wp *workerPool) workerRunner(worker int) simos.Runner {
	var lastOp *PhysicalOp
	return simos.RunnerFunc(func(ctx *simos.RunContext, granted time.Duration) simos.Decision {
		budget := granted
		if wp.batch < budget {
			budget = wp.batch
		}
		now := ctx.Now()
		op := wp.sched.Next(now, func(p *PhysicalOp) bool {
			return now >= wp.busyUntil[p] && p.Ready(now)
		})
		if op == nil {
			// Nothing runnable. Ingress operators run on their own threads
			// and wake the pool when they push, so workers just wait. If a
			// ready operator is merely held by another worker, re-check
			// shortly instead of blocking on a wake that already happened.
			if wp.anyHeldReady(now) {
				return simos.Decision{Used: wp.pickOverhead, Action: simos.ActionYield}
			}
			return simos.Decision{
				Action:     simos.ActionWait,
				WaitOn:     wp.waitQ,
				WaitUnless: wp.anyReady,
			}
		}

		// Switching the worker to a different operator changes its working
		// set: charge the same cache-pollution cost a kernel context
		// switch pays. This keeps the UL-SS baselines honest — their
		// advantage is fresh metrics, not free operator hopping.
		var overhead time.Duration
		if op != lastOp {
			overhead = wp.engine.kernel.SwitchCost()
			if overhead > budget/2 {
				overhead = budget / 2
			}
			lastOp = op
		}

		oc := opContext{
			now: now,
			// In pool mode, readiness transitions wake idle workers.
			wakeData: func(*PhysicalOp) { ctx.Wake(wp.waitQ) },
			wakeSpace: func(t *PhysicalOp) {
				// Space frees both pooled consumers and threaded upstreams
				// (e.g. an ingress blocked on a full bolt queue).
				ctx.Wake(wp.waitQ)
				ctx.Wake(t.spaceQ)
			},
		}
		res := op.runFor(&oc, budget-overhead)
		res.used += overhead
		wp.sched.TaskDone(op, res.used)
		// The operator is occupied for the wall duration of this slice.
		wp.busyUntil[op] = now + res.used

		if res.status == statusBlocked {
			// The defining UL-SS drawback (§6.4): a blocking operation
			// stalls the whole worker thread; the operator cannot be
			// handed to another worker meanwhile.
			wp.busyUntil[op] = res.until
			return simos.Decision{Used: res.used, Action: simos.ActionSleep, WakeAt: res.until}
		}
		used := res.used
		if used == 0 {
			// The pick turned out to have no work (e.g. backpressured):
			// charge the dispatch overhead so the loop cannot spin for
			// free.
			used = wp.pickOverhead
		}
		return simos.Decision{Used: used, Action: simos.ActionYield}
	})
}
