// Multi-SPE scheduling (goal G5): queries running in two *different*
// engines — a Storm-flavor process and a Liebre-flavor process — are
// cross-scheduled by one Lachesis instance. Each query gets a cgroup with
// equal cpu.shares; inside each query, Queue-Size priorities are applied
// by nice. No UL-SS can do this: they are compiled into a single engine.
//
//	go run ./examples/multispe
package main

import (
	"fmt"
	"os"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/driver"
	"lachesis/internal/metrics"
	"lachesis/internal/simctl"
	"lachesis/internal/simos"
	"lachesis/internal/spe"
	"lachesis/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multispe:", err)
		os.Exit(1)
	}
}

func runOnce(withLachesis bool) (map[string]time.Duration, error) {
	k := simos.New(simos.XeonServer())

	storm, err := spe.New(k, spe.Config{Name: "storm", Flavor: spe.FlavorStorm, Seed: 4})
	if err != nil {
		return nil, err
	}
	liebre, err := spe.New(k, spe.Config{Name: "liebre", Flavor: spe.FlavorLiebre, Seed: 5})
	if err != nil {
		return nil, err
	}

	deps := map[string]*spe.Deployment{}
	// VoipStream on the Storm-flavor engine.
	d, err := storm.Deploy(workloads.VoipStream(), workloads.VSSource(3600, 7))
	if err != nil {
		return nil, err
	}
	deps["vs"] = d
	// Four synthetic pipelines on the Liebre-flavor engine.
	for i, q := range workloads.SYN(workloads.SynConfig{Queries: 4, OpsPerQuery: 5, Seed: 9}) {
		d, err := liebre.Deploy(q, workloads.SynSource(900, int64(10+i)))
		if err != nil {
			return nil, err
		}
		deps[q.Name] = d
	}

	if withLachesis {
		store := metrics.NewStore(time.Second)
		var drivers []core.Driver
		for _, eng := range []*spe.Engine{storm, liebre} {
			if err := eng.StartReporter(store, time.Second); err != nil {
				return nil, err
			}
			drv, err := driver.New(eng, store)
			if err != nil {
				return nil, err
			}
			drivers = append(drivers, drv)
		}
		osAdapter, err := simctl.NewOSAdapter(k)
		if err != nil {
			return nil, err
		}
		mw := core.NewMiddleware(nil)
		if err := mw.Bind(core.Binding{
			// Equal cgroup shares per query + QS by nice within: the same
			// multi-dimensional schedule as the paper's §6.6.
			Policy:     core.GroupPerQuery(core.NewQSPolicy()),
			Translator: core.NewCombinedTranslator(osAdapter, 0, 0),
			Drivers:    drivers,
			Period:     time.Second,
		}); err != nil {
			return nil, err
		}
		if _, err := simctl.StartMiddleware(k, mw); err != nil {
			return nil, err
		}
	}

	k.RunUntil(10 * time.Second)
	for _, d := range deps {
		d.ResetStats()
	}
	k.RunUntil(70 * time.Second)
	out := make(map[string]time.Duration, len(deps))
	for name, d := range deps {
		out[name] = d.Latencies().MeanProc
	}
	return out, nil
}

func run() error {
	fmt.Println("multi-SPE scheduling: VoipStream (Storm flavor) + 4 SYN pipelines (Liebre")
	fmt.Println("flavor) on one server, cross-scheduled by a single Lachesis instance")
	fmt.Printf("\n%-12s", "scheduler")
	queryNames := []string{"vs", "syn00", "syn01", "syn02", "syn03"}
	for _, q := range queryNames {
		fmt.Printf(" %12s", q)
	}
	fmt.Println()
	for _, lachesis := range []bool{false, true} {
		name := "os"
		if lachesis {
			name = "lachesis"
		}
		lats, err := runOnce(lachesis)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s", name)
		for _, q := range queryNames {
			fmt.Printf(" %12v", lats[q].Round(10*time.Microsecond))
		}
		fmt.Println()
	}
	return nil
}
