package fleet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"lachesis/internal/driver"
	"lachesis/internal/guard"
	"lachesis/internal/span"
)

// flakyAgent fails transiently a set number of times before succeeding.
type flakyAgent struct {
	mu        sync.Mutex
	failures  int
	proposals int
	status    guard.Status
}

func (f *flakyAgent) Propose([]byte) (guard.Status, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failures > 0 {
		f.failures--
		return guard.Status{}, driver.MarkTransient(errors.New("timeout"))
	}
	f.proposals++
	return f.status, nil
}
func (f *flakyAgent) Status() (guard.Status, error)  { return f.status, nil }
func (f *flakyAgent) SLO() (guard.SLOSample, error)  { return guard.SLOSample{}, nil }
func (f *flakyAgent) proposalsMade() int             { f.mu.Lock(); defer f.mu.Unlock(); return f.proposals }

func oneAgent(c AgentClient) ConnFactory {
	return func(AgentRecord) AgentClient { return c }
}

func TestFanoutRetriesTransientFailures(t *testing.T) {
	ag := &flakyAgent{failures: 2}
	f := NewFanout(noSleep(FanoutConfig{Attempts: 3}))
	outs := f.Push(0, []AgentRecord{{ID: "a"}}, oneAgent(ag), "v1", []byte("{}"))
	if len(outs) != 1 || !outs[0].OK || outs[0].Attempts != 3 {
		t.Fatalf("outcome = %+v, want OK after 3 attempts", outs)
	}
	if ag.proposalsMade() != 1 {
		t.Fatalf("proposals = %d, want 1", ag.proposalsMade())
	}
}

func TestFanoutConflictWithOwnVersionIsIdempotentSuccess(t *testing.T) {
	// The agent 409s (our earlier push landed, the response was lost) but
	// reports our candidate in flight: the push is already complete.
	ag := &fakeAgent{busy: true, st: guard.Status{Active: true, Candidate: "v1"}}
	f := NewFanout(noSleep(FanoutConfig{Attempts: 2}))
	outs := f.Push(0, []AgentRecord{{ID: "a"}}, oneAgent(ag), "v1", []byte("{}"))
	if !outs[0].OK || outs[0].Conflict {
		t.Fatalf("outcome = %+v, want idempotent OK", outs[0])
	}
}

func TestFanoutForeignConflictIsNotSuccess(t *testing.T) {
	ag := &fakeAgent{busy: true, st: guard.Status{Active: true, Candidate: "other"}}
	f := NewFanout(noSleep(FanoutConfig{Attempts: 2}))
	outs := f.Push(0, []AgentRecord{{ID: "a"}}, oneAgent(ag), "v1", []byte("{}"))
	if outs[0].OK || !outs[0].Conflict {
		t.Fatalf("outcome = %+v, want conflict", outs[0])
	}
}

func TestFanoutBreakerOpensSkipsAndProbes(t *testing.T) {
	ag := &fakeAgent{down: true}
	f := NewFanout(noSleep(FanoutConfig{
		Attempts: 1, BreakerThreshold: 2, BreakerCooldown: 10 * time.Second,
	}))
	rec := []AgentRecord{{ID: "a"}}

	// Two failed rounds open the breaker.
	now := time.Duration(0)
	for i := 0; i < 2; i++ {
		outs := f.Push(now, rec, oneAgent(ag), "v1", []byte("{}"))
		if outs[0].OK || outs[0].Skipped {
			t.Fatalf("round %d = %+v, want plain failure", i, outs[0])
		}
		now += time.Second
	}
	if !f.BreakerOpen(now, "a") {
		t.Fatal("breaker must be open after threshold failures")
	}

	// Within the cooldown: skipped without touching the agent.
	outs := f.Push(now, rec, oneAgent(ag), "v1", []byte("{}"))
	if !outs[0].Skipped || outs[0].Attempts != 0 {
		t.Fatalf("outcome = %+v, want skipped with zero attempts", outs[0])
	}

	// After the cooldown the probe goes through; the agent recovered, so
	// the breaker closes again.
	ag.setDown(false)
	now += 11 * time.Second
	outs = f.Push(now, rec, oneAgent(ag), "v1", []byte("{}"))
	if !outs[0].OK {
		t.Fatalf("probe = %+v, want OK", outs[0])
	}
	if f.BreakerOpen(now, "a") {
		t.Fatal("breaker must close after a successful probe")
	}
}

func TestFanoutPushesAgentsInParallelOrderPreserved(t *testing.T) {
	ff := newFakeFleet("a", "b", "c")
	f := NewFanout(noSleep(FanoutConfig{Attempts: 1, Parallel: 2}))
	recs := []AgentRecord{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	outs := f.Push(0, recs, ff.conns, "v1", []byte("{}"))
	if len(outs) != 3 {
		t.Fatalf("outcomes = %d, want 3", len(outs))
	}
	for i, o := range outs {
		if o.Agent != recs[i].ID || !o.OK {
			t.Fatalf("outcome %d = %+v, want OK for %s (input order)", i, o, recs[i].ID)
		}
	}
}

// fencedFakeAgent runs pushes through an EpochGate before its embedded
// fakeAgent, like a real daemon's /policy handler.
type fencedFakeAgent struct {
	fakeAgent
	gate *EpochGate
}

func (f *fencedFakeAgent) ProposeFenced(payload []byte, _ string, epoch int64) (guard.Status, error) {
	if err := f.gate.Admit(epoch); err != nil {
		return guard.Status{}, err
	}
	return f.Propose(payload)
}

func TestFanoutFencedPushIsTerminalAndKeepsBreakerClosed(t *testing.T) {
	gate, err := NewEpochGate("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	gate.Observe(5)
	ag := &fencedFakeAgent{gate: gate}
	f := NewFanout(noSleep(FanoutConfig{Attempts: 3, BreakerThreshold: 1}))
	recs := []AgentRecord{{ID: "a"}}

	outs := f.PushEpoch(0, recs, oneAgent(ag), "v1", []byte("{}"), span.Context{}, 3)
	if !outs[0].Fenced || outs[0].OK {
		t.Fatalf("stale-epoch push = %+v, want fenced", outs[0])
	}
	// FencedError is not transient: retrying the same epoch can never
	// succeed, so no attempts are burned on a lost cause.
	if outs[0].Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (fenced is terminal)", outs[0].Attempts)
	}
	// A fenced rejection is a healthy agent saying no: even at threshold
	// 1 the breaker stays closed, so the promoted leader's pushes are not
	// skipped later.
	if f.BreakerOpen(time.Millisecond, "a") {
		t.Fatal("breaker must stay closed after a fenced rejection")
	}

	// Epoch 0 degrades to an unfenced push (local operator path).
	if outs := f.PushEpoch(0, recs, oneAgent(ag), "v1", []byte("{}"), span.Context{}, 0); !outs[0].OK {
		t.Fatalf("unfenced push = %+v, want OK", outs[0])
	}
	// The current epoch is admitted.
	if outs := f.PushEpoch(0, recs, oneAgent(ag), "v1", []byte("{}"), span.Context{}, 5); !outs[0].OK {
		t.Fatalf("current-epoch push = %+v, want OK", outs[0])
	}
}

func TestFanoutBreakerHalfOpenConcurrentProbes(t *testing.T) {
	// Many concurrent pushes hit the same agent exactly when its breaker
	// cooldown lapses: the half-open window must stay consistent under
	// the race detector — no OK outcomes while the agent is down, and
	// the breaker re-opens afterwards.
	ag := &fakeAgent{down: true}
	f := NewFanout(noSleep(FanoutConfig{
		Attempts: 1, BreakerThreshold: 1, BreakerCooldown: 5 * time.Second, Parallel: 8,
	}))
	recs := make([]AgentRecord, 16)
	for i := range recs {
		recs[i] = AgentRecord{ID: "a"}
	}

	f.Push(0, recs[:1], oneAgent(ag), "v1", []byte("{}"))
	if !f.BreakerOpen(time.Second, "a") {
		t.Fatal("breaker must open after the threshold failure")
	}

	now := 6 * time.Second // past the cooldown: probes race through
	outs := f.Push(now, recs, oneAgent(ag), "v1", []byte("{}"))
	for i, o := range outs {
		if o.OK {
			t.Fatalf("probe %d = %+v, want failure or skip while agent is down", i, o)
		}
	}
	if !f.BreakerOpen(now+time.Millisecond, "a") {
		t.Fatal("breaker must re-open after failed probes")
	}

	// The agent recovers; the next probe wave closes the breaker.
	ag.setDown(false)
	now = 12 * time.Second
	outs = f.Push(now, recs, oneAgent(ag), "v1", []byte("{}"))
	ok := 0
	for _, o := range outs {
		if o.OK {
			ok++
		}
	}
	if ok == 0 {
		t.Fatalf("no probe reached the recovered agent: %+v", outs)
	}
	if f.BreakerOpen(now, "a") {
		t.Fatal("breaker must close after successful probes")
	}
}
