// Package metrics provides the Graphite-like time-series store through
// which Lachesis observes the SPEs. Engines publish raw metric samples into
// the store; the Lachesis drivers read them back. The store quantizes
// samples to a fixed resolution (one second in the paper's evaluation), so
// the middleware always works with metrics that are up to one resolution
// interval stale — a deliberately modeled disadvantage versus user-level
// schedulers that read fresh in-engine state (§6.4, Fig. 15).
package metrics

import (
	"sort"
	"time"
)

// DefaultResolution matches the paper's Graphite deployment: one second.
const DefaultResolution = time.Second

// defaultRetention is how many buckets each series keeps.
const defaultRetention = 240

// Point is one quantized sample.
type Point struct {
	At    time.Duration
	Value float64
}

// Store is an in-memory time-series database with fixed resolution.
type Store struct {
	resolution time.Duration
	retention  int
	window     time.Duration // 0 = count-based retention only
	series     map[string][]Point

	records int64
	evicted int64
}

// NewStore creates a store. resolution <= 0 selects DefaultResolution.
func NewStore(resolution time.Duration) *Store {
	if resolution <= 0 {
		resolution = DefaultResolution
	}
	return &Store{
		resolution: resolution,
		retention:  defaultRetention,
		series:     make(map[string][]Point),
	}
}

// Resolution returns the store's time quantum.
func (s *Store) Resolution() time.Duration { return s.resolution }

// Records returns the number of samples recorded over the store's
// lifetime.
func (s *Store) Records() int64 { return s.records }

// Evicted returns how many samples the retention window has dropped over
// the store's lifetime (always 0 with the window off).
func (s *Store) Evicted() int64 { return s.evicted }

// SetRetentionWindow enables time-based retention: on each Record, samples
// older than window behind the written sample are evicted from that
// series. It composes with the count bound (whichever evicts first wins).
// window <= 0 restores the default, count-based-only retention. A
// long-running daemon uses this to bound memory by age rather than by
// sample count, which count-based retention alone cannot do for series
// reported at different rates.
func (s *Store) SetRetentionWindow(window time.Duration) {
	if window < 0 {
		window = 0
	}
	s.window = window
}

// RetentionWindow returns the active time-based retention window (0 when
// off).
func (s *Store) RetentionWindow() time.Duration { return s.window }

// Record stores a sample, quantized down to the containing bucket. A
// second sample in the same bucket overwrites the first. Record implements
// the engine MetricSink interface.
func (s *Store) Record(now time.Duration, series string, value float64) {
	at := now / s.resolution * s.resolution
	buf := s.series[series]
	s.records++
	if n := len(buf); n > 0 && buf[n-1].At == at {
		buf[n-1].Value = value
		return
	}
	buf = append(buf, Point{At: at, Value: value})
	if len(buf) > s.retention {
		s.evicted += int64(len(buf) - s.retention)
		buf = buf[len(buf)-s.retention:]
	}
	if s.window > 0 {
		cutoff := at - s.window
		drop := 0
		for drop < len(buf)-1 && buf[drop].At < cutoff {
			drop++
		}
		if drop > 0 {
			s.evicted += int64(drop)
			buf = buf[drop:]
		}
	}
	s.series[series] = buf
}

// Latest returns the most recent sample of a series.
func (s *Store) Latest(series string) (Point, bool) {
	buf := s.series[series]
	if len(buf) == 0 {
		return Point{}, false
	}
	return buf[len(buf)-1], true
}

// At returns the sample in the bucket containing t, or the nearest earlier
// sample (how Graphite answers point queries for sparse series).
func (s *Store) At(series string, t time.Duration) (Point, bool) {
	buf := s.series[series]
	if len(buf) == 0 {
		return Point{}, false
	}
	bucket := t / s.resolution * s.resolution
	idx := sort.Search(len(buf), func(i int) bool { return buf[i].At > bucket })
	if idx == 0 {
		return Point{}, false
	}
	return buf[idx-1], true
}

// Range returns all samples with from <= At <= to, in time order.
func (s *Store) Range(series string, from, to time.Duration) []Point {
	buf := s.series[series]
	var out []Point
	for _, p := range buf {
		if p.At >= from && p.At <= to {
			out = append(out, p)
		}
	}
	return out
}

// SeriesNames returns all series names, sorted.
func (s *Store) SeriesNames() []string {
	out := make([]string, 0, len(s.series))
	for name := range s.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HasSeries reports whether a series has at least one sample.
func (s *Store) HasSeries(series string) bool { return len(s.series[series]) > 0 }
