package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/driver"
	"lachesis/internal/metrics"
	"lachesis/internal/simctl"
	"lachesis/internal/simos"
	"lachesis/internal/spe"
	"lachesis/internal/workloads"
)

// The overhead experiment quantifies the middleware's own decision-cycle
// cost (the paper reports ~1% CPU, §6.7): a Liebre engine runs N SYN
// queries with one Lachesis binding per query, and the middleware is
// stepped on the HOST clock, interleaved with virtual-time kernel
// execution. Step's wall-clock self-telemetry (lachesis_step_seconds and
// the per-phase histograms) then measures what one decision cycle really
// costs this process as bindings scale, independent of the simulated CPU
// model. Every applied change is recorded in the decision-audit trail,
// optionally streamed to JSONL.

const (
	overheadSeed = 29
	// overheadRate is per-query, comfortably below SYN saturation so queues
	// stay bounded and entity counts stable.
	overheadRate = 100
	overheadOps  = 5 // pipeline length per SYN query
)

// overheadBindingCounts are the swept binding counts (>= 3 points).
var overheadBindingCounts = []int{1, 4, 8, 16}

// OverheadRow is one measured binding count of the overhead sweep — the
// row format of BENCH_overhead.json.
type OverheadRow struct {
	Bindings int   `json:"bindings"`
	Entities int   `json:"entities"`
	Steps    int64 `json:"steps"`
	// Decision-cycle wall-clock cost in nanoseconds.
	P50Ns  int64 `json:"p50_ns"`
	P95Ns  int64 `json:"p95_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MeanNs int64 `json:"mean_ns"`
	// Control-plane effect of the cycles.
	ControlOps  int64 `json:"control_ops"`
	CachedOps   int64 `json:"cached_ops"`
	AuditEvents int64 `json:"audit_events"`
	StepErrors  int64 `json:"step_errors"`
}

// OverheadReport is the BENCH_overhead.json document.
type OverheadReport struct {
	Experiment string        `json:"experiment"`
	Warmup     time.Duration `json:"warmup_ns"`
	Measure    time.Duration `json:"measure_ns"`
	Rows       []OverheadRow `json:"rows"`
}

// overheadStack exposes the assembled run to the cross-check test.
type overheadStack struct {
	kernel  *simos.Kernel
	adapter *simctl.OSAdapter
	mw      *core.Middleware
	trail   *core.AuditTrail
	drv     *driver.Driver
}

// runOverhead assembles n per-query bindings over one Liebre engine and
// manually steps the middleware on the host clock through warmup+measure
// virtual seconds. Audit events stream to sink (may be nil).
func runOverhead(n int, sc Scale, sink core.AuditSink) (OverheadRow, *overheadStack, error) {
	row := OverheadRow{Bindings: n}
	k := simos.New(simos.XeonServer())
	eng, err := spe.New(k, spe.Config{Name: "liebre0", Flavor: spe.FlavorLiebre, Seed: overheadSeed})
	if err != nil {
		return row, nil, fmt.Errorf("engine: %w", err)
	}
	cfg := workloads.SynConfig{Queries: n, OpsPerQuery: overheadOps, Seed: overheadSeed}
	queries := workloads.SYN(cfg)
	names := make([]string, 0, n)
	for i, q := range queries {
		names = append(names, q.Name)
		if _, err := eng.Deploy(q, workloads.SynSource(overheadRate, overheadSeed+int64(i)*31)); err != nil {
			return row, nil, fmt.Errorf("deploy %s: %w", q.Name, err)
		}
	}

	store := metrics.NewStore(time.Second)
	if err := eng.StartReporter(store, time.Second); err != nil {
		return row, nil, fmt.Errorf("reporter: %w", err)
	}
	drv, err := driver.New(eng, store)
	if err != nil {
		return row, nil, fmt.Errorf("driver: %w", err)
	}
	osa, err := simctl.NewOSAdapter(k)
	if err != nil {
		return row, nil, err
	}

	trail := core.NewAuditTrail(0, sink)
	mw := core.NewMiddleware(nil)
	mw.SetAudit(trail)
	reg := mw.Telemetry()
	drv.SetTelemetry(reg)
	osa.SetTelemetry(reg)
	for _, name := range names {
		if err := mw.Bind(core.Binding{
			Policy:     core.GroupPerQuery(core.NewQSPolicy()),
			Translator: core.NewCombinedTranslator(core.AuditOS(osa, trail), 0, 0),
			Drivers:    []core.Driver{drv},
			Queries:    []string{name},
			Period:     time.Second,
		}); err != nil {
			return row, nil, fmt.Errorf("bind %s: %w", name, err)
		}
	}

	// Warm the engine and the metric pipeline, then step on the host clock:
	// virtual time advances between steps, host time is measured inside
	// them.
	now := sc.Warmup
	k.RunUntil(now)
	end := sc.Warmup + sc.Measure
	var stepErrs int64
	for now < end {
		stats, err := mw.Step(now)
		if err != nil {
			stepErrs++
		}
		next := stats.Next
		if next <= now {
			next = now + time.Second
		}
		now = next
		k.RunUntil(now)
	}

	sum := reg.Histogram(core.MetricStepSeconds).Summary()
	row.Entities = len(drv.Entities())
	row.Steps = sum.Count
	row.P50Ns = sum.P50.Nanoseconds()
	row.P95Ns = sum.P95.Nanoseconds()
	row.P99Ns = sum.P99.Nanoseconds()
	row.MeanNs = sum.Mean.Nanoseconds()
	row.ControlOps = osa.ControlOps
	row.CachedOps = osa.CachedOps
	row.AuditEvents = trail.Total()
	row.StepErrors = stepErrs
	st := &overheadStack{kernel: k, adapter: osa, mw: mw, trail: trail, drv: drv}
	return row, st, nil
}

// overheadExp sweeps binding counts, prints the cost table, and emits the
// machine-readable artifacts (BENCH_overhead.json, the decision-audit
// JSONL of the largest run, and a Prometheus metrics dump) into
// sc.ArtifactDir when set.
func overheadExp(w io.Writer, sc Scale) error {
	counts := overheadBindingCounts
	report := OverheadReport{Experiment: "overhead", Warmup: sc.Warmup, Measure: sc.Measure}
	var lastStack *overheadStack

	for i, n := range counts {
		var sink core.AuditSink
		var auditFile *os.File
		if sc.ArtifactDir != "" && i == len(counts)-1 {
			f, err := os.Create(filepath.Join(sc.ArtifactDir, "BENCH_overhead_audit.jsonl"))
			if err != nil {
				return err
			}
			auditFile = f
			sink = core.NewJSONLSink(f)
		}
		if sc.Progress != nil {
			sc.Progress(fmt.Sprintf("overhead: %d binding(s)", n))
		}
		row, st, err := runOverhead(n, sc, sink)
		if auditFile != nil {
			if cerr := auditFile.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			return err
		}
		report.Rows = append(report.Rows, row)
		lastStack = st
	}

	fmt.Fprintln(w, "# Overhead: wall-clock decision-cycle cost per binding count")
	fmt.Fprintf(w, "%10s %10s %8s %12s %12s %12s %12s %12s\n",
		"bindings", "entities", "steps", "p50", "p95", "p99", "ctl-ops", "audit-evts")
	for _, r := range report.Rows {
		fmt.Fprintf(w, "%10d %10d %8d %12v %12v %12v %12d %12d\n",
			r.Bindings, r.Entities, r.Steps,
			time.Duration(r.P50Ns), time.Duration(r.P95Ns), time.Duration(r.P99Ns),
			r.ControlOps, r.AuditEvents)
	}
	fmt.Fprintln(w)

	if sc.ArtifactDir != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(sc.ArtifactDir, "BENCH_overhead.json"), append(data, '\n'), 0o644); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(sc.ArtifactDir, "BENCH_overhead_metrics.prom"))
		if err != nil {
			return err
		}
		werr := lastStack.mw.Telemetry().WritePrometheus(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(w, "artifacts: %s\n", filepath.Join(sc.ArtifactDir, "BENCH_overhead.json"))
	}
	return nil
}
