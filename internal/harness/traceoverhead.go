package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/span"
)

// The traceoverhead experiment prices the span layer on the hot path: two
// copies of the 256-binding parallel decision stack from the scale
// experiment — one with no recorder attached (the single nil-pointer test
// per instrumentation site), one with a full ring recorder in production
// configuration (slow-span floor on, so a healthy cycle emits its cycle
// root, slow fetches, and slow/failed binding phases) — are stepped on
// the host clock in interleaved pairs. The acceptance bound mirrors the
// tracing design goal: tracing-on cycle p95 must stay within
// traceMaxRatio of tracing-off.
//
// Pairing is the load-bearing methodology: every measured step times the
// untraced stack and the traced stack back to back, alternating which
// goes first, so machine-level noise (CPU throttling on shared hosts,
// scheduler interference, runtime GC) lands on both modes symmetrically.
// Measuring the modes as two whole sequential runs instead charges
// whichever run executes later with the host's accumulated throttling —
// observed as a spurious 1.3-1.5x "overhead" that flips sign when the
// run order flips. Percentiles are then computed over the POOL of all
// repetitions' paired samples: a per-rep p95 of ~20 steps is the second-
// worst sample and one scheduler hiccup wide, while the pooled tail is
// estimated from every step both modes walked through together.
//
// The traced run also closes the histogram->trace loop: the step-seconds
// p99 bucket must carry an exemplar naming a trace the recorder actually
// holds, so a tail outlier in /metrics leads straight to its span tree.

const (
	traceBindings = 256
	// traceMaxRatio is the acceptance bound on p95(on)/p95(off).
	traceMaxRatio = 1.05
	// traceMinReps: even quick scale runs this many paired repetitions, so
	// the pooled percentiles draw on fresh stacks more than once.
	traceMinReps = 4
	// traceMinMeasure: measured steps per repetition, floor. A p95 over
	// fewer pooled samples is one scheduler hiccup wide — quick scale's
	// default 20-step window repeatedly read a 1.05-1.11x "ratio" on a
	// throttled host where a 180-sample pool read 1.00x.
	traceMinMeasure = 40
)

// TraceOverheadReport is the BENCH_trace.json document.
type TraceOverheadReport struct {
	Experiment   string `json:"experiment"`
	Bindings     int    `json:"bindings"`
	Reps         int    `json:"reps"`
	WarmupSteps  int    `json:"warmup_steps"`
	MeasureSteps int    `json:"measure_steps"`
	// Cycle cost percentiles per mode (ns), pooled across repetitions.
	OffP50Ns int64 `json:"off_p50_ns"`
	OffP95Ns int64 `json:"off_p95_ns"`
	OnP50Ns  int64 `json:"on_p50_ns"`
	OnP95Ns  int64 `json:"on_p95_ns"`
	// RatioP95 = OnP95Ns/OffP95Ns, accepted iff <= MaxRatio.
	RatioP95 float64 `json:"ratio_p95"`
	MaxRatio float64 `json:"max_ratio"`
	Accepted bool    `json:"accepted"`
	// SpansPerCycle is the traced run's recorded spans per decision cycle.
	SpansPerCycle float64 `json:"spans_per_cycle"`
	// P99ExemplarTrace is the trace ID the step-seconds p99 bucket names;
	// ExemplarLinked reports that the recorder holds spans for it.
	P99ExemplarTrace string `json:"p99_exemplar_trace"`
	ExemplarLinked   bool   `json:"exemplar_linked"`
}

// traceRun is one measured stack: sorted cycle durations plus the traced
// stack's recorder and telemetry for the exemplar check.
type traceRun struct {
	durs  []time.Duration
	rec   *span.Recorder
	steps int
	mw    *core.Middleware
}

// percentile reads p from sorted durations (the scale experiment's
// convention: index (n-1)*p/100).
func (t traceRun) percentile(p int) time.Duration {
	return t.durs[(len(t.durs)-1)*p/100]
}

// buildTraceStack builds one 256-binding parallel stack (scale experiment
// drivers: modeled fetch round trip, coalesced writes), optionally with a
// production-configured recorder attached.
func buildTraceStack(n, warmupSteps int, traced bool, seed uint64) (traceRun, error) {
	mw := core.NewMiddleware(nil)
	cnt := &scaleCountingOS{}
	warmup := time.Duration(warmupSteps) * scalePeriod
	mw.SetParallelism(core.Parallelism{
		FetchWorkers: scaleFetchWorkers,
		ApplyWorkers: scaleApplyWorkers,
	})
	mw.SetWriteGate(core.NewDriverGate())
	for i := 0; i < n; i++ {
		drv := newScaleDriver(i, warmup, scaleFetchLatency, scaleChurnEvery)
		co := core.NewCoalescer(cnt, nil)
		if err := mw.Bind(core.Binding{
			Policy:     core.GroupPerQuery(core.NewQSPolicy()),
			Translator: core.NewCombinedTranslator(co, 0, 0),
			Drivers:    []core.Driver{drv},
			Coalescer:  co,
			Period:     scalePeriod,
		}); err != nil {
			return traceRun{}, fmt.Errorf("bind %s: %w", drv.name, err)
		}
	}
	run := traceRun{mw: mw}
	if traced {
		// Ring-only recorder: the capacity comfortably exceeds one cycle's
		// span tree, which is what the flight recorder needs in production.
		run.rec = span.New(span.Config{Process: "bench", Seed: seed})
		mw.SetSpans(run.rec)
		// Production configuration, as the daemons run it: leaf phase spans
		// gated by the slow-span floor (slow or failed phases still emit)
		// and per-cycle emission bounded by the span budget.
		mw.SetSpanFloor(core.DefaultSpanFloor)
		mw.SetSpanBudget(core.DefaultSpanBudget)
	}
	return run, nil
}

// runTraceOverhead builds both stacks and steps them in interleaved
// pairs, returning the untraced and traced runs with their sorted
// measured cycle durations (see the methodology note atop this file).
func runTraceOverhead(n, warmupSteps, measureSteps int, seed uint64) (traceRun, traceRun, error) {
	off, err := buildTraceStack(n, warmupSteps, false, 0)
	if err != nil {
		return traceRun{}, traceRun{}, err
	}
	on, err := buildTraceStack(n, warmupSteps, true, seed)
	if err != nil {
		return traceRun{}, traceRun{}, err
	}
	off.steps, on.steps = measureSteps, measureSteps
	step := func(r *traceRun, s int) error {
		t0 := time.Now()
		if _, err := r.mw.Step(time.Duration(s) * scalePeriod); err != nil {
			return fmt.Errorf("step %d: %w", s, err)
		}
		if s >= warmupSteps {
			r.durs = append(r.durs, time.Since(t0))
		}
		return nil
	}
	off.durs = make([]time.Duration, 0, measureSteps)
	on.durs = make([]time.Duration, 0, measureSteps)
	for s := 0; s < warmupSteps+measureSteps; s++ {
		first, second := &off, &on
		if s%2 == 1 {
			first, second = &on, &off
		}
		if err := step(first, s); err != nil {
			return traceRun{}, traceRun{}, err
		}
		if err := step(second, s); err != nil {
			return traceRun{}, traceRun{}, err
		}
	}
	sort.Slice(off.durs, func(i, j int) bool { return off.durs[i] < off.durs[j] })
	sort.Slice(on.durs, func(i, j int) bool { return on.durs[i] < on.durs[j] })
	return off, on, nil
}

// traceOverheadExp runs the interleaved sweep and emits BENCH_trace.json.
func traceOverheadExp(w io.Writer, sc Scale) error {
	warmup, measure := scaleSteps(sc)
	if measure < traceMinMeasure {
		measure = traceMinMeasure
	}
	reps := sc.Reps
	if reps < traceMinReps {
		reps = traceMinReps
	}
	report := TraceOverheadReport{
		Experiment: "traceoverhead", Bindings: traceBindings, Reps: reps,
		WarmupSteps: warmup, MeasureSteps: measure, MaxRatio: traceMaxRatio,
	}

	var offAll, onAll []time.Duration
	var lastTraced traceRun
	for rep := 0; rep < reps; rep++ {
		if sc.Progress != nil {
			sc.Progress(fmt.Sprintf("traceoverhead: rep %d/%d, %d bindings paired off/on", rep+1, reps, traceBindings))
		}
		off, on, err := runTraceOverhead(traceBindings, warmup, measure, uint64(1000+rep))
		if err != nil {
			return err
		}
		offAll = append(offAll, off.durs...)
		onAll = append(onAll, on.durs...)
		lastTraced = on
		// Histogram->span link, checked per repetition while the rep's
		// traces are still in the ring: the step-seconds p99 bucket must
		// carry an exemplar naming a trace the recorder holds. (The ring is
		// bounded, so checking only after all reps would race eviction.)
		if ex, ok := on.mw.Telemetry().Histogram(core.MetricStepSeconds).Exemplar(0.99); ok {
			report.P99ExemplarTrace = ex
			if len(on.rec.TraceSpans(ex)) > 0 {
				report.ExemplarLinked = true
			}
		}
	}
	sort.Slice(offAll, func(i, j int) bool { return offAll[i] < offAll[j] })
	sort.Slice(onAll, func(i, j int) bool { return onAll[i] < onAll[j] })
	offPool := traceRun{durs: offAll}
	onPool := traceRun{durs: onAll}
	offP50, offP95 := offPool.percentile(50), offPool.percentile(95)
	onP50, onP95 := onPool.percentile(50), onPool.percentile(95)
	report.OffP50Ns, report.OffP95Ns = offP50.Nanoseconds(), offP95.Nanoseconds()
	report.OnP50Ns, report.OnP95Ns = onP50.Nanoseconds(), onP95.Nanoseconds()
	report.RatioP95 = float64(onP95) / float64(offP95)
	report.Accepted = report.RatioP95 <= traceMaxRatio
	report.SpansPerCycle = float64(lastTraced.rec.Total()) / float64(warmup+lastTraced.steps)

	fmt.Fprintln(w, "# Trace overhead: cycle cost with and without the span recorder")
	fmt.Fprintf(w, "%10s %6s %12s %12s %12s %12s %8s %9s\n",
		"bindings", "reps", "off-p50", "off-p95", "on-p50", "on-p95", "ratio", "accepted")
	fmt.Fprintf(w, "%10d %6d %12v %12v %12v %12v %7.3fx %9v\n",
		report.Bindings, report.Reps, offP50, offP95, onP50, onP95,
		report.RatioP95, report.Accepted)
	fmt.Fprintf(w, "spans/cycle: %.0f   p99 exemplar: %s (linked=%v)\n\n",
		report.SpansPerCycle, report.P99ExemplarTrace, report.ExemplarLinked)

	if sc.ArtifactDir != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(sc.ArtifactDir, "BENCH_trace.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "artifacts: %s\n", path)
	}
	if !report.Accepted {
		return fmt.Errorf("traceoverhead: p95 ratio %.3f exceeds %.2f (off %v, on %v)",
			report.RatioP95, traceMaxRatio, offP95, onP95)
	}
	return nil
}
