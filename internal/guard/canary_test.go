package guard

import (
	"strings"
	"testing"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/reconcile"
	"lachesis/internal/telemetry"
)

// staticPolicy schedules fixed priorities.
type staticPolicy struct {
	name  string
	prios map[string]float64
}

var _ core.Policy = (*staticPolicy)(nil)

func (p *staticPolicy) Name() string      { return p.name }
func (p *staticPolicy) Metrics() []string { return nil }
func (p *staticPolicy) Schedule(view *core.View) (core.Schedule, error) {
	single := make(map[string]float64, len(view.Entities))
	for name := range view.Entities {
		single[name] = p.prios[name]
	}
	return core.Schedule{Scale: core.ScaleLinear, Single: single}, nil
}

// memPolicyStore is an in-memory PolicyStore.
type memPolicyStore struct {
	saved [][]byte
}

func (m *memPolicyStore) SaveLastGoodPolicy(b []byte) error {
	m.saved = append(m.saved, append([]byte(nil), b...))
	return nil
}
func (m *memPolicyStore) LoadLastGoodPolicy() ([]byte, bool, error) {
	if len(m.saved) == 0 {
		return nil, false, nil
	}
	return m.saved[len(m.saved)-1], true, nil
}

func testView() *core.View {
	return core.NewView(0, map[string]core.Entity{"a": {Name: "a", Thread: 1}}, nil)
}

func TestCanaryPromotesCleanCandidate(t *testing.T) {
	c := NewCanary(Config{Fraction: 0.5, Window: 3})
	stable := &staticPolicy{name: "stable", prios: map[string]float64{"a": 1}}
	candidate := &staticPolicy{name: "cand", prios: map[string]float64{"a": 2}}
	s1 := c.Slot(stable)
	s2 := c.Slot(stable)
	ps := &memPolicyStore{}
	c.SetPolicyStore(ps)
	reg := telemetry.NewRegistry()
	c.SetTelemetry(reg)

	if err := c.Propose(0, "cand", candidate, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	if !s1.Canarying() || s2.Canarying() {
		t.Fatalf("expected slot1 canarying, slot2 control: %v %v", s1.Canarying(), s2.Canarying())
	}
	if reg.Gauge(MetricCanaryState).Value() != 1 {
		t.Error("canary state gauge not raised")
	}
	// A second proposal during the rollout is refused.
	if err := c.Propose(0, "other", candidate, nil); err == nil {
		t.Error("overlapping proposal accepted")
	}

	for i := 1; i <= 3; i++ {
		c.Tick(time.Duration(i) * time.Second)
	}
	st := c.Status()
	if st.Active || st.LastDecision != DecisionPromoted {
		t.Fatalf("expected promotion, got %+v", st)
	}
	// Both slots now run the candidate as their stable policy.
	for _, s := range []*Slot{s1, s2} {
		if s.Canarying() {
			t.Error("slot still canarying after promote")
		}
		sched, _ := s.Schedule(testView())
		if sched.Single["a"] != 2 {
			t.Errorf("slot not running promoted policy: %v", sched.Single)
		}
	}
	// Promotion persisted the candidate config as last-good.
	got, ok, err := ps.LoadLastGoodPolicy()
	if err != nil || !ok || string(got) != `{"v":2}` {
		t.Errorf("last-good not persisted: %q %v %v", got, ok, err)
	}
	if reg.Counter(MetricCanaryPromotionsTotal).Value() != 1 {
		t.Error("promotion counter not incremented")
	}
}

func TestCanaryRollsBackOnGuardViolations(t *testing.T) {
	c := NewCanary(Config{Fraction: 1, Window: 10})
	stable := &staticPolicy{name: "stable", prios: map[string]float64{"a": 1}}
	candidate := &staticPolicy{name: "cand", prios: map[string]float64{"a": 2}}
	slot := c.Slot(stable)
	var violations int64
	c.SetViolationSource(func() int64 { return violations })
	trail := core.NewAuditTrail(16, nil)
	c.SetAudit(trail)
	ps := &memPolicyStore{}
	_ = ps.SaveLastGoodPolicy([]byte(`{"v":1}`))
	c.SetPolicyStore(ps)

	if err := c.Propose(0, "cand", candidate, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	c.Tick(1 * time.Second) // clean cycle
	if st := c.Status(); !st.Active {
		t.Fatal("rollout ended prematurely")
	}
	violations = 2 // the guard blocked the candidate's batches
	c.Tick(2 * time.Second)
	st := c.Status()
	if st.Active || st.LastDecision != DecisionRolledBack {
		t.Fatalf("expected rollback, got %+v", st)
	}
	if slot.Canarying() {
		t.Error("slot still canarying after rollback")
	}
	sched, _ := slot.Schedule(testView())
	if sched.Single["a"] != 1 {
		t.Errorf("slot not restored to stable policy: %v", sched.Single)
	}
	// Rollback must not overwrite the persisted last-good.
	got, _, _ := ps.LoadLastGoodPolicy()
	if string(got) != `{"v":1}` {
		t.Errorf("rollback rewrote last-good: %q", got)
	}
	evs := trail.Last(10)
	found := false
	for _, e := range evs {
		if e.Kind == core.AuditKindCanary && strings.Contains(e.Outcome, DecisionRolledBack) {
			found = true
		}
	}
	if !found {
		t.Errorf("no rollback audit event in %+v", evs)
	}
}

func TestCanarySLOVerdicts(t *testing.T) {
	// The canary group's latency degrades 3x while the control group
	// stays flat: rollback.
	samples := map[string]SLOSample{
		"canary-base":  {LatencyP95: 0.1, Throughput: 100, OK: true},
		"control-base": {LatencyP95: 0.1, Throughput: 100, OK: true},
		"canary-cur":   {LatencyP95: 0.3, Throughput: 95, OK: true},
		"control-cur":  {LatencyP95: 0.11, Throughput: 100, OK: true},
	}
	c := NewCanary(Config{Fraction: 0.5, Window: 2, MaxLatencyFactor: 1.5})
	s1pol := &staticPolicy{name: "s1", prios: map[string]float64{"a": 1}}
	s2pol := &staticPolicy{name: "s2", prios: map[string]float64{"a": 1}}
	cand := &staticPolicy{name: "cand", prios: map[string]float64{"a": 2}}
	slot1 := c.Slot(s1pol)
	c.Slot(s2pol)
	phase := "base"
	canaryName := ""
	c.SetSampler(func(group []string) SLOSample {
		if len(group) == 0 {
			return SLOSample{}
		}
		key := "control-" + phase
		for _, n := range group {
			if n == canaryName {
				key = "canary-" + phase
			}
		}
		return samples[key]
	})
	if err := c.Propose(0, "cand", cand, nil); err != nil {
		t.Fatal(err)
	}
	canaryName = "s2"
	if slot1.Canarying() {
		canaryName = "s1"
	}
	phase = "cur"
	c.Tick(1 * time.Second)
	c.Tick(2 * time.Second)
	st := c.Status()
	if st.LastDecision != DecisionRolledBack {
		t.Fatalf("expected SLO rollback, got %+v", st)
	}
	if !strings.Contains(st.LastReason, "latency") {
		t.Errorf("reason should name latency: %q", st.LastReason)
	}

	// Same shape but the canary stays within bounds: promote.
	samples["canary-cur"] = SLOSample{LatencyP95: 0.12, Throughput: 99, OK: true}
	phase = "base"
	if err := c.Propose(10*time.Second, "cand2", cand, nil); err != nil {
		t.Fatal(err)
	}
	canaryName = "s2"
	if slot1.Canarying() {
		canaryName = "s1"
	}
	phase = "cur"
	c.Tick(11 * time.Second)
	c.Tick(12 * time.Second)
	st = c.Status()
	if st.LastDecision != DecisionPromoted {
		t.Fatalf("expected promotion, got %+v", st)
	}
}

func TestCanaryThroughputRollback(t *testing.T) {
	c := NewCanary(Config{Fraction: 0.5, Window: 1, MinThroughputFactor: 0.8})
	stable := &staticPolicy{name: "stable", prios: map[string]float64{"a": 1}}
	cand := &staticPolicy{name: "cand", prios: map[string]float64{"a": 2}}
	c.Slot(stable)
	c.Slot(stable)
	cur := SLOSample{LatencyP95: 0.1, Throughput: 100, OK: true}
	c.SetSampler(func(group []string) SLOSample { return cur })
	if err := c.Propose(0, "cand", cand, nil); err != nil {
		t.Fatal(err)
	}
	cur = SLOSample{LatencyP95: 0.1, Throughput: 50, OK: true} // both groups halve...
	c.Tick(time.Second)
	// ...so relative factors match and the candidate is promoted (the
	// regression is environmental, not the candidate's).
	if st := c.Status(); st.LastDecision != DecisionPromoted {
		t.Fatalf("expected promotion on symmetric degradation, got %+v", st)
	}
}

// TestCanaryRollbackComposesWithWarmRestartSeed is the integration test
// for the crash-after-rollback scenario: a canary rollout recorded the
// candidate's values into desired state, the controller rolled back, and
// the daemon crashed before the stable policy re-applied. On restart the
// coalescer is seeded from the persisted desired state (the candidate's
// values), so the first cycle under the last-good policy must see a
// mismatch and re-apply the last-good values — not suppress them against
// the candidate's mirror.
func TestCanaryRollbackComposesWithWarmRestartSeed(t *testing.T) {
	fs := reconcile.NewMemFS()

	// --- first life -------------------------------------------------
	store := reconcile.NewStore(fs, nil)
	state, err := reconcile.NewDesiredState(store)
	if err != nil {
		t.Fatal(err)
	}
	kernel := newMemOS()
	chain := core.NewCoalescer(reconcile.RecordOS(kernel, state, nil, nil), nil)

	ents := map[string]core.Entity{
		"fast": {Name: "fast", Thread: 1},
		"slow": {Name: "slow", Thread: 2},
	}
	view := core.NewView(0, ents, nil)
	tr := core.NewNiceTranslator(chain)

	lastGood := &staticPolicy{name: "good", prios: map[string]float64{"fast": 10, "slow": 1}}
	candidate := &staticPolicy{name: "bad", prios: map[string]float64{"fast": 1, "slow": 10}}

	c := NewCanary(Config{Fraction: 1, Window: 10})
	slot := c.Slot(lastGood)
	ps := &memPolicyStore{}
	_ = ps.SaveLastGoodPolicy([]byte(`good`))
	c.SetPolicyStore(ps)

	apply := func(now time.Duration) {
		sched, err := slot.Schedule(view)
		if err != nil {
			t.Fatal(err)
		}
		chain.Begin()
		if err := tr.Apply(sched, ents); err != nil {
			t.Fatal(err)
		}
		if err := chain.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	apply(0) // last-good applied, recorded in desired state
	goodFast, _ := kernel.nice(1)
	goodSlow, _ := kernel.nice(2)

	if err := c.Propose(time.Second, "bad", candidate, []byte(`bad`)); err != nil {
		t.Fatal(err)
	}
	apply(time.Second) // candidate's inverted values hit kernel AND desired state
	candFast, _ := kernel.nice(1)
	if candFast == goodFast {
		t.Fatalf("test needs distinct schedules: both map to nice %d", goodFast)
	}

	// Guard violations abort the rollout...
	var v int64 = 1
	c.SetViolationSource(func() int64 { return v })
	c.Tick(2 * time.Second)
	if st := c.Status(); st.LastDecision != DecisionRolledBack {
		t.Fatalf("expected rollback, got %+v", st)
	}
	// ...and the daemon crashes before the stable policy re-applies: no
	// further apply, no checkpoint. Desired state still holds the
	// candidate's values.

	// --- second life ------------------------------------------------
	store2 := reconcile.NewStore(fs, nil)
	state2, err := reconcile.NewDesiredState(store2)
	if err != nil {
		t.Fatal(err)
	}
	if state2.Len() == 0 {
		t.Fatal("desired state did not survive the crash")
	}
	// The kernel still holds the candidate's values (or a reconciler
	// just converged it to them — same thing for this scenario).
	seed := state2.CoalescerSeed()
	kernel2 := newMemOS()
	kernel2.nices[1], _ = kernel.nice(1)
	kernel2.nices[2], _ = kernel.nice(2)
	chain2 := core.NewCoalescer(reconcile.RecordOS(kernel2, state2, nil, nil), seed)
	tr2 := core.NewNiceTranslator(chain2)

	// The restarted daemon loads the last-good policy (the candidate was
	// never promoted) and runs its first cycle.
	cfg, ok, err := ps.LoadLastGoodPolicy()
	if err != nil || !ok || string(cfg) != "good" {
		t.Fatalf("last-good policy lost: %q %v %v", cfg, ok, err)
	}
	sched, _ := lastGood.Schedule(view)
	chain2.Begin()
	if err := tr2.Apply(sched, ents); err != nil {
		t.Fatal(err)
	}
	if err := chain2.Flush(); err != nil {
		t.Fatal(err)
	}

	// The first cycle must have re-applied the last-good values: the
	// seed (candidate mirror) differs, so nothing may be suppressed.
	if n, _ := kernel2.nice(1); n != goodFast {
		t.Errorf("fast thread nice = %d after restart, want last-good %d", n, goodFast)
	}
	if n, _ := kernel2.nice(2); n != goodSlow {
		t.Errorf("slow thread nice = %d after restart, want last-good %d", n, goodSlow)
	}
}
