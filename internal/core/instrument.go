package core

import (
	"fmt"
	"time"

	"lachesis/internal/telemetry"
)

// Telemetry metric names exported by the middleware. Counters that back
// the legacy accessors (PolicyRuns, ApplyErrors, PanicsRecovered) ARE the
// accessors' storage, so the registry and the Go API can never drift
// apart.
const (
	MetricStepsTotal         = "lachesis_steps_total"
	MetricStepSeconds        = "lachesis_step_seconds"
	MetricPolicyRunsTotal    = "lachesis_policy_runs_total"
	MetricApplyErrorsTotal   = "lachesis_apply_errors_total"
	MetricPanicsTotal        = "lachesis_panics_recovered_total"
	MetricScheduleSeconds    = "lachesis_schedule_seconds"
	MetricApplySeconds       = "lachesis_apply_seconds"
	MetricQuarantinedTotal   = "lachesis_quarantined_total"
	MetricBreakerTransitions = "lachesis_breaker_transitions_total"
	MetricFetchSeconds       = "lachesis_fetch_seconds"
	MetricFetchFailuresTotal = "lachesis_fetch_failures_total"
	MetricFetchStaleTotal    = "lachesis_fetch_stale_total"
	MetricPolicyClampedTotal = "lachesis_policy_clamped_total"
)

// mwInstruments caches the middleware-global instrument pointers so the
// step hot path never takes the registry lock.
type mwInstruments struct {
	steps       *telemetry.Counter
	stepSeconds *telemetry.Histogram
	policyRuns  *telemetry.Counter
	applyErrors *telemetry.Counter
	panics      *telemetry.Counter
}

// resolveInstruments (re)binds every cached instrument pointer against the
// current registry: the global ones here, the per-binding and per-driver
// ones on their owning structs.
func (m *Middleware) resolveInstruments() {
	m.ins = mwInstruments{
		steps:       m.tel.Counter(MetricStepsTotal),
		stepSeconds: m.tel.Histogram(MetricStepSeconds),
		policyRuns:  m.tel.Counter(MetricPolicyRunsTotal),
		applyErrors: m.tel.Counter(MetricApplyErrorsTotal),
		panics:      m.tel.Counter(MetricPanicsTotal),
	}
	for _, bp := range m.bindings {
		bp.resolve(m.tel)
	}
	for name, ds := range m.drivers {
		ds.resolve(m.tel, name)
	}
}

// Telemetry returns the middleware's metric registry (every middleware has
// one; NewMiddleware creates a private registry by default).
func (m *Middleware) Telemetry() *telemetry.Registry { return m.tel }

// SetTelemetry replaces the metric registry, e.g. to share one registry
// across middlewares or export it over HTTP. The lifetime counters
// (steps, policy runs, apply errors, panics) migrate their current values
// so the legacy accessors stay continuous; histograms and per-binding
// counters start empty in the new registry, so call SetTelemetry before
// the first Step for complete series. nil installs a fresh registry.
func (m *Middleware) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	old := m.ins
	m.tel = reg
	m.resolveInstruments()
	m.ins.steps.Add(old.steps.Value())
	m.ins.policyRuns.Add(old.policyRuns.Value())
	m.ins.applyErrors.Add(old.applyErrors.Value())
	m.ins.panics.Add(old.panics.Value())
}

// SetAudit installs a decision-audit trail: the middleware records apply
// outcomes, breaker transitions, quarantine skips, and driver failures
// into it, and stamps the binding context onto control-op events recorded
// by an AuditOS wrapper sharing the same trail. nil disables auditing.
func (m *Middleware) SetAudit(trail *AuditTrail) { m.audit = trail }

// Audit returns the installed audit trail (nil when auditing is off).
func (m *Middleware) Audit() *AuditTrail { return m.audit }

// resolve caches a binding's instrument pointers.
func (bp *boundPolicy) resolve(tel *telemetry.Registry) {
	l := telemetry.L("binding", bp.label)
	bp.hSchedule = tel.Histogram(MetricScheduleSeconds, l)
	bp.hApply = tel.Histogram(MetricApplySeconds, l)
	bp.ctrQuarantined = tel.Counter(MetricQuarantinedTotal, l)
	bp.tel = tel
}

// breakerCounter returns the transition counter for this binding and
// target state. Transitions are rare, so the registry lookup is fine.
func (bp *boundPolicy) breakerCounter(to string) *telemetry.Counter {
	return bp.tel.Counter(MetricBreakerTransitions,
		telemetry.L("binding", bp.label), telemetry.L("to", to))
}

// resolve caches a driver state's instrument pointers.
func (ds *driverState) resolve(tel *telemetry.Registry, name string) {
	l := telemetry.L("driver", name)
	ds.hFetch = tel.Histogram(MetricFetchSeconds, l)
	ds.ctrFailures = tel.Counter(MetricFetchFailuresTotal, l)
	ds.ctrStale = tel.Counter(MetricFetchStaleTotal, l)
}

// ClampRecorder builds the standard clamp observer for a binding: each
// clamped policy output increments lachesis_policy_clamped_total{binding}
// and records a clamp audit event naming the entity, the raw value, and
// the nice actually used. reg and trail may each be nil to skip that
// sink. Install it with NiceTranslator.ObserveClamps.
func ClampRecorder(reg *telemetry.Registry, trail *AuditTrail, binding string) ClampObserver {
	var ctr *telemetry.Counter
	if reg != nil {
		ctr = reg.Counter(MetricPolicyClampedTotal, telemetry.L("binding", binding))
	}
	return func(entity string, raw float64, clamped int) {
		if ctr != nil {
			ctr.Inc()
		}
		if trail != nil {
			n := clamped
			trail.Record(AuditEvent{
				Kind: AuditKindClamp, Entity: entity, NewNice: &n,
				Outcome: fmt.Sprintf("policy output %g clamped to nice %d", raw, clamped),
			})
		}
	}
}

// auditRecord records an event when auditing is enabled.
func (m *Middleware) auditRecord(e AuditEvent) {
	if m.audit != nil {
		m.audit.Record(e)
	}
}

// auditNoop is the shared no-op apply bracket: returning a package-level
// func keeps the audit-off hot path from allocating a closure per apply.
var auditNoop = func() {}

// auditApplyCtx brackets one translator apply with the audit binding
// context; the returned func must be called when the apply finishes.
func (m *Middleware) auditApplyCtx(now time.Duration, bp *boundPolicy, entities map[string]Entity) func() {
	if m.audit == nil {
		return auditNoop
	}
	tok := m.audit.beginApply(now, bp.policyName, bp.translatorName, entities)
	return func() { m.audit.endApply(tok) }
}
