// Package oslinux implements core.OSInterface on a real Linux host: nice
// via setpriority(2) and CPU shares via the cgroup filesystem (v1
// cpu.shares or v2 cpu.weight). This is the backend a production
// deployment of the middleware uses (cmd/lachesisd); the simulator uses
// internal/simctl instead. All OS access goes through the System
// interface so the package is fully unit-testable and supports dry runs.
package oslinux

import (
	"fmt"
	"path/filepath"
	"strconv"
	"sync"

	"lachesis/internal/core"
)

// CgroupVersion selects the cgroup filesystem dialect.
type CgroupVersion int

const (
	// V1 uses cpu.shares and the tasks file (what the paper's evaluation
	// used on Ubuntu 18.04).
	V1 CgroupVersion = iota + 1
	// V2 uses cpu.weight and cgroup.threads (unified hierarchy).
	V2
)

// System abstracts the host interfaces the controller touches.
type System interface {
	// Setpriority sets a thread's nice value (setpriority(2) with
	// PRIO_PROCESS semantics on the tid).
	Setpriority(tid, nice int) error
	// MkdirAll creates a cgroup directory.
	MkdirAll(path string) error
	// WriteFile writes a cgroup control file.
	WriteFile(path string, data []byte) error
	// Remove removes an (empty) cgroup directory.
	Remove(path string) error
}

// Config configures the Linux control backend.
type Config struct {
	// Root is the directory Lachesis-managed cgroups live under, e.g.
	// "/sys/fs/cgroup/cpu/lachesis" (v1) or "/sys/fs/cgroup/lachesis"
	// (v2).
	Root string
	// Version selects v1/v2 (default V1).
	Version CgroupVersion
	// System is the host binding (default: the real host; tests inject a
	// fake; DryRunSystem logs without touching anything).
	System System
}

// Control drives the real OS mechanisms. Its methods are safe for
// concurrent use by the middleware's parallel apply workers; only the
// group-exists cache is locked, so control writes themselves are not
// serialized. SetTelemetry must be called before concurrent use begins.
type Control struct {
	cfg Config

	// mu guards groups, the ensure-cgroup dedup cache.
	mu     sync.Mutex
	groups map[string]bool

	ins *osInstruments // nil until SetTelemetry
}

var _ core.OSInterface = (*Control)(nil)

// New creates a Control.
func New(cfg Config) (*Control, error) {
	if cfg.Root == "" {
		return nil, fmt.Errorf("oslinux: cgroup root required")
	}
	if cfg.Version == 0 {
		cfg.Version = V1
	}
	if cfg.System == nil {
		cfg.System = hostSystem{}
	}
	return &Control{cfg: cfg, groups: make(map[string]bool)}, nil
}

// SetNice implements core.OSInterface. ESRCH (the thread exited) is
// classified as a benign core.ErrEntityVanished; transient failures are
// retried (see resilience.go).
func (c *Control) SetNice(tid, nice int) error {
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	err := c.retry(func() error { return c.cfg.System.Setpriority(tid, nice) })
	c.record("nice", err)
	if err != nil {
		return fmt.Errorf("setpriority tid %d: %w", tid, err)
	}
	return nil
}

// EnsureCgroup implements core.OSInterface. Concurrent ensures of the
// same group may both reach MkdirAll, which is idempotent.
func (c *Control) EnsureCgroup(name string) error {
	c.mu.Lock()
	known := c.groups[name]
	c.mu.Unlock()
	if known {
		return nil
	}
	dir := filepath.Join(c.cfg.Root, sanitize(name))
	err := c.retry(func() error { return c.cfg.System.MkdirAll(dir) })
	c.record("ensure_cgroup", err)
	if err != nil {
		return fmt.Errorf("mkdir cgroup %q: %w", name, err)
	}
	c.mu.Lock()
	c.groups[name] = true
	c.mu.Unlock()
	return nil
}

// SetShares implements core.OSInterface. With cgroup v2 the v1-style
// shares value is converted to cpu.weight using the kernel's mapping
// weight = 1 + ((shares - 2) * 9999) / 262142.
func (c *Control) SetShares(name string, shares int) error {
	if shares < 2 {
		shares = 2
	}
	if shares > 262144 {
		shares = 262144
	}
	dir := filepath.Join(c.cfg.Root, sanitize(name))
	var file, val string
	switch c.cfg.Version {
	case V2:
		weight := 1 + ((shares-2)*9999)/262142
		file, val = "cpu.weight", strconv.Itoa(weight)
	default:
		file, val = "cpu.shares", strconv.Itoa(shares)
	}
	path := filepath.Join(dir, file)
	err := c.retry(func() error { return c.cfg.System.WriteFile(path, []byte(val)) })
	c.record("shares", err)
	if err != nil {
		return fmt.Errorf("write %s for %q: %w", file, name, err)
	}
	return nil
}

// MoveThread implements core.OSInterface.
func (c *Control) MoveThread(tid int, name string) error {
	dir := filepath.Join(c.cfg.Root, sanitize(name))
	file := "tasks"
	if c.cfg.Version == V2 {
		file = "cgroup.threads"
	}
	data := []byte(strconv.Itoa(tid))
	path := filepath.Join(dir, file)
	err := c.retry(func() error { return c.cfg.System.WriteFile(path, data) })
	c.record("move", err)
	if err != nil {
		return fmt.Errorf("move tid %d to %q: %w", tid, name, err)
	}
	return nil
}

// sanitize keeps cgroup directory names safe.
func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}
