package workloads

import (
	"time"

	"lachesis/internal/spe"
)

// LinearRoad builds the Linear Road tolling query (§6.1, Fig. 2): a
// 9-operator DAG with two branches — branch 1 computes variable tolls from
// congestion levels (count of vehicles per segment, average speed), branch
// 2 computes fixed tolls — merged at a notifier. parallelism sets the
// fission degree of every operator (1 for single-node runs; 2 and 4 for
// the scale-out study of §6.5).
// Linear Road tolling parameters. Per-segment counts are halved every
// lrCountDecayEvery processed reports (a rate-independent stand-in for the
// benchmark's minute-window counts), so steady-state counts oscillate in
// [8, 16] and the congestion threshold passes ~75% of reports (the
// operator's declared selectivity).
const (
	lrSegments            = 128
	lrCountDecayEvery     = 1024
	lrCongestionThreshold = 9
)

// LinearRoad builds the Linear Road tolling query described at the top of
// this file at the given per-operator fission degree.
func LinearRoad(parallelism int) *spe.LogicalQuery {
	if parallelism < 1 {
		parallelism = 1
	}
	q := spe.NewQuery("lr")
	add := func(op *spe.LogicalOp) {
		op.Parallelism = parallelism
		q.MustAddOp(op)
	}
	add(&spe.LogicalOp{Name: "source", Kind: spe.KindIngress, Cost: 20 * time.Microsecond, Selectivity: 1})
	add(&spe.LogicalOp{
		Name: "parse", Cost: 80 * time.Microsecond, Selectivity: 0.99,
		Process: func(in spe.Tuple, emit spe.EmitFunc) {
			if in.Value >= 0 { // position reports only
				emit(in)
			}
		},
	})
	add(&spe.LogicalOp{Name: "split", Cost: 40 * time.Microsecond, Selectivity: 1})
	// Branch 1: variable tolls from congestion.
	add(&spe.LogicalOp{Name: "accident", Cost: 60 * time.Microsecond, Selectivity: 1})
	add(&spe.LogicalOp{
		// Count vehicles per highway segment over a sliding minute-style
		// window (approximated by a decaying per-segment count): the
		// congestion input of the LR toll formula.
		Name: "count-vehicles", Cost: 150 * time.Microsecond, Selectivity: 1, KeyBy: true,
		NewProcess: func(int) spe.ProcessFunc {
			counts := make(map[uint64]int)
			var processed int
			return func(in spe.Tuple, emit spe.EmitFunc) {
				seg := in.Key % lrSegments
				counts[seg]++
				processed++
				if processed%lrCountDecayEvery == 0 {
					for s := range counts {
						counts[s] /= 2
					}
				}
				out := in
				out.Value = float64(counts[seg])
				emit(out)
			}
		},
	})
	add(&spe.LogicalOp{
		// LR toll formula: toll = base * (count - threshold)^2 when the
		// segment is congested; uncongested reports produce no toll
		// notification (the branch's ~0.75 measured selectivity).
		Name: "var-toll", Cost: 100 * time.Microsecond, Selectivity: 0.75,
		Process: func(in spe.Tuple, emit spe.EmitFunc) {
			count := in.Value
			if count <= lrCongestionThreshold {
				return
			}
			over := count - lrCongestionThreshold
			out := in
			out.Value = 2 * over * over // base toll 2
			emit(out)
		},
	})
	// Branch 2: fixed tolls.
	add(&spe.LogicalOp{Name: "fixed-toll", Cost: 90 * time.Microsecond, Selectivity: 0.3})
	add(&spe.LogicalOp{Name: "notify", Cost: 50 * time.Microsecond, Selectivity: 1})
	add(&spe.LogicalOp{Name: "sink", Kind: spe.KindEgress, Cost: 40 * time.Microsecond})

	mustPipeline(q, "source", "parse", "split")
	mustPipeline(q, "split", "accident", "count-vehicles", "var-toll", "notify")
	mustPipeline(q, "split", "fixed-toll", "notify")
	mustPipeline(q, "notify", "sink")
	return q
}

// LRBranch1Ops lists the logical operators of Linear Road's variable-toll
// branch (used by the branch-priority example reproducing Fig. 2's
// scheduling preference).
func LRBranch1Ops() []string {
	return []string{"accident", "count-vehicles", "var-toll"}
}

// LRBranch2Ops lists the logical operators of the fixed-toll branch.
func LRBranch2Ops() []string { return []string{"fixed-toll"} }
