package core

import "sync"

// ApplyGate serializes every control-path write flowing through an
// OSInterface. Two writers exist once reconciliation is enabled: the
// middleware's apply path (including breaker half-open probe re-applies,
// which fire the moment a cooldown expires) and the reconciler's drift
// repairs. Without a gate those can interleave on the same entity — and
// the caching wrappers underneath (AuditOS, the control backends) keep
// plain maps that are not safe for concurrent use. The gate is one
// mutex, not per-entity locks, precisely because the wrapped chain's
// caches are shared across entities; control ops are rare enough (a
// handful per period) that whole-gate granularity costs nothing.
//
// Wrap the gate OUTERMOST so every caller — translator, reconciler,
// shutdown reset — enters through it:
//
//	gated := core.NewApplyGate(core.AuditOS(ctl, trail))
type ApplyGate struct {
	mu    sync.Mutex
	inner OSInterface
}

var (
	_ OSInterface       = (*ApplyGate)(nil)
	_ CgroupRemover     = (*ApplyGate)(nil)
	_ PlacementRestorer = (*ApplyGate)(nil)
	_ CacheInvalidator  = (*ApplyGate)(nil)
)

// NewApplyGate wraps inner so all control writes are serialized.
func NewApplyGate(inner OSInterface) *ApplyGate {
	return &ApplyGate{inner: inner}
}

// SetNice implements OSInterface.
func (g *ApplyGate) SetNice(tid, nice int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.SetNice(tid, nice)
}

// EnsureCgroup implements OSInterface.
func (g *ApplyGate) EnsureCgroup(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.EnsureCgroup(name)
}

// SetShares implements OSInterface.
func (g *ApplyGate) SetShares(name string, shares int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.SetShares(name, shares)
}

// MoveThread implements OSInterface.
func (g *ApplyGate) MoveThread(tid int, name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.MoveThread(tid, name)
}

// RemoveCgroup implements CgroupRemover; a no-op when the wrapped
// interface lacks the capability (matching AuditOS).
func (g *ApplyGate) RemoveCgroup(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok := g.inner.(CgroupRemover); ok {
		return r.RemoveCgroup(name)
	}
	return nil
}

// RestoreThread implements PlacementRestorer; a no-op when the wrapped
// interface lacks the capability.
func (g *ApplyGate) RestoreThread(tid int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok := g.inner.(PlacementRestorer); ok {
		return r.RestoreThread(tid)
	}
	return nil
}

// InvalidateThread implements CacheInvalidator: cache drops take the same
// gate as writes, so an invalidate cannot tear a concurrent apply's
// read-check-update of its cache.
func (g *ApplyGate) InvalidateThread(tid int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	InvalidateThreadState(g.inner, tid)
}

// InvalidateCgroup implements CacheInvalidator.
func (g *ApplyGate) InvalidateCgroup(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	InvalidateCgroupState(g.inner, name)
}
