package spe

import (
	"time"

	"lachesis/internal/simos"
)

// runStatus reports why runFor stopped.
type runStatus int

const (
	// statusWorked: the CPU budget was exhausted with work remaining.
	statusWorked runStatus = iota + 1
	// statusIdle: no input available.
	statusIdle
	// statusBackpressured: a downstream queue is full.
	statusBackpressured
	// statusBlocked: a simulated blocking operation (I/O) started.
	statusBlocked
)

type runResult struct {
	used   time.Duration
	status runStatus
	// target is the downstream operator whose full queue stopped us
	// (statusBackpressured).
	target *PhysicalOp
	// until is when the blocking operation completes (statusBlocked).
	until time.Duration
	// nextArrival is when the next source tuple arrives (statusIdle on an
	// ingress operator).
	nextArrival time.Duration
}

// opContext abstracts the execution environment (dedicated thread vs
// worker pool) from the operator logic.
type opContext struct {
	now       time.Duration
	wakeData  func(*PhysicalOp) // data became available for the operator
	wakeSpace func(*PhysicalOp) // space became available in the operator's queue
}

// runFor advances the operator by up to budget CPU time. It is the single
// execution core shared by OS-thread mode and worker-pool (UL-SS) mode.
func (p *PhysicalOp) runFor(ctx *opContext, budget time.Duration) runResult {
	var used time.Duration
	for {
		// Deliver any output held back by backpressure.
		for len(p.pendingOut) > 0 {
			pe := p.pendingOut[0]
			if pe.target.in.full() {
				return runResult{used: used, status: statusBackpressured, target: pe.target}
			}
			wasEmpty := pe.target.in.len() == 0
			pe.target.in.push(pe.tuple)
			p.stats.outCount++
			copy(p.pendingOut, p.pendingOut[1:])
			p.pendingOut = p.pendingOut[:len(p.pendingOut)-1]
			if wasEmpty {
				ctx.wakeData(pe.target)
			}
		}

		// Acquire the next input tuple.
		if !p.working {
			if p.kind == KindIngress {
				if p.consumed >= p.source.Arrived(ctx.now) {
					return runResult{
						used:        used,
						status:      statusIdle,
						nextArrival: p.source.ArrivalTime(p.consumed),
					}
				}
				t := p.source.Make(p.consumed)
				t.EventTime = p.source.ArrivalTime(p.consumed)
				t.IngressTime = ctx.now + used
				p.consumed++
				p.stats.ingested++
				p.current = t
			} else {
				wasFull := p.in.full()
				t, ok := p.in.pop()
				if !ok {
					return runResult{used: used, status: statusIdle}
				}
				if wasFull {
					ctx.wakeSpace(p)
				}
				p.current = t
			}
			p.working = true
			p.remaining = p.sampleCost()
			p.stats.inCount++
		}

		// Spend CPU on the current tuple.
		if used >= budget {
			return runResult{used: used, status: statusWorked}
		}
		step := budget - used
		if p.remaining < step {
			step = p.remaining
		}
		used += step
		p.remaining -= step
		p.stats.busy += step
		if p.remaining > 0 {
			return runResult{used: used, status: statusWorked}
		}

		// Tuple complete: run the chain logic and queue emissions.
		p.working = false
		blockFor := p.finishTuple(ctx.now + used)
		if blockFor > 0 {
			p.stats.blockEvents++
			p.stats.blockTime += blockFor
			return runResult{used: used, status: statusBlocked, until: ctx.now + used + blockFor}
		}
	}
}

// sampleCost returns the CPU cost of the current tuple, applying the chain
// head's jitter if configured.
func (p *PhysicalOp) sampleCost() time.Duration {
	c := chainCost(p.chain)
	if j := p.chain[0].CostJitter; j > 0 {
		c = time.Duration(float64(c) * (1 + j*(2*p.rng.Float64()-1)))
	}
	if c < 0 {
		c = 0
	}
	return c
}

// finishTuple runs the (possibly fused) chain over the completed input
// tuple, records egress latencies, stages emissions, and samples blocking
// operations. completeAt is the virtual time the tuple finished processing.
func (p *PhysicalOp) finishTuple(completeAt time.Duration) (blockFor time.Duration) {
	// Grow the per-level scratch buffers on first use.
	for len(p.emitScratch) < len(p.chain)+1 {
		p.emitScratch = append(p.emitScratch, nil)
	}
	cur := append(p.emitScratch[0][:0], p.current)
	p.emitScratch[0] = cur
	p.current = Tuple{}

	for i, l := range p.chain {
		if l.Kind == KindEgress {
			for _, t := range cur {
				p.stats.egressCount++
				p.stats.proc.record(completeAt - t.IngressTime)
				p.stats.e2e.record(completeAt - t.EventTime)
			}
			cur = cur[:0]
			break
		}
		next := p.emitScratch[i+1][:0]
		if fn := p.process[i]; fn != nil {
			for _, t := range cur {
				in := t
				fn(in, func(o Tuple) {
					if o.EventTime == 0 {
						o.EventTime = in.EventTime
					}
					if o.IngressTime == 0 {
						o.IngressTime = in.IngressTime
					}
					next = append(next, o)
				})
			}
		} else {
			for _, t := range cur {
				p.credit[i] += l.Selectivity
				for p.credit[i] >= 1 {
					p.credit[i]--
					next = append(next, t)
				}
			}
		}
		p.emitScratch[i+1] = next
		cur = next
		if len(cur) == 0 {
			break
		}
	}

	// Stage the final outputs for delivery (one per downstream route).
	for _, t := range cur {
		for _, r := range p.outs {
			p.pendingOut = append(p.pendingOut, pendingEmit{target: r.pick(t), tuple: t})
		}
	}

	// Sample blocking operations (§6.4: simulated I/O after a tuple).
	for _, l := range p.chain {
		if l.BlockProb > 0 && l.BlockMax > 0 && p.rng.Float64() < l.BlockProb {
			blockFor += time.Duration(p.rng.Float64() * float64(l.BlockMax))
		}
	}
	return blockFor
}

// osRunner wraps the operator as a dedicated kernel thread: the default
// thread-per-operator execution of Storm, Flink, and Liebre.
func (p *PhysicalOp) osRunner() simos.Runner {
	return simos.RunnerFunc(func(ctx *simos.RunContext, granted time.Duration) simos.Decision {
		if p.stopped {
			return simos.Decision{Action: simos.ActionExit}
		}
		oc := opContext{
			now: ctx.Now(),
			wakeData: func(t *PhysicalOp) {
				if t.pooled {
					// Pool-managed consumers are dispatched by workers.
					ctx.Wake(t.engine.pool.waitQ)
					return
				}
				ctx.Wake(t.waitQ)
			},
			wakeSpace: func(t *PhysicalOp) { ctx.Wake(t.spaceQ) },
		}
		res := p.runFor(&oc, granted)
		switch res.status {
		case statusIdle:
			if p.kind == KindIngress {
				if res.nextArrival > ctx.Now()+res.used {
					return simos.Decision{Used: res.used, Action: simos.ActionSleep, WakeAt: res.nextArrival}
				}
				if res.used == 0 {
					// The next arrival is due within this instant; burn a
					// minimal poll cost rather than spin for free.
					res.used = time.Microsecond
				}
				return simos.Decision{Used: res.used, Action: simos.ActionYield}
			}
			return simos.Decision{
				Used:       res.used,
				Action:     simos.ActionWait,
				WaitOn:     p.waitQ,
				WaitUnless: func(now time.Duration) bool { return p.Ready(now) },
			}
		case statusBackpressured:
			tgt := res.target
			return simos.Decision{
				Used:       res.used,
				Action:     simos.ActionWait,
				WaitOn:     tgt.spaceQ,
				WaitUnless: func(time.Duration) bool { return !tgt.in.full() },
			}
		case statusBlocked:
			return simos.Decision{Used: res.used, Action: simos.ActionSleep, WakeAt: res.until}
		default: // statusWorked
			return simos.Decision{Used: res.used, Action: simos.ActionYield}
		}
	})
}
