package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lachesis/internal/trace"
)

func TestCaptureToFileAndReload(t *testing.T) {
	out := filepath.Join(t.TempDir(), "lr.csv")
	var errBuf bytes.Buffer
	err := run([]string{
		"-workload", "lr", "-rate", "2000", "-tuples", "500", "-out", out,
	}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "captured 500 lr tuples") ||
		!strings.Contains(errBuf.String(), "tuples/s)") {
		t.Errorf("stderr = %q", errBuf.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Errorf("reloaded %d tuples", tr.Len())
	}
}

func TestReplaySummary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "syn.csv")
	var errBuf bytes.Buffer
	if err := run([]string{
		"-workload", "syn", "-rate", "1000", "-tuples", "200", "-out", out,
	}, &errBuf); err != nil {
		t.Fatal(err)
	}
	errBuf.Reset()
	if err := run([]string{"-replay", out}, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := errBuf.String()
	if !strings.Contains(s, "replayed 200") || !strings.Contains(s, "tuples/s)") {
		t.Errorf("replay summary = %q", s)
	}
	// The captured rate should be near the requested 1000 t/s.
	if !strings.Contains(s, "(10") && !strings.Contains(s, "(99") && !strings.Contains(s, "(98") {
		t.Errorf("rate looks off in %q", s)
	}

	if err := run([]string{"-replay", "/no/such/trace.csv"}, &errBuf); err == nil {
		t.Error("missing replay file should fail")
	}
}

func TestWorkloadValidation(t *testing.T) {
	var errBuf bytes.Buffer
	if err := run([]string{"-workload", "nope"}, &errBuf); err == nil {
		t.Error("unknown workload should fail")
	}
	if err := run([]string{"-tuples", "0"}, &errBuf); err == nil {
		t.Error("zero tuples should fail")
	}
}
