package telemetry

import (
	"bytes"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lachesis_test_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("lachesis_test_total"); again != c {
		t.Fatal("get-or-create returned a different counter instance")
	}
	g := r.Gauge("lachesis_gauge", L("x", "1"))
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	// Distinct label sets are distinct instruments.
	if r.Counter("labeled", L("a", "1")) == r.Counter("labeled", L("a", "2")) {
		t.Fatal("different label values share an instrument")
	}
	// Label order must not matter.
	if r.Counter("multi", L("a", "1"), L("b", "2")) != r.Counter("multi", L("b", "2"), L("a", "1")) {
		t.Fatal("label order changed instrument identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dual")
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 1000 observations spread over [1ms, 2ms): p50/p95/p99 must all land
	// inside that bucket's bounds.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond + time.Duration(i)*time.Microsecond)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		// The containing log2 buckets span [0.5ms, ~2.1ms).
		if v < 512*time.Microsecond || v > 2200*time.Microsecond {
			t.Errorf("q%.2f = %v, want within the log2 bucket bounds around 1-2ms", q, v)
		}
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	if m := h.Mean(); m < time.Millisecond || m > 2*time.Millisecond {
		t.Fatalf("mean = %v, want ~1.5ms", m)
	}
	// Quantile ordering must hold.
	if h.Quantile(0.5) > h.Quantile(0.99) {
		t.Fatal("p50 > p99")
	}
	s := h.Summary()
	if s.Count != 1000 || s.P50 == 0 || s.P99 < s.P50 {
		t.Fatalf("bad summary %+v", s)
	}
}

func TestHistogramSpreadQuantiles(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations and 10 slow ones: p50 must be near the fast
	// mode, p99 near the slow mode.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	if p50 := h.Quantile(0.5); p50 > time.Millisecond {
		t.Errorf("p50 = %v, want around 100us", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 10*time.Millisecond {
		t.Errorf("p99 = %v, want in the slow mode", p99)
	}
}

func TestNegativeObservationsCountAsZero(t *testing.T) {
	h := &Histogram{}
	h.Observe(-time.Second)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("count=%d sum=%v, want 1 and 0", h.Count(), h.Sum())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("lachesis_policy_runs_total", L("binding", "qs/nice")).Add(7)
	r.Gauge("lachesis_entities").Set(42)
	h := r.Histogram("lachesis_step_seconds")
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lachesis_policy_runs_total counter",
		`lachesis_policy_runs_total{binding="qs/nice"} 7`,
		"# TYPE lachesis_entities gauge",
		"lachesis_entities 42",
		"# TYPE lachesis_step_seconds histogram",
		`lachesis_step_seconds_bucket{le="+Inf"} 2`,
		"lachesis_step_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in export:\n%s", want, out)
		}
	}
	// Every line must match the text exposition grammar (comment or
	// sample), and histogram buckets must be cumulative.
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9+.eE-]+(Inf)?$`)
	prevBucket := int64(-1)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
		if strings.HasPrefix(line, "lachesis_step_seconds_bucket") {
			var n int64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
				t.Fatalf("parse bucket line %q: %v", line, err)
			}
			if n < prevBucket {
				t.Errorf("bucket counts not cumulative at %q", line)
			}
			prevBucket = n
		}
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc", L("v", "a\"b\\c\nd")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `esc{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", buf.String())
	}
}

// TestRegistryConcurrency hammers the registry from many goroutines (run
// under -race in CI): concurrent get-or-create, hot-path updates, and
// exports must be safe.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("conc_total", L("worker", fmt.Sprint(g%4))).Inc()
				r.Histogram("conc_seconds").Observe(time.Duration(i) * time.Microsecond)
				r.Gauge("conc_gauge").Set(float64(i))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	var total int64
	for g := 0; g < 4; g++ {
		total += r.Counter("conc_total", L("worker", fmt.Sprint(g))).Value()
	}
	if total != 8*500 {
		t.Fatalf("lost counter updates: %d, want %d", total, 8*500)
	}
	if r.Histogram("conc_seconds").Count() != 8*500 {
		t.Fatalf("lost histogram updates: %d", r.Histogram("conc_seconds").Count())
	}
}
