package main

import (
	"os"
	"path/filepath"
	"testing"
)

// write a single-package fixture dir and lint it.
func lintSource(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Test files must be invisible to the linter.
	if err := os.WriteFile(filepath.Join(dir, "x_test.go"),
		[]byte("package x\n\nfunc TestHelperExported() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := LintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func symbols(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Kind + " " + f.Symbol
	}
	return out
}

func TestLintFlagsUndocumentedExported(t *testing.T) {
	findings := lintSource(t, `package x

func Documented() {} // no doc comment above — line comments do not count

// Ok is documented.
func Ok() {}

type Widget struct{ Field int }

// Gadget is documented.
type Gadget struct{}

func (g Gadget) Method() {}

// Name is documented.
func (g *Gadget) Name() string { return "" }

func (w Widget) private() {} // unexported method: fine

type hidden struct{}

func (h hidden) Exported() {} // method on unexported type: fine

var Loose = 1

// Grouped block doc covers every member.
const (
	A = 1
	B = 2
)

const C = 3

var (
	// D has a per-spec doc.
	D = 4
	E = 5
)
`)
	want := map[string]bool{
		"func Documented":      true,
		"type Widget":          true,
		"method Gadget.Method": true,
		"var Loose":            true,
		"const C":              true,
		"var E":                true,
	}
	got := symbols(findings)
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want the %d symbols %v", got, len(want), want)
	}
	for _, s := range got {
		if !want[s] {
			t.Errorf("unexpected finding %q", s)
		}
	}
}

func TestLintCleanPackage(t *testing.T) {
	findings := lintSource(t, `package x

// Fine is documented.
func Fine() {}

// T is documented.
type T int

// Value reports t.
func (t T) Value() int { return int(t) }
`)
	if len(findings) != 0 {
		t.Fatalf("clean package flagged: %v", symbols(findings))
	}
}

// The repo's own public surface must stay fully documented — this is the
// same check CI runs via cmd/lachesis-doclint, kept as a test so plain
// `go test ./...` catches regressions without the CI harness.
func TestRepoSurfaceDocumented(t *testing.T) {
	for _, dir := range []string{
		"../../internal/core",
		"../../internal/reconcile",
		"../../internal/telemetry",
	} {
		findings, err := LintDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("%s:%d: exported %s %s is missing a godoc comment", f.File, f.Line, f.Kind, f.Symbol)
		}
	}
}
