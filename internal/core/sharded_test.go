package core

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// clockPolicy records every View.Now it is scheduled with — the probe for
// shard-clock isolation. It deliberately does NOT embed QSPolicy: the
// promoted ScheduleInto would route the in-place fast path around the
// Schedule override and the probe would record nothing.
type clockPolicy struct {
	inner QSPolicy
	mu    sync.Mutex
	nows  []time.Duration
}

func (p *clockPolicy) Name() string      { return "clock-probe" }
func (p *clockPolicy) Metrics() []string { return p.inner.Metrics() }

func (p *clockPolicy) Schedule(v *View) (Schedule, error) {
	p.mu.Lock()
	p.nows = append(p.nows, v.Now)
	p.mu.Unlock()
	return p.inner.Schedule(v)
}

func shardedFixture(t *testing.T, shards, bindings int) (*ShardedMiddleware, []*memoDriver) {
	t.Helper()
	s := NewShardedMiddleware(nil, shards)
	t.Cleanup(s.Close)
	drivers := make([]*memoDriver, bindings)
	for i := range drivers {
		drivers[i] = &memoDriver{
			name: "spe" + strconv.Itoa(i),
			ents: []Entity{{Name: "op" + strconv.Itoa(i), Driver: "spe" + strconv.Itoa(i), Query: "q" + strconv.Itoa(i), Thread: 100 + i}},
			vals: map[string]EntityValues{MetricQueueSize: {"op" + strconv.Itoa(i): float64(i)}},
		}
		if err := s.Bind(Binding{
			Policy:     GroupPerQuery(NewQSPolicy()),
			Translator: NewCombinedTranslator(&nopOS{}, 0, 0),
			Drivers:    []Driver{drivers[i]},
			Period:     time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return s, drivers
}

// TestShardedBindRouting: drivers are claimed by the shard of their first
// binding, later bindings on the same driver follow it, disjoint bindings
// spread least-loaded, and a binding spanning two shards' drivers is
// rejected.
func TestShardedBindRouting(t *testing.T) {
	s, drivers := shardedFixture(t, 4, 8)
	// 8 disjoint bindings over 4 shards: least-loaded placement must
	// spread them 2/2/2/2.
	for i := 0; i < 4; i++ {
		if got := s.load[i]; got != 2 {
			t.Fatalf("shard %d load = %d, want 2 (least-loaded spread)", i, got)
		}
	}
	// A second binding naming an already-claimed driver lands on the
	// claiming shard regardless of load.
	home := s.ShardOf("spe0")
	if home < 0 {
		t.Fatal("spe0 unclaimed after Bind")
	}
	if err := s.Bind(Binding{
		Policy:     GroupPerQuery(NewQSPolicy()),
		Translator: NewCombinedTranslator(&nopOS{}, 0, 0),
		Drivers:    []Driver{drivers[0]},
		Period:     time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.ShardOf("spe0"); got != home {
		t.Fatalf("spe0 moved shard %d -> %d", home, got)
	}
	// A binding spanning drivers owned by two different shards must be
	// rejected, not silently entangle their clocks.
	d0, d1 := drivers[0], drivers[1]
	if s.ShardOf(d0.name) == s.ShardOf(d1.name) {
		t.Fatalf("fixture drivers landed on one shard; cannot test span rejection")
	}
	err := s.Bind(Binding{
		Policy:     GroupPerQuery(NewQSPolicy()),
		Translator: NewCombinedTranslator(&nopOS{}, 0, 0),
		Drivers:    []Driver{d0, d1},
		Period:     time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "spans shards") {
		t.Fatalf("cross-shard binding error = %v, want spans-shards rejection", err)
	}
	if got := s.ShardOf("unknown"); got != -1 {
		t.Fatalf("ShardOf(unknown) = %d, want -1", got)
	}
}

// TestShardBoundaryClocks: a binding only ever observes its own shard's
// clock. Two shards step on deliberately different timelines; the probe
// policy on shard A must never see a time from shard B's schedule.
func TestShardBoundaryClocks(t *testing.T) {
	s := NewShardedMiddleware(nil, 2)
	defer s.Close()
	probes := [2]*clockPolicy{{}, {}}
	for i := 0; i < 2; i++ {
		d := &memoDriver{
			name: "spe" + strconv.Itoa(i),
			ents: []Entity{{Name: "op", Driver: "spe" + strconv.Itoa(i), Query: "q", Thread: 100 + i}},
			vals: map[string]EntityValues{MetricQueueSize: {"op": 1}},
		}
		if err := s.Bind(Binding{
			Policy:     GroupPerQuery(probes[i]),
			Translator: NewCombinedTranslator(&nopOS{}, 0, 0),
			Drivers:    []Driver{d},
			Period:     time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	a, b := s.ShardOf("spe0"), s.ShardOf("spe1")
	if a == b {
		t.Fatalf("fixture bindings landed on one shard (%d)", a)
	}
	// Shard A runs a fast 1s-step timeline; shard B a slow, offset one.
	// The timelines are disjoint sets, so any leak is detectable.
	timesA := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second}
	timesB := []time.Duration{100 * time.Second, 200 * time.Second}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, now := range timesA {
			if _, err := s.StepShard(a, now); err != nil {
				t.Error(err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for _, now := range timesB {
			if _, err := s.StepShard(b, now); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	want := [2][]time.Duration{timesA, timesB}
	for i, p := range probes {
		p.mu.Lock()
		got := p.nows
		p.mu.Unlock()
		if len(got) != len(want[i]) {
			t.Fatalf("probe %d saw %d schedules (%v), want %v", i, len(got), got, want[i])
		}
		for j, now := range got {
			if now != want[i][j] {
				t.Fatalf("probe %d observed foreign clock: step %d = %v, want %v", i, j, now, want[i][j])
			}
		}
	}
}

// TestShardedStepMerges: Step fans out to every shard and the merged
// stats sum counts, concatenate breakdowns, and take the earliest Next.
func TestShardedStepMerges(t *testing.T) {
	s, _ := shardedFixture(t, 4, 8)
	st, err := s.Step(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.PoliciesRun != 8 {
		t.Fatalf("merged PoliciesRun = %d, want 8", st.PoliciesRun)
	}
	if st.Entities != 8 {
		t.Fatalf("merged Entities = %d, want 8", st.Entities)
	}
	if len(st.Bindings) != 8 {
		t.Fatalf("merged Bindings = %d entries, want 8", len(st.Bindings))
	}
	if st.Next != 2*time.Second {
		t.Fatalf("merged Next = %v, want 2s", st.Next)
	}
	h := s.Health()
	if len(h.Bindings) != 8 || len(h.Drivers) != 8 {
		t.Fatalf("merged health = %d bindings / %d drivers, want 8/8", len(h.Bindings), len(h.Drivers))
	}
}

// stateOS folds control writes into a final desired state — the
// equivalence oracle for sequential vs sharded runs.
type stateOS struct {
	mu     sync.Mutex
	nices  map[int]int
	shares map[string]int
	placed map[int]string
	writes int
}

func newStateOS() *stateOS {
	return &stateOS{nices: map[int]int{}, shares: map[string]int{}, placed: map[int]string{}}
}

func (o *stateOS) SetNice(tid, nice int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.nices[tid] = nice
	o.writes++
	return nil
}
func (o *stateOS) EnsureCgroup(name string) error { return nil }
func (o *stateOS) SetShares(name string, shares int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.shares[name] = shares
	o.writes++
	return nil
}
func (o *stateOS) MoveThread(tid int, name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.placed[tid] = name
	o.writes++
	return nil
}

func (o *stateOS) equal(p *stateOS) bool {
	if len(o.nices) != len(p.nices) || len(o.shares) != len(p.shares) || len(o.placed) != len(p.placed) {
		return false
	}
	for k, v := range o.nices {
		if p.nices[k] != v {
			return false
		}
	}
	for k, v := range o.shares {
		if p.shares[k] != v {
			return false
		}
	}
	for k, v := range o.placed {
		if p.placed[k] != v {
			return false
		}
	}
	return true
}

// TestShardedDecisionEquivalence: the same workload (changing values,
// memoized bindings) driven through a sequential Middleware and a
// 4-shard ShardedMiddleware converges to the identical final OS state —
// sharding (and memoization on both sides) must not change a single
// decision, only the clock partitioning.
func TestShardedDecisionEquivalence(t *testing.T) {
	const bindings = 16
	mkDrivers := func() []*memoDriver {
		ds := make([]*memoDriver, bindings)
		for i := range ds {
			name := "spe" + strconv.Itoa(i)
			ds[i] = &memoDriver{
				name: name,
				ents: []Entity{
					{Name: name + "-a", Driver: name, Query: "q" + strconv.Itoa(i), Thread: 1000 + 2*i},
					{Name: name + "-b", Driver: name, Query: "q" + strconv.Itoa(i), Thread: 1001 + 2*i},
				},
				vals: map[string]EntityValues{MetricQueueSize: {name + "-a": 1, name + "-b": 2}},
			}
		}
		return ds
	}
	evolve := func(ds []*memoDriver, step int) {
		// Plateau with a phased burst, like the scale workload: only some
		// bindings change each step, so memoization engages on both runs.
		for i, d := range ds {
			if (step+i)%4 == 0 {
				d.vals[MetricQueueSize][d.name+"-a"] = float64(10 + step + i)
			}
		}
	}

	run := func(sharded bool) *stateOS {
		os := newStateOS()
		ds := mkDrivers()
		bind := func(b func(Binding) error) {
			for _, d := range ds {
				if err := b(Binding{
					Policy:     GroupPerQuery(NewQSPolicy()),
					Translator: NewCombinedTranslator(NewCoalescer(os, nil), 0, 0),
					Drivers:    []Driver{d},
					Period:     time.Second,
					Memoize:    true,
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		var step func(now time.Duration) error
		if sharded {
			s := NewShardedMiddleware(nil, 4)
			defer s.Close()
			bind(s.Bind)
			step = func(now time.Duration) error { _, err := s.Step(now); return err }
		} else {
			m := NewMiddleware(nil)
			defer m.Close()
			m.SetParallelism(Parallelism{Disabled: true})
			bind(m.Bind)
			step = func(now time.Duration) error { _, err := m.Step(now); return err }
		}
		for i := 1; i <= 12; i++ {
			evolve(ds, i)
			if err := step(time.Duration(i) * time.Second); err != nil {
				t.Fatal(err)
			}
		}
		return os
	}

	seq := run(false)
	shd := run(true)
	if seq.writes == 0 {
		t.Fatal("workload issued no control writes; oracle is vacuous")
	}
	if !seq.equal(shd) {
		t.Fatalf("sharded final OS state diverged from sequential baseline:\nseq: nices=%v shares=%v placed=%v\nshd: nices=%v shares=%v placed=%v",
			seq.nices, seq.shares, seq.placed, shd.nices, shd.shares, shd.placed)
	}
}
