package core

import (
	"errors"
	"testing"
	"time"
)

// memoDriver is a benchDriver whose values the test mutates explicitly.
type memoDriver struct {
	name string
	ents []Entity
	vals map[string]EntityValues
}

func (d *memoDriver) Name() string                { return d.name }
func (d *memoDriver) Entities() []Entity          { return d.ents }
func (d *memoDriver) Provides(metric string) bool { return metric == MetricQueueSize }
func (d *memoDriver) Fetch(metric string, window time.Duration) (EntityValues, error) {
	return d.vals[metric], nil
}

func memoFixture(t *testing.T, memoize bool) (*Middleware, *memoDriver, *nopOS) {
	t.Helper()
	d := &memoDriver{
		name: "spe",
		ents: []Entity{
			{Name: "op-a", Driver: "spe", Query: "q1", Thread: 101},
			{Name: "op-b", Driver: "spe", Query: "q1", Thread: 102},
		},
		vals: map[string]EntityValues{
			MetricQueueSize: {"op-a": 10, "op-b": 20},
		},
	}
	os := &nopOS{}
	m := NewMiddleware(nil)
	t.Cleanup(m.Close)
	if err := m.Bind(Binding{
		Policy:     GroupPerQuery(NewQSPolicy()),
		Translator: NewCombinedTranslator(os, 0, 0),
		Drivers:    []Driver{d},
		Period:     time.Second,
		Memoize:    memoize,
	}); err != nil {
		t.Fatal(err)
	}
	return m, d, os
}

// TestMemoizeSkipsUnchangedCycles: identical inputs after a successful
// apply are served from the memo (no policy run, no OS traffic), and any
// input change — a value, an entity — runs the full pipeline again.
func TestMemoizeSkipsUnchangedCycles(t *testing.T) {
	m, d, os := memoFixture(t, true)

	st, err := m.Step(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.PoliciesRun != 1 || st.Memoized != 0 {
		t.Fatalf("first cycle: run=%d memoized=%d, want 1/0", st.PoliciesRun, st.Memoized)
	}
	calls := os.calls()

	// Unchanged inputs: memo hit, zero backend traffic, entity count and
	// label preserved in the stats entry.
	st, err = m.Step(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.PoliciesRun != 0 || st.Memoized != 1 {
		t.Fatalf("steady cycle: run=%d memoized=%d, want 0/1", st.PoliciesRun, st.Memoized)
	}
	if os.calls() != calls {
		t.Fatalf("memoized cycle reached the backend: %d -> %d calls", calls, os.calls())
	}
	if len(st.Bindings) != 1 || !st.Bindings[0].Memoized || st.Bindings[0].Entities != 2 {
		t.Fatalf("memoized stats entry wrong: %+v", st.Bindings[0])
	}
	if st.Entities != 2 {
		t.Fatalf("memoized entities = %d, want 2", st.Entities)
	}

	// A value change must break the memo.
	d.vals[MetricQueueSize]["op-a"] = 99
	st, _ = m.Step(3 * time.Second)
	if st.PoliciesRun != 1 || st.Memoized != 0 {
		t.Fatalf("after value change: run=%d memoized=%d, want 1/0", st.PoliciesRun, st.Memoized)
	}

	// Back to steady, then an entity change must break it too.
	if st, _ = m.Step(4 * time.Second); st.Memoized != 1 {
		t.Fatalf("expected memo hit before entity change, got %+v", st)
	}
	d.ents = append(d.ents, Entity{Name: "op-c", Driver: "spe", Query: "q1", Thread: 103})
	d.vals[MetricQueueSize]["op-c"] = 5
	st, _ = m.Step(5 * time.Second)
	if st.PoliciesRun != 1 || st.Memoized != 0 {
		t.Fatalf("after entity change: run=%d memoized=%d, want 1/0", st.PoliciesRun, st.Memoized)
	}
	if st.Entities != 3 {
		t.Fatalf("entities after growth = %d, want 3", st.Entities)
	}
}

// TestMemoizeInvalidatedByFailure: a failed apply clears the memo, so the
// next cycle — even with unchanged inputs — executes the full pipeline
// (half-open probes must never be answered from the memo).
func TestMemoizeInvalidatedByFailure(t *testing.T) {
	m, d, os := memoFixture(t, true)
	m.SetResilience(Resilience{FailureThreshold: 100}) // keep the breaker shut

	if _, err := m.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.Step(2 * time.Second); st.Memoized != 1 {
		t.Fatalf("expected steady memo hit, got %+v", st)
	}

	// Change an input so the cycle leaves the memo and hits the (now
	// failing) backend.
	os.fail = errors.New("backend down")
	d.vals[MetricQueueSize]["op-a"] = 42
	if _, err := m.Step(3 * time.Second); err == nil {
		t.Fatal("expected apply failure")
	}
	os.fail = nil

	// Inputs are unchanged, but the last apply failed: the schedule on
	// the OS cannot be trusted, so the pipeline must run in full.
	st, err := m.Step(4 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.PoliciesRun != 1 || st.Memoized != 0 {
		t.Fatalf("post-failure cycle: run=%d memoized=%d, want 1/0", st.PoliciesRun, st.Memoized)
	}
	if st, _ = m.Step(5 * time.Second); st.Memoized != 1 {
		t.Fatalf("memo did not re-arm after recovery: %+v", st)
	}
}

// TestMemoizeOffByDefault: without the opt-in, identical inputs still run
// the policy every cycle.
func TestMemoizeOffByDefault(t *testing.T) {
	m, _, _ := memoFixture(t, false)
	for i := 1; i <= 3; i++ {
		st, err := m.Step(time.Duration(i) * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if st.PoliciesRun != 1 || st.Memoized != 0 {
			t.Fatalf("cycle %d: run=%d memoized=%d, want 1/0", i, st.PoliciesRun, st.Memoized)
		}
	}
}
