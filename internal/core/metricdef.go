package core

import (
	"time"
)

// Canonical metric names. A driver provides a subset directly; the rest
// are derived through the dependency graph below (paper Fig. 4: different
// SPEs expose different parts of the graph).
const (
	// MetricQueueSize is the operator input queue length (for ingress
	// operators: the source backlog).
	MetricQueueSize = "queue_size"
	// MetricInCount / MetricOutCount are cumulative tuple counters.
	MetricInCount  = "in_count"
	MetricOutCount = "out_count"
	// MetricInRate / MetricOutRate are tuples per second.
	MetricInRate  = "in_rate"
	MetricOutRate = "out_rate"
	// MetricBusyMsPerS is CPU busy milliseconds per wall second.
	MetricBusyMsPerS = "busy_ms_per_s"
	// MetricCostMs is the average per-tuple processing cost in ms.
	MetricCostMs = "cost_ms"
	// MetricSelectivity is output tuples per input tuple.
	MetricSelectivity = "selectivity"
	// MetricHeadWaitMs is the age of the head tuple of the input queue in
	// ms.
	MetricHeadWaitMs = "head_wait_ms"
)

// ComputeCtx gives derived-metric computations access to period timing and
// the previous period's values (needed to derive rates from cumulative
// counters).
type ComputeCtx struct {
	// Now is the current update time.
	Now time.Duration
	// Elapsed is the time since the previous provider update (0 on the
	// first update).
	Elapsed time.Duration
	// Prev holds the previous update's value of each dependency.
	Prev map[string]EntityValues
}

// MetricDef declares a metric: either primitive (no deps, must come from a
// driver) or derived (computed from dependencies).
type MetricDef struct {
	Name string
	// Deps are the metrics this one is computed from (empty = primitive).
	Deps []string
	// Compute derives the metric from its dependencies' values.
	Compute func(ctx *ComputeCtx, deps map[string]EntityValues) EntityValues
}

// Registry holds metric definitions by name.
type Registry map[string]MetricDef

// DefaultRegistry returns the metric definitions used in the evaluation.
// The derivation chains mirror the paper's Fig. 4: e.g. a Flink-like
// driver provides rates directly, a Storm-like driver provides cumulative
// counts from which rates — and then selectivity — are derived.
func DefaultRegistry() Registry {
	r := Registry{}
	for _, name := range []string{
		MetricQueueSize, MetricInCount, MetricOutCount, MetricBusyMsPerS,
	} {
		r[name] = MetricDef{Name: name}
	}
	r[MetricInRate] = MetricDef{
		Name:    MetricInRate,
		Deps:    []string{MetricInCount},
		Compute: rateOf(MetricInCount),
	}
	r[MetricOutRate] = MetricDef{
		Name:    MetricOutRate,
		Deps:    []string{MetricOutCount},
		Compute: rateOf(MetricOutCount),
	}
	r[MetricSelectivity] = MetricDef{
		Name: MetricSelectivity,
		Deps: []string{MetricInRate, MetricOutRate},
		Compute: func(_ *ComputeCtx, deps map[string]EntityValues) EntityValues {
			return ratio(deps[MetricOutRate], deps[MetricInRate])
		},
	}
	r[MetricCostMs] = MetricDef{
		Name: MetricCostMs,
		Deps: []string{MetricBusyMsPerS, MetricInRate},
		Compute: func(_ *ComputeCtx, deps map[string]EntityValues) EntityValues {
			return ratio(deps[MetricBusyMsPerS], deps[MetricInRate])
		},
	}
	r[MetricHeadWaitMs] = MetricDef{
		Name: MetricHeadWaitMs,
		Deps: []string{MetricQueueSize, MetricInRate},
		Compute: func(_ *ComputeCtx, deps map[string]EntityValues) EntityValues {
			// Little's law estimate: wait = queue / service rate.
			out := make(EntityValues, len(deps[MetricQueueSize]))
			rates := deps[MetricInRate]
			for e, q := range deps[MetricQueueSize] {
				if rate := rates[e]; rate > 0 {
					out[e] = q / rate * 1e3
				} else {
					out[e] = 0
				}
			}
			return out
		},
	}
	return r
}

// rateOf derives a per-second rate from a cumulative counter using the
// previous period's value.
func rateOf(counter string) func(*ComputeCtx, map[string]EntityValues) EntityValues {
	return func(ctx *ComputeCtx, deps map[string]EntityValues) EntityValues {
		cur := deps[counter]
		out := make(EntityValues, len(cur))
		prev := ctx.Prev[counter]
		if ctx.Elapsed <= 0 || prev == nil {
			for e := range cur {
				out[e] = 0
			}
			return out
		}
		secs := ctx.Elapsed.Seconds()
		for e, v := range cur {
			d := v - prev[e]
			if d < 0 {
				d = 0
			}
			out[e] = d / secs
		}
		return out
	}
}

// ratio divides two metrics entity-wise, yielding 0 where the denominator
// is not positive.
func ratio(num, den EntityValues) EntityValues {
	out := make(EntityValues, len(num))
	for e, n := range num {
		if d := den[e]; d > 0 {
			out[e] = n / d
		} else {
			out[e] = 0
		}
	}
	return out
}
