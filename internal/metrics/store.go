// Package metrics provides the Graphite-like time-series store through
// which Lachesis observes the SPEs. Engines publish raw metric samples into
// the store; the Lachesis drivers read them back. The store quantizes
// samples to a fixed resolution (one second in the paper's evaluation), so
// the middleware always works with metrics that are up to one resolution
// interval stale — a deliberately modeled disadvantage versus user-level
// schedulers that read fresh in-engine state (§6.4, Fig. 15).
//
// The store is sharded: series are hashed across DefaultShards independent
// buckets, each with its own lock, so concurrent reporters (one per SPE)
// and concurrent driver fetches (the middleware's parallel fetch pool)
// never serialize on a single store-wide mutex.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultResolution matches the paper's Graphite deployment: one second.
const DefaultResolution = time.Second

// defaultRetention is how many buckets each series keeps.
const defaultRetention = 240

// DefaultShards is how many independently locked shards a store spreads
// its series over. Sixteen keeps the per-shard maps small and makes lock
// collisions between unrelated series unlikely without bloating the
// fixed per-store footprint.
const DefaultShards = 16

// Point is one quantized sample.
type Point struct {
	At    time.Duration
	Value float64
}

// shard is one independently locked slice of the series keyspace.
type shard struct {
	mu     sync.RWMutex
	series map[string][]Point
}

// Store is an in-memory time-series database with fixed resolution. All
// methods are safe for concurrent use; samples for distinct series hash to
// (usually) distinct shards and proceed without contention.
type Store struct {
	resolution time.Duration
	retention  int
	window     atomic.Int64 // retention window in ns; 0 = count-based only
	shards     []shard

	records atomic.Int64
	evicted atomic.Int64
}

// NewStore creates a store with DefaultShards shards. resolution <= 0
// selects DefaultResolution.
func NewStore(resolution time.Duration) *Store {
	return NewShardedStore(resolution, DefaultShards)
}

// NewShardedStore creates a store with an explicit shard count (the
// contention benchmark compares shard counts; shards <= 0 selects 1).
func NewShardedStore(resolution time.Duration, shards int) *Store {
	if resolution <= 0 {
		resolution = DefaultResolution
	}
	if shards <= 0 {
		shards = 1
	}
	s := &Store{
		resolution: resolution,
		retention:  defaultRetention,
		shards:     make([]shard, shards),
	}
	for i := range s.shards {
		s.shards[i].series = make(map[string][]Point)
	}
	return s
}

// shardFor hashes a series name (FNV-1a) onto its shard.
func (s *Store) shardFor(series string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(series); i++ {
		h ^= uint64(series[i])
		h *= prime64
	}
	return &s.shards[h%uint64(len(s.shards))]
}

// Shards returns the shard count (for tests and benchmarks).
func (s *Store) Shards() int { return len(s.shards) }

// Resolution returns the store's time quantum.
func (s *Store) Resolution() time.Duration { return s.resolution }

// Records returns the number of samples recorded over the store's
// lifetime.
func (s *Store) Records() int64 { return s.records.Load() }

// Evicted returns how many samples the retention window has dropped over
// the store's lifetime (always 0 with the window off).
func (s *Store) Evicted() int64 { return s.evicted.Load() }

// SetRetentionWindow enables time-based retention: on each Record, samples
// older than window behind the written sample are evicted from that
// series. It composes with the count bound (whichever evicts first wins).
// window <= 0 restores the default, count-based-only retention. A
// long-running daemon uses this to bound memory by age rather than by
// sample count, which count-based retention alone cannot do for series
// reported at different rates.
func (s *Store) SetRetentionWindow(window time.Duration) {
	if window < 0 {
		window = 0
	}
	s.window.Store(int64(window))
}

// RetentionWindow returns the active time-based retention window (0 when
// off).
func (s *Store) RetentionWindow() time.Duration {
	return time.Duration(s.window.Load())
}

// Record stores a sample, quantized down to the containing bucket. A
// second sample in the same bucket overwrites the first. Record implements
// the engine MetricSink interface.
func (s *Store) Record(now time.Duration, series string, value float64) {
	at := now / s.resolution * s.resolution
	s.records.Add(1)
	sh := s.shardFor(series)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	buf := sh.series[series]
	if n := len(buf); n > 0 && buf[n-1].At == at {
		buf[n-1].Value = value
		return
	}
	buf = append(buf, Point{At: at, Value: value})
	if len(buf) > s.retention {
		s.evicted.Add(int64(len(buf) - s.retention))
		buf = buf[len(buf)-s.retention:]
	}
	if window := time.Duration(s.window.Load()); window > 0 {
		cutoff := at - window
		drop := 0
		for drop < len(buf)-1 && buf[drop].At < cutoff {
			drop++
		}
		if drop > 0 {
			s.evicted.Add(int64(drop))
			buf = buf[drop:]
		}
	}
	sh.series[series] = buf
}

// Latest returns the most recent sample of a series.
func (s *Store) Latest(series string) (Point, bool) {
	sh := s.shardFor(series)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	buf := sh.series[series]
	if len(buf) == 0 {
		return Point{}, false
	}
	return buf[len(buf)-1], true
}

// At returns the sample in the bucket containing t, or the nearest earlier
// sample (how Graphite answers point queries for sparse series).
func (s *Store) At(series string, t time.Duration) (Point, bool) {
	sh := s.shardFor(series)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	buf := sh.series[series]
	if len(buf) == 0 {
		return Point{}, false
	}
	bucket := t / s.resolution * s.resolution
	idx := sort.Search(len(buf), func(i int) bool { return buf[i].At > bucket })
	if idx == 0 {
		return Point{}, false
	}
	return buf[idx-1], true
}

// Range returns all samples with from <= At <= to, in time order.
func (s *Store) Range(series string, from, to time.Duration) []Point {
	sh := s.shardFor(series)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out []Point
	for _, p := range sh.series[series] {
		if p.At >= from && p.At <= to {
			out = append(out, p)
		}
	}
	return out
}

// SeriesNames returns all series names across every shard, sorted.
func (s *Store) SeriesNames() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for name := range sh.series {
			out = append(out, name)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// HasSeries reports whether a series has at least one sample.
func (s *Store) HasSeries(series string) bool {
	sh := s.shardFor(series)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.series[series]) > 0
}
