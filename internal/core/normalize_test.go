package core

import (
	"math"
	"testing"
)

func TestNormalizeToNiceLinear(t *testing.T) {
	prios := map[string]float64{"a": 0, "b": 50, "c": 100}
	got := NormalizeToNice(prios, ScaleLinear)
	if got["c"] != -20 {
		t.Errorf("highest priority should map to nice -20, got %d", got["c"])
	}
	if got["a"] != 19 {
		t.Errorf("lowest priority should map to nice 19, got %d", got["a"])
	}
	if got["b"] < -2 || got["b"] > 2 {
		t.Errorf("middle priority should map near nice 0, got %d", got["b"])
	}
}

func TestNormalizeToNiceEqualPriorities(t *testing.T) {
	prios := map[string]float64{"a": 5, "b": 5, "c": 5}
	got := NormalizeToNice(prios, ScaleLinear)
	for e, n := range got {
		if n != got["a"] {
			t.Fatalf("equal priorities should get equal nice, %s got %d", e, n)
		}
	}
	if got["a"] < -1 || got["a"] > 1 {
		t.Errorf("equal priorities should map near the middle, got %d", got["a"])
	}
}

func TestNormalizeToNiceLogFormula(t *testing.T) {
	// Paper §5.3: F(x) = n_max + (log(p_max) - log(x)) / log(1.25).
	// Priorities within a 1.25^k spread should land exactly k nice levels
	// apart.
	pmax := 100.0
	prios := map[string]float64{
		"top": pmax,
		"mid": pmax / math.Pow(1.25, 10),
		"low": pmax / math.Pow(1.25, 39),
	}
	got := NormalizeToNice(prios, ScaleLog)
	if got["top"] != -20 {
		t.Errorf("p_max should map to nice -20, got %d", got["top"])
	}
	if got["mid"] != -10 {
		t.Errorf("p_max/1.25^10 should map to nice -10, got %d", got["mid"])
	}
	if got["low"] != 19 {
		t.Errorf("p_max/1.25^39 should map to nice 19, got %d", got["low"])
	}
}

func TestNormalizeToNiceLogOverflowFallsBackToMinMax(t *testing.T) {
	// Spread of 1.25^200: cannot fit in 40 nice values; min-max on logs.
	prios := map[string]float64{
		"top": 1,
		"mid": math.Pow(1.25, -100),
		"low": math.Pow(1.25, -200),
	}
	got := NormalizeToNice(prios, ScaleLog)
	if got["top"] != -20 || got["low"] != 19 {
		t.Errorf("fallback min-max should span full range, got %v", got)
	}
	if got["mid"] < -2 || got["mid"] > 2 {
		t.Errorf("log-middle value should land near nice 0, got %d", got["mid"])
	}
}

func TestNormalizeToNiceNonPositiveLogInputs(t *testing.T) {
	prios := map[string]float64{"a": -5, "b": 0, "c": 5}
	got := NormalizeToNice(prios, ScaleLog)
	if got["c"] >= got["a"] {
		t.Errorf("higher priority should get lower nice: %v", got)
	}
	for e, n := range got {
		if n < -20 || n > 19 {
			t.Errorf("nice out of range for %s: %d", e, n)
		}
	}
}

func TestNormalizeToShares(t *testing.T) {
	prios := map[string]float64{"a": 0, "b": 10}
	got := NormalizeToShares(prios, ScaleLinear, 8, 8192)
	if got["a"] != 8 {
		t.Errorf("lowest priority shares = %d, want 8", got["a"])
	}
	if got["b"] != 8192 {
		t.Errorf("highest priority shares = %d, want 8192", got["b"])
	}
	one := NormalizeToShares(map[string]float64{"only": 3}, ScaleLinear, 8, 8192)
	if one["only"] < 8 || one["only"] > 8192 {
		t.Errorf("single group shares out of range: %d", one["only"])
	}
}

func TestNormalizeEmpty(t *testing.T) {
	if got := NormalizeToNice(nil, ScaleLinear); len(got) != 0 {
		t.Errorf("empty input should give empty output, got %v", got)
	}
	if got := NormalizeToShares(nil, ScaleLog, 2, 100); len(got) != 0 {
		t.Errorf("empty input should give empty output, got %v", got)
	}
}
