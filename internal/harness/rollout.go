package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/driver"
	"lachesis/internal/faults"
	"lachesis/internal/guard"
	"lachesis/internal/metrics"
	"lachesis/internal/simctl"
	"lachesis/internal/simos"
	"lachesis/internal/spe"
	"lachesis/internal/stats"
	"lachesis/internal/workloads"
)

// The rollout experiment validates the guarded-rollout layer rather than
// a paper figure. An adversarial policy ("drain the cheap operators
// first": rank by per-tuple cost, so the pipeline's most expensive
// operator is deterministically pinned at the weakest priority) is rolled
// out against two stacks over the same two-query ETL world. Co-located
// batch spinners share the engine's cgroup so the node is contended and
// priority actually decides who runs — on an idle work-conserving
// scheduler the starved operator would just absorb the slack and the
// inversion would be invisible:
//
//   - guarded: the candidate enters through the canary controller (one of
//     the two per-query bindings), every batch passes the OpGuard's
//     invariants, and a watchdog bounds the cycle's phases. The guard's
//     starvation detector catches the pinned-and-growing bottleneck, the
//     violations feed the canary verdict, and the rollout is rolled back
//     within the comparison window.
//   - unguarded: the same candidate replaces the policy on every binding
//     at the same instant with nothing in its way, and the deployment
//     degrades for the rest of the run.
//
// A short degraded-metrics window during the rollout exercises the
// watchdog's fetch deadline, so BENCH_rollout.json also proves overruns
// are detected and survivable.

const (
	rolloutSeed = 47
	// rolloutRate is tuples/s per query — two queries plus the hogs share
	// the Odroid. The pipelines alone sit well below saturation, so the
	// healthy (QS) stack stays stable even with the hogs soaking the
	// slack; once the candidate inverts priorities the pinned bottleneck
	// loses the CPU to the hogs and queues visibly.
	rolloutRate = 550
	// rolloutWindow is the canary comparison window in decision cycles;
	// it is also K, the bound within which the guarded stack must have
	// rolled back.
	rolloutWindow = 5
	// rolloutHogs / rolloutHogNice shape the co-located batch load that
	// shares the engine cgroup (see runRolloutVariant): always-runnable
	// spinner threads that soak idle CPU, so scheduling priority decides
	// which pipeline operators keep up.
	rolloutHogs    = 2
	rolloutHogNice = 15
	// rolloutStarveCycles is the guard's starvation-detector threshold.
	rolloutStarveCycles = 3
	// rolloutStarveMinQueue is the detector's absolute queue floor. QS's
	// relative normalization legitimately parks the least-loaded operator
	// at nice +19; without a floor, that operator's queue jittering up by
	// a few tuples (especially while the system drains a backlog after a
	// rollback) would read as starvation and block the good policy's
	// corrective batches.
	rolloutStarveMinQueue = 64
	// rolloutFetchDeadline bounds the metric-fetch phase (wall clock).
	rolloutFetchDeadline = 5 * time.Millisecond
	// rolloutSlowLatency is the injected fetch delay inside the degraded
	// window — far past the deadline, so every affected fetch overruns.
	rolloutSlowLatency = 25 * time.Millisecond
	// rolloutDivergeFactor is the p95 growth past which a variant counts
	// as degraded.
	rolloutDivergeFactor = 1.5
)

// RolloutRow is one variant's outcome — a row of BENCH_rollout.json.
type RolloutRow struct {
	Variant string `json:"variant"`
	// RolledBack reports whether the canary controller withdrew the
	// candidate (always false for the unguarded stack, which has none).
	RolledBack bool `json:"rolled_back"`
	// RollbackCycle is the decision cycle (counted from the proposal) at
	// which the rollback landed; -1 when no rollback happened.
	RollbackCycle int `json:"rollback_cycle"`
	// KBound is the cycle budget the rollback must meet (the window).
	KBound int `json:"k_bound"`
	// GuardViolations counts invariant violations the OpGuards raised.
	GuardViolations int64 `json:"guard_violations"`
	// WatchdogOverruns counts phase-deadline overruns (the injected
	// degraded-metrics window).
	WatchdogOverruns int64 `json:"watchdog_overruns"`
	WatchdogDegraded bool  `json:"watchdog_degraded"`
	// P95BeforeMs/P95AfterMs are mean per-query p95 end-to-end latencies
	// at the rollout instant and at the end of the run.
	P95BeforeMs float64 `json:"p95_before_ms"`
	P95AfterMs  float64 `json:"p95_after_ms"`
	// DegradationFactor is the worst per-query p95 growth after the
	// rollout (after/before).
	DegradationFactor float64 `json:"degradation_factor"`
	// ThroughputFactor is the worst per-query egress-rate ratio
	// (after/before).
	ThroughputFactor float64 `json:"throughput_factor"`
	StepErrors       int64   `json:"step_errors"`
}

// RolloutReport is the BENCH_rollout.json document.
type RolloutReport struct {
	Experiment string        `json:"experiment"`
	Window     int           `json:"window_cycles"`
	SwitchAt   time.Duration `json:"switch_at_ns"`
	End        time.Duration `json:"end_ns"`
	Rows       []RolloutRow  `json:"rows"`
	// GuardedContained: the guarded stack rolled back within K cycles.
	GuardedContained bool `json:"guarded_contained"`
	// UnguardedDiverged: the unguarded stack degraded past the factor.
	UnguardedDiverged bool `json:"unguarded_diverged"`
}

// inverseCostPolicy is the adversarial candidate: "drain the cheap
// operators first" — it ranks operators by measured per-tuple cost and
// hands the most expensive one the weakest priority. On a contended node
// that deterministically pins the pipeline's bottleneck at nice +19 while
// its queue grows without bound: exactly the signature the OpGuard's
// starvation detector exists to catch. It also requests queue_size — the
// guard reads queue growth from the binding's own view, so a policy that
// fetches no queue metric would leave the detector blind (documented in
// DESIGN.md).
type inverseCostPolicy struct{}

var _ core.Policy = inverseCostPolicy{}

func (inverseCostPolicy) Name() string { return "inverse-cost" }
func (inverseCostPolicy) Metrics() []string {
	return []string{core.MetricCostMs, core.MetricQueueSize}
}
func (inverseCostPolicy) Schedule(view *core.View) (core.Schedule, error) {
	cost := view.Metric(core.MetricCostMs)
	single := make(map[string]float64, len(view.Entities))
	for name := range view.Entities {
		single[name] = -cost[name]
	}
	return core.Schedule{Scale: core.ScaleLinear, Single: single}, nil
}

// namedQSPolicy is QS with a per-binding name, so canary slots (which
// take their stable policy's name) stay distinguishable in SLO sampling
// and telemetry labels. The name encodes the query as "qs@<query>".
type namedQSPolicy struct {
	core.QSPolicy
	name string
}

func (p namedQSPolicy) Name() string { return p.name }

// rolloutMonitor records per-query SLO once per simulated second and
// serves guard.SLOSample aggregates to the canary controller.
type rolloutMonitor struct {
	mu         sync.Mutex
	deps       map[string]*spe.Deployment
	lastEgress map[string]int64
	latest     map[string]guard.SLOSample
	latHist    map[string][]float64 // per-query p95 seconds, one per sample
	tputHist   map[string][]float64 // per-query tuples/s, one per sample
}

func newRolloutMonitor(deps map[string]*spe.Deployment) *rolloutMonitor {
	return &rolloutMonitor{
		deps:       deps,
		lastEgress: make(map[string]int64),
		latest:     make(map[string]guard.SLOSample),
		latHist:    make(map[string][]float64),
		tputHist:   make(map[string][]float64),
	}
}

// sample records one per-second observation for every query.
func (m *rolloutMonitor) sample() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for q, dep := range m.deps {
		p95, err := stats.Quantile(dep.Latencies().E2ESamples, 0.95)
		if err != nil {
			p95 = 0
		}
		// Reset so the next sample covers only the next interval: the
		// canary verdict needs a responsive signal, not an all-time tail.
		dep.ResetStats()
		egress := dep.EgressCount()
		tput := float64(egress - m.lastEgress[q])
		m.lastEgress[q] = egress
		m.latest[q] = guard.SLOSample{LatencyP95: p95, Throughput: tput, OK: p95 > 0}
		m.latHist[q] = append(m.latHist[q], p95)
		m.tputHist[q] = append(m.tputHist[q], tput)
	}
}

// slo implements guard.Sampler: slot names are "qs@<query>", and a
// group's SLO is the mean over its member queries' latest samples.
func (m *rolloutMonitor) slo(group []string) guard.SLOSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out guard.SLOSample
	n := 0
	for _, name := range group {
		q := name
		if i := strings.IndexByte(name, '@'); i >= 0 {
			q = name[i+1:]
		}
		s, ok := m.latest[q]
		if !ok || !s.OK {
			continue
		}
		out.LatencyP95 += s.LatencyP95
		out.Throughput += s.Throughput
		n++
	}
	if n == 0 {
		return guard.SLOSample{}
	}
	out.LatencyP95 /= float64(n)
	out.Throughput /= float64(n)
	out.OK = true
	return out
}

// window returns the mean of the last k entries of xs.
func meanTail(xs []float64, k int) float64 {
	if len(xs) == 0 {
		return 0
	}
	if k > len(xs) {
		k = len(xs)
	}
	sum := 0.0
	for _, v := range xs[len(xs)-k:] {
		sum += v
	}
	return sum / float64(k)
}

// runRolloutVariant runs one stack — guarded or unguarded — through the
// adversarial rollout and measures containment.
func runRolloutVariant(guarded bool, sc Scale) (RolloutRow, error) {
	name := "unguarded"
	if guarded {
		name = "guarded"
	}
	row := RolloutRow{Variant: name, RollbackCycle: -1, KBound: rolloutWindow}

	k := simos.New(simos.OdroidXU4())
	eng, err := spe.New(k, spe.Config{Name: "storm0", Flavor: spe.FlavorStorm, Seed: rolloutSeed})
	if err != nil {
		return row, fmt.Errorf("engine: %w", err)
	}
	// Co-located batch work in the engine's cgroup: always-runnable
	// spinners at a modest nice. They soak whatever CPU the pipeline
	// leaves idle, so thread priority — not work-conserving slack —
	// decides whether an operator keeps up. Under QS the operators
	// outweigh the hogs and the pipeline is stable; under the adversarial
	// candidate the pinned bottleneck (nice +19, weight ~15 against the
	// hogs' combined ~72) loses the contended slack and queues without
	// bound. Hog strength is deliberately mid-range: strong enough that
	// the pinned operator starves, weak enough that after a rollback the
	// temporarily +19-parked operators still drain the inflicted backlog.
	// This is the paper's motivating co-location scenario, and it is what
	// makes the adversarial rollout observable.
	hog := simos.RunnerFunc(func(ctx *simos.RunContext, granted time.Duration) simos.Decision {
		return simos.Decision{Used: granted, Action: simos.ActionYield}
	})
	for i := 0; i < rolloutHogs; i++ {
		tid, err := k.Spawn(fmt.Sprintf("batch-hog-%d", i), eng.Cgroup(), hog)
		if err != nil {
			return row, fmt.Errorf("spawn hog: %w", err)
		}
		if err := k.SetNice(tid, rolloutHogNice); err != nil {
			return row, fmt.Errorf("hog nice: %w", err)
		}
	}

	q1 := workloads.ETL()
	q2 := workloads.ETL()
	q2.Name = "etl2"
	dep1, err := eng.Deploy(q1, workloads.IoTSource(rolloutRate, rolloutSeed))
	if err != nil {
		return row, fmt.Errorf("deploy etl: %w", err)
	}
	dep2, err := eng.Deploy(q2, workloads.IoTSource(rolloutRate, rolloutSeed+1))
	if err != nil {
		return row, fmt.Errorf("deploy etl2: %w", err)
	}
	store := metrics.NewStore(time.Second)
	if err := eng.StartReporter(store, time.Second); err != nil {
		return row, fmt.Errorf("reporter: %w", err)
	}
	drv, err := driver.New(eng, store)
	if err != nil {
		return row, fmt.Errorf("driver: %w", err)
	}
	osa, err := simctl.NewOSAdapter(k)
	if err != nil {
		return row, err
	}

	switchAt := sc.Warmup
	end := sc.Warmup + sc.Measure
	queries := []string{q1.Name, q2.Name}
	mon := newRolloutMonitor(map[string]*spe.Deployment{q1.Name: dep1, q2.Name: dep2})

	// A degraded-metrics window after the canary verdict: fetches answer,
	// but slower than the watchdog's deadline (virtual time selects the
	// window; the wall-clock sleep trips the deadline). It sits past the
	// comparison window on purpose — a timed-out fetch serves stale
	// values, which would hide the queue growth the starvation detector
	// watches. Both variants get the same wrap for symmetry; only the
	// guarded stack has a watchdog to notice.
	slowFrom := switchAt + time.Duration(rolloutWindow+3)*time.Second
	fdrv := faults.WrapDriver(drv, faults.DriverPlan{
		Seed:        rolloutSeed,
		SlowWindows: faults.Windows{{From: slowFrom, To: slowFrom + 2*time.Second}},
		SlowLatency: rolloutSlowLatency,
		Sleep:       time.Sleep,
	})

	mw := core.NewMiddleware(nil)
	trail := core.NewAuditTrail(512, nil)
	mw.SetAudit(trail)
	reg := mw.Telemetry()

	var canary *guard.Canary
	var wd *guard.Watchdog
	var guards []*guard.OpGuard
	if guarded {
		canary = guard.NewCanary(guard.Config{Fraction: 0.5, Window: rolloutWindow})
		canary.SetTelemetry(reg)
		canary.SetAudit(trail)
		canary.SetSampler(mon.slo)
		canary.SetProvider(mw.Provider())
		wd = guard.NewWatchdog(guard.WatchdogConfig{Fetch: rolloutFetchDeadline})
		wd.SetTelemetry(reg)
		wd.SetAudit(trail)
		mw.SetWatchdog(wd)
	}

	for _, q := range queries {
		var pol core.Policy
		var g *guard.OpGuard
		tr := core.NewNiceTranslator(osa)
		if guarded {
			g = guard.NewOpGuard(osa, guard.Invariants{
				StarvationCycles:   rolloutStarveCycles,
				StarvationMinQueue: rolloutStarveMinQueue,
			})
			g.SetTelemetry(reg, "qs@"+q)
			g.SetAudit(trail)
			guards = append(guards, g)
			tr = core.NewNiceTranslator(g)
			pol = canary.Slot(namedQSPolicy{name: "qs@" + q})
		} else {
			// The unguarded stack swaps every binding to the candidate at
			// the same instant, with nothing to veto or withdraw it.
			sw, err := core.NewSwitchedPolicy(func(view *core.View) int {
				if view.Now >= switchAt {
					return 1
				}
				return 0
			}, namedQSPolicy{name: "qs@" + q}, inverseCostPolicy{})
			if err != nil {
				return row, err
			}
			pol = sw
		}
		b := core.Binding{
			Policy: pol, Translator: tr,
			Drivers: []core.Driver{fdrv}, Queries: []string{q},
			Period: time.Second,
		}
		if g != nil {
			b.Guard = g
		}
		if err := mw.Bind(b); err != nil {
			return row, fmt.Errorf("bind %s: %w", q, err)
		}
	}
	if guarded {
		canary.SetViolationSource(func() int64 {
			var total int64
			for _, g := range guards {
				total += g.Violations()
			}
			return total
		})
	}

	runner, err := simctl.StartMiddleware(k, mw)
	if err != nil {
		return row, err
	}
	if guarded {
		runner.PostStep = func(now time.Duration) {
			wd.CycleDone(now)
			canary.Tick(now)
		}
	}

	// The monitor samples SLO once per simulated second; at the switch
	// instant the guarded stack proposes the adversarial candidate.
	var events []simctl.ChaosEvent
	for at := time.Second; at <= end; at += time.Second {
		events = append(events, simctl.ChaosEvent{
			At: at, Name: "slo-sample",
			Do: func() error { mon.sample(); return nil },
		})
	}
	if guarded {
		events = append(events, simctl.ChaosEvent{
			At: switchAt, Name: "propose",
			Do: func() error {
				return canary.Propose(switchAt, "inverse-cost", inverseCostPolicy{},
					[]byte(`{"policy":"inverse-cost"}`))
			},
		})
	}
	agent, err := simctl.StartChaosAgent(k, events)
	if err != nil {
		return row, err
	}

	k.RunUntil(end)
	if len(agent.Errs) > 0 {
		// A failed proposal (or monitor sample) invalidates the whole
		// comparison; fail loudly rather than report a vacuous verdict.
		return row, fmt.Errorf("chaos agent: %v", agent.Errs[0])
	}

	// Before/after SLO: the mean of the 3 samples leading into the switch
	// vs the 3 samples at the end of the run.
	beforeIdx := int(switchAt / time.Second)
	worstLat, worstTput := 0.0, 0.0
	nQ := 0
	for _, q := range queries {
		lat, tput := mon.latHist[q], mon.tputHist[q]
		if beforeIdx > len(lat) {
			beforeIdx = len(lat)
		}
		latBefore := meanTail(lat[:beforeIdx], 3)
		latAfter := meanTail(lat, 3)
		tputBefore := meanTail(tput[:beforeIdx], 3)
		tputAfter := meanTail(tput, 3)
		row.P95BeforeMs += latBefore * 1000
		row.P95AfterMs += latAfter * 1000
		nQ++
		if latBefore > 0 && latAfter/latBefore > worstLat {
			worstLat = latAfter / latBefore
		}
		if tputBefore > 0 {
			f := tputAfter / tputBefore
			if worstTput == 0 || f < worstTput {
				worstTput = f
			}
		}
	}
	if nQ > 0 {
		row.P95BeforeMs /= float64(nQ)
		row.P95AfterMs /= float64(nQ)
	}
	row.DegradationFactor = worstLat
	row.ThroughputFactor = worstTput
	row.StepErrors = runner.Errs

	if guarded {
		st := canary.Status()
		row.RolledBack = st.LastDecision == guard.DecisionRolledBack
		if row.RolledBack {
			row.RollbackCycle = st.Cycles
		}
		for _, g := range guards {
			row.GuardViolations += g.Violations()
		}
		row.WatchdogOverruns = wd.Overruns()
		row.WatchdogDegraded = wd.Degraded()
	}
	return row, nil
}

// rolloutExp runs both variants and emits BENCH_rollout.json when an
// artifact directory is configured.
func rolloutExp(w io.Writer, sc Scale) error {
	report := RolloutReport{
		Experiment: "rollout", Window: rolloutWindow,
		SwitchAt: sc.Warmup, End: sc.Warmup + sc.Measure,
	}
	for _, guarded := range []bool{true, false} {
		if sc.Progress != nil {
			sc.Progress(fmt.Sprintf("rollout: guarded=%v", guarded))
		}
		row, err := runRolloutVariant(guarded, sc)
		if err != nil {
			return err
		}
		report.Rows = append(report.Rows, row)
	}
	for _, r := range report.Rows {
		switch r.Variant {
		case "guarded":
			report.GuardedContained = r.RolledBack && r.RollbackCycle >= 0 && r.RollbackCycle <= r.KBound
		case "unguarded":
			report.UnguardedDiverged = r.DegradationFactor > rolloutDivergeFactor ||
				(r.ThroughputFactor > 0 && r.ThroughputFactor < 0.9)
		}
	}

	fmt.Fprintln(w, "# Rollout: adversarial policy vs guarded and unguarded stacks")
	fmt.Fprintf(w, "two ETL queries + co-located batch hogs on Storm (Odroid); inverse-cost proposed at %v; canary window %d cycles;\n",
		sc.Warmup, rolloutWindow)
	fmt.Fprintf(w, "starvation detector at %d cycles; fetch deadline %v with %v injected slowness\n",
		rolloutStarveCycles, rolloutFetchDeadline, rolloutSlowLatency)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %10s %9s %11s %9s %11s %11s %9s\n",
		"variant", "rolledback", "at-cycle", "violations", "overruns", "p95-factor", "tput-factor", "p95-after")
	for _, r := range report.Rows {
		fmt.Fprintf(w, "%-10s %10v %9d %11d %9d %10.2fx %10.2fx %7.1fms\n",
			r.Variant, r.RolledBack, r.RollbackCycle, r.GuardViolations,
			r.WatchdogOverruns, r.DegradationFactor, r.ThroughputFactor, r.P95AfterMs)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "guarded contained within K=%d cycles: %v; unguarded diverged: %v\n",
		report.Window, report.GuardedContained, report.UnguardedDiverged)
	fmt.Fprintln(w, "the guard's starvation detector feeds the canary verdict, so the bad policy is")
	fmt.Fprintln(w, "withdrawn before the window closes; the unguarded stack keeps starving its bottleneck.")

	if sc.ArtifactDir != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(sc.ArtifactDir, "BENCH_rollout.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "artifacts: %s\n", path)
	}
	return nil
}
