package faults

import (
	"math/rand"
	"time"

	"lachesis/internal/metrics"
)

// StorePlan configures a fault-injecting metrics-store read wrapper.
type StorePlan struct {
	// Seed drives all probabilistic faults.
	Seed int64
	// DropRate is the probability in [0,1] that any one Latest lookup
	// reports the series as missing (a lost scrape).
	DropRate float64
	// Outages are windows during which every lookup reports missing (the
	// store itself is down). Windows are checked against Clock.
	Outages Windows
	// Clock supplies the virtual time for outage windows (nil disables
	// windows).
	Clock func() time.Duration
}

// Store wraps the read path of a metrics store (driver.Source) with the
// faults of a StorePlan: drivers reading through it see missing samples,
// which surfaces to the middleware as entities without metric values.
type Store struct {
	inner interface {
		Latest(series string) (metrics.Point, bool)
	}
	plan StorePlan
	rng  *rand.Rand

	lookups int
	dropped int
}

// WrapStore wraps a store's read path with a fault plan.
func WrapStore(inner *metrics.Store, plan StorePlan) *Store {
	return &Store{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Latest implements driver.Source with the plan's faults applied.
func (s *Store) Latest(series string) (metrics.Point, bool) {
	s.lookups++
	if s.plan.Clock != nil && s.plan.Outages.Contains(s.plan.Clock()) {
		s.dropped++
		return metrics.Point{}, false
	}
	if s.plan.DropRate > 0 && s.rng.Float64() < s.plan.DropRate {
		s.dropped++
		return metrics.Point{}, false
	}
	return s.inner.Latest(series)
}

// Lookups returns how many Latest calls the wrapper has seen.
func (s *Store) Lookups() int { return s.lookups }

// Dropped returns how many lookups the wrapper has suppressed.
func (s *Store) Dropped() int { return s.dropped }
