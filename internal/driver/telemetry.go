package driver

import "lachesis/internal/telemetry"

// Telemetry metric names exported by SPE drivers.
const (
	// MetricDriverSamples counts metric samples delivered to the provider,
	// labeled by driver.
	MetricDriverSamples = "lachesis_driver_samples_total"
	// MetricDriverStaleDropped counts samples present in the store but
	// dropped for exceeding the driver's staleness bound — the signature
	// of a reporter that stopped publishing (e.g. a wedged SPE).
	MetricDriverStaleDropped = "lachesis_driver_stale_dropped_total"
)

// SetTelemetry attaches a metric registry: fetched and stale-dropped
// sample counts are recorded from then on. nil detaches (the default).
func (d *Driver) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		d.ctrSamples, d.ctrStale = nil, nil
		return
	}
	l := telemetry.L("driver", d.Name())
	d.ctrSamples = reg.Counter(MetricDriverSamples, l)
	d.ctrStale = reg.Counter(MetricDriverStaleDropped, l)
}
