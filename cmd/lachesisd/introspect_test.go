package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lachesis/internal/core"
	"lachesis/internal/fleet"
	"lachesis/internal/guard"
	"lachesis/internal/oslinux"
	"lachesis/internal/reconcile"
	"lachesis/internal/span"
	"lachesis/internal/telemetry"
)

// newTestDaemon assembles the same stack run() builds: static entities, a
// dry-run Linux control, an audited nice translator, and a static policy.
func newTestDaemon(t *testing.T, tr core.Translator) (*core.Middleware, *core.AuditTrail, core.OSInterface) {
	t.Helper()
	ctl, err := oslinux.New(oslinux.Config{
		Root:    "/cg/lachesis",
		System:  oslinux.DryRunSystem{W: io.Discard},
		Version: oslinux.V1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trail := core.NewAuditTrail(0, nil)
	osIface := core.AuditOS(ctl, trail)
	drv := &staticDriver{entities: []core.Entity{
		{Name: "q.count.0", Driver: "static", Query: "q", Thread: 101, Logical: []string{"count"}},
		{Name: "q.toll.0", Driver: "static", Query: "q", Thread: 102, Logical: []string{"toll"}},
	}}
	if tr == nil {
		tr = core.NewNiceTranslator(osIface)
	}
	policy := core.Transformed(&core.StaticLogicalPolicy{
		PolicyName: "configured",
		Priorities: core.LogicalSchedule{"count": 10, "toll": 1},
		Default:    0,
	}, core.MaxPriorityRule)
	mw := core.NewMiddleware(nil)
	mw.SetAudit(trail)
	if err := mw.Bind(core.Binding{
		Policy:     policy,
		Translator: tr,
		Drivers:    []core.Driver{drv},
		Period:     time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	return mw, trail, osIface
}

func TestIntrospectionMetricsEndpoint(t *testing.T) {
	mw, trail, _ := newTestDaemon(t, nil)
	if _, err := mw.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	srv := httptest.NewServer(newIntrospectionHandler(introspectionDeps{mu: &mu, mw: mw, trail: trail}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content-type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		core.MetricStepsTotal + " 1",
		"# TYPE " + core.MetricStepSeconds + " histogram",
		core.MetricPolicyRunsTotal,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

func TestIntrospectionHealthEndpoint(t *testing.T) {
	mw, trail, _ := newTestDaemon(t, nil)
	if _, err := mw.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	srv := httptest.NewServer(newIntrospectionHandler(introspectionDeps{mu: &mu, mw: mw, trail: trail}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var v healthView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Status != "ok" {
		t.Errorf("status %q", v.Status)
	}
	if len(v.Bindings) != 1 || v.Bindings[0].State != "healthy" {
		t.Errorf("bindings = %+v", v.Bindings)
	}
	if v.Bindings[0].Policy != "configured+transform" {
		t.Errorf("policy = %q", v.Bindings[0].Policy)
	}
	if len(v.Drivers) != 1 || v.Drivers[0].Driver != "static" {
		t.Errorf("drivers = %+v", v.Drivers)
	}
}

// failingTranslator makes every apply fail so the binding degrades.
type failingTranslator struct{}

func (failingTranslator) Name() string { return "broken" }
func (failingTranslator) Apply(core.Schedule, map[string]core.Entity) error {
	return errors.New("boom")
}

func TestIntrospectionHealthDegraded(t *testing.T) {
	mw, trail, _ := newTestDaemon(t, failingTranslator{})
	if _, err := mw.Step(time.Second); err == nil {
		t.Fatal("expected a step error from the failing translator")
	}
	var mu sync.Mutex
	srv := httptest.NewServer(newIntrospectionHandler(introspectionDeps{mu: &mu, mw: mw, trail: trail}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 for a degraded daemon", resp.StatusCode)
	}
	var v healthView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Status != "degraded" {
		t.Errorf("status %q", v.Status)
	}
	if len(v.Bindings) != 1 || v.Bindings[0].LastError == "" {
		t.Errorf("bindings = %+v", v.Bindings)
	}
}

func TestIntrospectionAuditEndpoint(t *testing.T) {
	mw, trail, _ := newTestDaemon(t, nil)
	if _, err := mw.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	srv := httptest.NewServer(newIntrospectionHandler(introspectionDeps{mu: &mu, mw: mw, trail: trail}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/audit?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var v struct {
		Total  int64             `json:"total"`
		Events []core.AuditEvent `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if len(v.Events) == 0 || len(v.Events) > 2 {
		t.Fatalf("got %d events, want 1..2", len(v.Events))
	}
	if v.Total < int64(len(v.Events)) {
		t.Errorf("total %d < returned %d", v.Total, len(v.Events))
	}
	// One step over two static entities renices both threads.
	found := false
	for _, e := range v.Events {
		if e.Kind == core.AuditKindNice && e.Thread != 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no nice event in tail: %+v", v.Events)
	}

	bad, err := http.Get(srv.URL + "/debug/audit?n=zero")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", bad.StatusCode)
	}
}

// TestIntrospectFlagStartsServer exercises the run() wiring end to end: a
// one-iteration dry run with -introspect on an ephemeral port must
// announce the listen address.
func TestIntrospectFlagStartsServer(t *testing.T) {
	cfg := writeConfig(t, validConfig)
	var out, errOut bytes.Buffer
	err := run([]string{"-config", cfg, "-iterations", "1", "-introspect", "127.0.0.1:0"}, &out, &errOut, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "introspection listening on http://127.0.0.1:") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

// TestAuditFlagWritesJSONL checks the -audit flag: every control decision
// of the run lands in the JSONL file.
func TestAuditFlagWritesJSONL(t *testing.T) {
	cfg := writeConfig(t, validConfig)
	path := t.TempDir() + "/audit.jsonl"
	var out, errOut bytes.Buffer
	if err := run([]string{"-config", cfg, "-iterations", "1", "-audit", path}, &out, &errOut, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	nices := 0
	for i, line := range lines {
		var e core.AuditEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if e.Kind == core.AuditKindNice {
			nices++
		}
	}
	if nices != 2 {
		t.Errorf("want 2 audited renices (both configured threads), got %d in %d lines", nices, len(lines))
	}
}

// TestIntrospectionHealthReconcileView: with the reconciler enabled,
// /health carries the drift/convergence summary the operators watch.
func TestIntrospectionHealthReconcileView(t *testing.T) {
	mw, trail, osIface := newTestDaemon(t, nil)
	state, err := reconcile.NewDesiredState(nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := reconcile.New(reconcile.Config{OS: osIface, State: state})
	if _, err := mw.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	srv := httptest.NewServer(newIntrospectionHandler(introspectionDeps{mu: &mu, mw: mw, trail: trail, rec: rec, state: state}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v healthView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Reconcile == nil {
		t.Fatal("reconcile view missing from /health")
	}
	if v.Reconcile.Passes != 0 || v.Reconcile.EverConverged {
		t.Errorf("reconcile view = %+v", v.Reconcile)
	}
	if v.Reconcile.LastConvergedAtNs != -1 {
		t.Errorf("last_converged_at_ns = %d, want -1 before first convergence", v.Reconcile.LastConvergedAtNs)
	}
}

// TestPolicyRolloutEndpoint: POST /policy stages a candidate through the
// canary controller, a second POST while the rollout is in flight is
// rejected, and /health carries the rollout and watchdog views.
func TestPolicyRolloutEndpoint(t *testing.T) {
	ctl, err := oslinux.New(oslinux.Config{
		Root:    "/cg/lachesis",
		System:  oslinux.DryRunSystem{W: io.Discard},
		Version: oslinux.V1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trail := core.NewAuditTrail(0, nil)
	drv := &staticDriver{entities: []core.Entity{
		{Name: "q.count.0", Driver: "static", Query: "q", Thread: 101, Logical: []string{"count"}},
		{Name: "q.toll.0", Driver: "static", Query: "q", Thread: 102, Logical: []string{"toll"}},
	}}
	mw := core.NewMiddleware(nil)
	mw.SetAudit(trail)
	canary := guard.NewCanary(guard.Config{Window: 2})
	canary.SetAudit(trail)
	canary.SetProvider(mw.Provider())
	wd := guard.NewWatchdog(guard.WatchdogConfig{Fetch: time.Second})
	slot := canary.Slot(buildPolicy(map[string]float64{"count": 10, "toll": 1}))
	if err := mw.Bind(core.Binding{
		Policy:     slot,
		Translator: core.NewNiceTranslator(core.AuditOS(ctl, trail)),
		Drivers:    []core.Driver{drv},
		Period:     time.Second,
	}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	propose := func(raw []byte, parent span.Context) error {
		var pc policyConfig
		if err := json.Unmarshal(raw, &pc); err != nil {
			return err
		}
		if len(pc.Priorities) == 0 {
			return errors.New("policy has no priorities")
		}
		return canary.ProposeCtx(0, "http-test", buildPolicy(pc.Priorities), raw, parent)
	}
	srv := httptest.NewServer(newIntrospectionHandler(introspectionDeps{
		mu: &mu, mw: mw, trail: trail, canary: canary, wd: wd, propose: propose,
	}))
	defer srv.Close()

	// Idle controller: GET /policy reports no active rollout.
	resp, err := http.Get(srv.URL + "/policy")
	if err != nil {
		t.Fatal(err)
	}
	var st guard.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Active {
		t.Errorf("rollout active before any proposal: %+v", st)
	}

	// Stage a candidate.
	resp, err = http.Post(srv.URL+"/policy", "application/json",
		strings.NewReader(`{"priorities": {"count": 1, "toll": 10}}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /policy status %d", resp.StatusCode)
	}
	if !st.Active || st.Candidate != "http-test" {
		t.Errorf("rollout not staged: %+v", st)
	}

	// A second proposal while one is in flight must be rejected.
	resp, err = http.Post(srv.URL+"/policy", "application/json",
		strings.NewReader(`{"priorities": {"count": 5}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("concurrent POST /policy status %d, want %d", resp.StatusCode, http.StatusConflict)
	}

	// /health carries rollout and watchdog views.
	resp, err = http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	var hv healthView
	if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hv.Rollout == nil || !hv.Rollout.Active {
		t.Errorf("health rollout view = %+v", hv.Rollout)
	}
	if hv.Watchdog == nil || hv.Watchdog.Degraded {
		t.Errorf("health watchdog view = %+v", hv.Watchdog)
	}

	// Two clean cycles promote the candidate (window 2, no SLO sampler).
	for i := 1; i <= 2; i++ {
		mu.Lock()
		if _, err := mw.Step(time.Duration(i) * time.Second); err != nil {
			t.Fatal(err)
		}
		canary.Tick(time.Duration(i) * time.Second)
		mu.Unlock()
	}
	resp, err = http.Get(srv.URL + "/policy")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Active || st.LastDecision != guard.DecisionPromoted || st.Promotions != 1 {
		t.Errorf("rollout not promoted: %+v", st)
	}
}

// TestPprofGatedByFlag: the profiler endpoints exist only when -pprof is
// given — an introspection server must never expose them by accident.
func TestPprofGatedByFlag(t *testing.T) {
	mw, trail, _ := newTestDaemon(t, nil)
	var mu sync.Mutex

	off := httptest.NewServer(newIntrospectionHandler(introspectionDeps{mu: &mu, mw: mw, trail: trail}))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(newIntrospectionHandler(introspectionDeps{mu: &mu, mw: mw, trail: trail, pprofEnabled: true}))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index does not list profiles:\n%s", body)
	}
}

// TestDebugTraceEndpoint: /debug/trace serves the recorder's recent
// spans, filters by ?trace=, bounds the tail with ?n=, and 404s when no
// recorder is wired.
func TestDebugTraceEndpoint(t *testing.T) {
	mw, trail, _ := newTestDaemon(t, nil)
	spans := span.New(span.Config{Process: "lachesisd", Seed: 7})
	mw.SetSpans(spans)
	for i := 1; i <= 3; i++ {
		if _, err := mw.Step(time.Duration(i) * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	srv := httptest.NewServer(newIntrospectionHandler(introspectionDeps{mu: &mu, mw: mw, trail: trail, spans: spans}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	var v traceView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.Total < 3 || len(v.Spans) == 0 {
		t.Fatalf("trace view = total %d, %d spans, want >= 3 cycles", v.Total, len(v.Spans))
	}
	if v.LastTrace == "" {
		t.Fatal("no last_trace in view")
	}

	// Filter down to the most recent cycle's trace.
	resp, err = http.Get(srv.URL + "/debug/trace?trace=" + v.LastTrace)
	if err != nil {
		t.Fatal(err)
	}
	var one traceView
	if err := json.NewDecoder(resp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if one.Trace != v.LastTrace || len(one.Spans) == 0 {
		t.Fatalf("filtered view = %+v", one)
	}
	for _, sp := range one.Spans {
		if sp.Trace != v.LastTrace {
			t.Errorf("span %s from trace %s leaked into the filter", sp.ID, sp.Trace)
		}
	}

	// ?n= bounds the unfiltered tail.
	resp, err = http.Get(srv.URL + "/debug/trace?n=1")
	if err != nil {
		t.Fatal(err)
	}
	var tail traceView
	if err := json.NewDecoder(resp.Body).Decode(&tail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tail.Spans) != 1 {
		t.Errorf("n=1 returned %d spans", len(tail.Spans))
	}

	// Without a recorder the endpoint does not exist.
	bare := httptest.NewServer(newIntrospectionHandler(introspectionDeps{mu: &mu, mw: mw, trail: trail}))
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("no recorder: status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsBuildInfoAndUptime: /metrics carries the build_info gauge
// and a scrape-time-refreshed uptime when run() registers them.
func TestMetricsBuildInfoAndUptime(t *testing.T) {
	mw, trail, _ := newTestDaemon(t, nil)
	telemetry.RegisterBuildInfo(mw.Telemetry(), "lachesisd")
	var mu sync.Mutex
	srv := httptest.NewServer(newIntrospectionHandler(introspectionDeps{
		mu: &mu, mw: mw, trail: trail, start: time.Now().Add(-3 * time.Second),
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	s := string(body)
	if !strings.Contains(s, telemetry.MetricBuildInfo) || !strings.Contains(s, `component="lachesisd"`) {
		t.Errorf("metrics missing build info:\n%s", s)
	}
	if !strings.Contains(s, `go_version="go`) {
		t.Errorf("build info missing go_version label:\n%s", s)
	}
	if !strings.Contains(s, telemetry.MetricUptimeSeconds) {
		t.Fatalf("metrics missing uptime:\n%s", s)
	}
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, telemetry.MetricUptimeSeconds+" ") {
			v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil || v < 3 {
				t.Errorf("uptime %q, want >= 3s", line)
			}
		}
	}
}

func TestPolicyEndpointFencesStaleCoordinatorEpochs(t *testing.T) {
	mw, trail, _ := newTestDaemon(t, nil)
	gate, err := fleet.NewEpochGate("n1", nil)
	if err != nil {
		t.Fatal(err)
	}
	gate.Observe(5) // this agent has already seen epoch 5

	var mu sync.Mutex
	proposals := 0
	canary := guard.NewCanary(guard.Config{Window: 2})
	srv := httptest.NewServer(newIntrospectionHandler(introspectionDeps{
		mu: &mu, mw: mw, trail: trail, canary: canary,
		propose: func([]byte, span.Context) error { proposals++; return nil },
		fence:   gate.Admit,
	}))
	defer srv.Close()

	post := func(epochHeader string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/policy",
			strings.NewReader(`{"priorities":{"count":5}}`))
		if err != nil {
			t.Fatal(err)
		}
		if epochHeader != "" {
			req.Header.Set(fleet.EpochHeader, epochHeader)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// A deposed coordinator's stale epoch is fenced before the payload
	// is ever staged.
	if code := post("4"); code != http.StatusForbidden {
		t.Fatalf("stale epoch POST = %d, want 403", code)
	}
	if proposals != 0 {
		t.Fatalf("proposals = %d after fenced push, want 0", proposals)
	}
	if gate.Rejected() != 1 {
		t.Fatalf("gate rejected = %d, want 1", gate.Rejected())
	}

	// A malformed header is a client error, not a fence.
	if code := post("not-a-number"); code != http.StatusBadRequest {
		t.Fatalf("bad header POST = %d, want 400", code)
	}
	if proposals != 0 {
		t.Fatalf("proposals = %d after bad header, want 0", proposals)
	}

	// The current epoch and unfenced local pushes are admitted.
	if code := post("5"); code != http.StatusAccepted {
		t.Fatalf("current epoch POST = %d, want 202", code)
	}
	if code := post(""); code != http.StatusAccepted {
		t.Fatalf("unfenced POST = %d, want 202", code)
	}
	if proposals != 2 {
		t.Fatalf("proposals = %d, want 2", proposals)
	}

	// A newer epoch ratchets the gate: the old leader is now fenced.
	if code := post("9"); code != http.StatusAccepted {
		t.Fatalf("newer epoch POST = %d, want 202", code)
	}
	if gate.Epoch() != 9 {
		t.Fatalf("gate epoch = %d, want 9", gate.Epoch())
	}
	if code := post("5"); code != http.StatusForbidden {
		t.Fatalf("previously-valid epoch POST = %d, want 403 after ratchet", code)
	}
}
