package httpx

import (
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestNewServerSetsEveryBound(t *testing.T) {
	srv := NewServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 ||
		srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 || srv.MaxHeaderBytes <= 0 {
		t.Fatalf("unbounded server field: %+v", srv)
	}
	if srv.ReadHeaderTimeout > srv.ReadTimeout {
		t.Fatalf("header timeout %v exceeds full-read timeout %v",
			srv.ReadHeaderTimeout, srv.ReadTimeout)
	}
}

// TestSlowBodyCutOff is the attack the old ReadHeaderTimeout-only
// servers were open to: a client POSTs /policy, sends headers and a
// partial body, then stalls. The hardened server must cut the
// connection instead of pinning the handler goroutine forever.
func TestSlowBodyCutOff(t *testing.T) {
	handled := make(chan error, 1)
	srv := NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, err := io.ReadAll(r.Body)
		handled <- err
		w.WriteHeader(http.StatusOK)
	}))
	// Same construction path as the daemons; only the scale differs so
	// the test finishes in milliseconds instead of the production 15s.
	srv.ReadTimeout = 250 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = conn.Write([]byte("POST /policy HTTP/1.1\r\nHost: test\r\nContent-Length: 4096\r\n\r\npartial"))
	if err != nil {
		t.Fatal(err)
	}

	// Stall. The server's read deadline must fire: the handler's body
	// read errors and our connection dies, well before any slowloris
	// could hold the goroutine.
	select {
	case err := <-handled:
		if err == nil {
			t.Fatal("handler read the full body from a stalled client")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled POST /policy was not cut off")
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	for {
		if _, err := conn.Read(buf); err != nil {
			break // server closed (or reset) the connection — success
		}
	}
}
