package spe

import (
	"errors"
	"fmt"
	"time"
)

// EmitFunc delivers an output tuple from a ProcessFunc.
type EmitFunc func(Tuple)

// ProcessFunc optionally implements an operator's real logic. It receives
// an input tuple and emits any number of outputs. When nil, the operator is
// synthetic: it emits copies of its input according to Selectivity. CPU
// cost is charged from the operator's Cost either way.
type ProcessFunc func(in Tuple, emit EmitFunc)

// OpKind distinguishes the roles an operator can play in a query DAG.
type OpKind int

const (
	// KindTransform is a regular operator.
	KindTransform OpKind = iota + 1
	// KindIngress ingests tuples from the external data source.
	KindIngress
	// KindEgress delivers results and records latency.
	KindEgress
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case KindTransform:
		return "transform"
	case KindIngress:
		return "ingress"
	case KindEgress:
		return "egress"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// LogicalOp is one operator of a logical query DAG (§2 of the paper).
type LogicalOp struct {
	// Name uniquely identifies the operator within its query.
	Name string
	// Kind marks ingress/egress roles.
	Kind OpKind
	// Cost is the average CPU time to process one input tuple.
	Cost time.Duration
	// CostJitter, in [0, 1), spreads per-tuple cost uniformly within
	// Cost*(1±CostJitter).
	CostJitter float64
	// Selectivity is the average number of output tuples per input tuple
	// (ignored when Process is set and for egress operators).
	Selectivity float64
	// Process optionally implements real operator logic (nil = synthetic).
	Process ProcessFunc
	// NewProcess optionally builds a per-replica Process (used for stateful
	// operators so each fission replica owns its state). Takes the replica
	// index.
	NewProcess func(replica int) ProcessFunc
	// Parallelism is the fission degree (default 1).
	Parallelism int
	// KeyBy routes tuples to replicas by Key hash instead of round-robin.
	KeyBy bool
	// BlockProb is the chance that processing one tuple is followed by a
	// blocking operation (simulated I/O), as in §6.4 of the paper.
	BlockProb float64
	// BlockMax is the maximum duration of one blocking operation; actual
	// durations are uniform in (0, BlockMax].
	BlockMax time.Duration
}

// LogicalQuery is a DAG of logical operators connected by streams.
type LogicalQuery struct {
	Name   string
	ops    []*LogicalOp
	byName map[string]*LogicalOp
	edges  map[string][]string // upstream name -> downstream names
}

// NewQuery creates an empty logical query.
func NewQuery(name string) *LogicalQuery {
	return &LogicalQuery{
		Name:   name,
		byName: make(map[string]*LogicalOp),
		edges:  make(map[string][]string),
	}
}

// AddOp adds an operator to the query. Adding a duplicate or empty name is
// an error.
func (q *LogicalQuery) AddOp(op *LogicalOp) error {
	if op == nil || op.Name == "" {
		return errors.New("spe: operator must have a name")
	}
	if _, dup := q.byName[op.Name]; dup {
		return fmt.Errorf("spe: duplicate operator %q", op.Name)
	}
	if op.Parallelism <= 0 {
		op.Parallelism = 1
	}
	if op.Kind == 0 {
		op.Kind = KindTransform
	}
	q.ops = append(q.ops, op)
	q.byName[op.Name] = op
	return nil
}

// MustAddOp is AddOp for statically-known query definitions; it panics on
// error (program-construction bug).
func (q *LogicalQuery) MustAddOp(op *LogicalOp) *LogicalOp {
	if err := q.AddOp(op); err != nil {
		panic(err)
	}
	return op
}

// Connect adds a stream from operator `from` to operator `to`.
func (q *LogicalQuery) Connect(from, to string) error {
	if _, ok := q.byName[from]; !ok {
		return fmt.Errorf("spe: unknown operator %q", from)
	}
	if _, ok := q.byName[to]; !ok {
		return fmt.Errorf("spe: unknown operator %q", to)
	}
	for _, d := range q.edges[from] {
		if d == to {
			return fmt.Errorf("spe: duplicate edge %s->%s", from, to)
		}
	}
	q.edges[from] = append(q.edges[from], to)
	return nil
}

// MustConnect is Connect that panics on error.
func (q *LogicalQuery) MustConnect(from, to string) {
	if err := q.Connect(from, to); err != nil {
		panic(err)
	}
}

// Pipeline connects the named operators in a linear chain.
func (q *LogicalQuery) Pipeline(names ...string) error {
	for i := 0; i+1 < len(names); i++ {
		if err := q.Connect(names[i], names[i+1]); err != nil {
			return err
		}
	}
	return nil
}

// Ops returns the operators in insertion order.
func (q *LogicalQuery) Ops() []*LogicalOp {
	out := make([]*LogicalOp, len(q.ops))
	copy(out, q.ops)
	return out
}

// Op returns the operator with the given name, or nil.
func (q *LogicalQuery) Op(name string) *LogicalOp { return q.byName[name] }

// Downstream returns the downstream operator names of `from`.
func (q *LogicalQuery) Downstream(from string) []string {
	out := make([]string, len(q.edges[from]))
	copy(out, q.edges[from])
	return out
}

// Upstream returns the upstream operator names of `to`.
func (q *LogicalQuery) Upstream(to string) []string {
	var out []string
	for _, op := range q.ops {
		for _, d := range q.edges[op.Name] {
			if d == to {
				out = append(out, op.Name)
			}
		}
	}
	return out
}

// ExpectedEgressPerIngress returns the expected number of egress tuples
// produced per ingress tuple, from the configured selectivities (averaged
// over ingress operators). The harness uses it to convert measured egress
// rates back into ingress-equivalent throughput.
func (q *LogicalQuery) ExpectedEgressPerIngress() float64 {
	memo := make(map[string]float64, len(q.ops))
	var g func(name string, depth int) float64
	g = func(name string, depth int) float64 {
		if v, ok := memo[name]; ok {
			return v
		}
		op := q.byName[name]
		if op == nil || depth > len(q.ops)+1 {
			return 0
		}
		var v float64
		if op.Kind == KindEgress {
			v = 1
		} else {
			for _, d := range q.edges[name] {
				v += g(d, depth+1)
			}
			v *= op.Selectivity
		}
		memo[name] = v
		return v
	}
	var sum float64
	n := 0
	for _, op := range q.ops {
		if op.Kind == KindIngress {
			sum += g(op.Name, 0)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Validate checks that the query is a well-formed DAG with at least one
// ingress and one egress, no cycles, and kinds consistent with topology.
func (q *LogicalQuery) Validate() error {
	if len(q.ops) == 0 {
		return errors.New("spe: query has no operators")
	}
	var nIngress, nEgress int
	for _, op := range q.ops {
		switch op.Kind {
		case KindIngress:
			nIngress++
			if len(q.Upstream(op.Name)) != 0 {
				return fmt.Errorf("spe: ingress %q has upstream operators", op.Name)
			}
		case KindEgress:
			nEgress++
			if len(q.edges[op.Name]) != 0 {
				return fmt.Errorf("spe: egress %q has downstream operators", op.Name)
			}
		case KindTransform:
			if op.Cost < 0 {
				return fmt.Errorf("spe: operator %q has negative cost", op.Name)
			}
		}
	}
	if nIngress == 0 {
		return errors.New("spe: query has no ingress operator")
	}
	if nEgress == 0 {
		return errors.New("spe: query has no egress operator")
	}
	// Cycle check via Kahn's algorithm.
	indeg := make(map[string]int, len(q.ops))
	for _, op := range q.ops {
		indeg[op.Name] = 0
	}
	for _, ds := range q.edges {
		for _, d := range ds {
			indeg[d]++
		}
	}
	var ready []string
	for _, op := range q.ops {
		if indeg[op.Name] == 0 {
			ready = append(ready, op.Name)
		}
	}
	seen := 0
	for len(ready) > 0 {
		n := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		seen++
		for _, d := range q.edges[n] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if seen != len(q.ops) {
		return errors.New("spe: query DAG has a cycle")
	}
	return nil
}
