package hll

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrecisionValidation(t *testing.T) {
	for _, p := range []uint8{0, 3, 17, 255} {
		if _, err := New(p); err == nil {
			t.Errorf("precision %d should be rejected", p)
		}
	}
	s, err := New(14)
	if err != nil {
		t.Fatal(err)
	}
	if s.Precision() != 14 {
		t.Errorf("precision = %d", s.Precision())
	}
}

func TestEstimateAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 100000} {
		s, err := New(14)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			s.Add(rng.Uint64())
		}
		est := s.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		// 1.04/sqrt(16384) ~ 0.8%; allow 4 sigma.
		if relErr > 4*s.StdError() {
			t.Errorf("n=%d: estimate %.0f, rel err %.3f > %.3f", n, est, relErr, 4*s.StdError())
		}
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s, err := New(12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		s.Add(uint64(i % 50)) // only 50 distinct
	}
	est := s.Estimate()
	if est < 40 || est > 60 {
		t.Errorf("estimate = %.1f, want ~50", est)
	}
}

func TestMerge(t *testing.T) {
	a, _ := New(12)
	b, _ := New(12)
	for i := 0; i < 5000; i++ {
		a.Add(uint64(i))
		b.Add(uint64(i + 2500)) // half overlap
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	est := a.Estimate()
	if est < 6900 || est > 8100 {
		t.Errorf("union estimate = %.0f, want ~7500", est)
	}
	c, _ := New(10)
	if err := a.Merge(c); err == nil {
		t.Error("precision mismatch should fail")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge should fail")
	}
}

func TestReset(t *testing.T) {
	s, _ := New(10)
	s.Add(1)
	s.Reset()
	if est := s.Estimate(); est != 0 {
		t.Errorf("estimate after reset = %v", est)
	}
}

func TestQuickEstimateWithinBounds(t *testing.T) {
	// Property: for random distinct sets, the estimate stays within 5
	// standard errors.
	err := quick.Check(func(seed int64, size uint16) bool {
		n := int(size%5000) + 10
		s, err := New(12)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		seen := make(map[uint64]bool, n)
		for len(seen) < n {
			k := rng.Uint64()
			seen[k] = true
			s.Add(k)
		}
		relErr := math.Abs(s.Estimate()-float64(n)) / float64(n)
		return relErr < 5*s.StdError()+0.02
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
