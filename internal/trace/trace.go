// Package trace records and replays input traces as CSV files, making
// experiment inputs durable artifacts: the paper's data sources replay
// benchmark traces (Linear Road event files, VoipStream CDR logs, the
// EdgeWise sensor dataset), and this package provides the equivalent
// capture/replay loop for the simulated sources.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"lachesis/internal/spe"
)

// Record is one trace row: a production timestamp plus the tuple fields.
type Record struct {
	At    time.Duration
	Key   uint64
	Value float64
}

// Trace is an ordered sequence of records.
type Trace struct {
	records []Record
}

// ErrEmptyTrace reports a trace without records.
var ErrEmptyTrace = errors.New("trace: empty trace")

// New builds a trace from records, validating timestamp order.
func New(records []Record) (*Trace, error) {
	if len(records) == 0 {
		return nil, ErrEmptyTrace
	}
	for i := 1; i < len(records); i++ {
		if records[i].At < records[i-1].At {
			return nil, fmt.Errorf("trace: timestamps not ascending at row %d", i)
		}
	}
	tr := &Trace{records: make([]Record, len(records))}
	copy(tr.records, records)
	return tr, nil
}

// Capture samples n tuples from a source, recording their production
// times — how a live feed is turned into a replayable artifact.
func Capture(src spe.Source, n int) (*Trace, error) {
	if n <= 0 {
		return nil, errors.New("trace: capture needs n > 0")
	}
	records := make([]Record, n)
	for i := 0; i < n; i++ {
		tup := src.Make(int64(i))
		records[i] = Record{
			At:    src.ArrivalTime(int64(i)),
			Key:   tup.Key,
			Value: tup.Value,
		}
	}
	return New(records)
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.records) }

// Duration returns the time span of the trace.
func (t *Trace) Duration() time.Duration {
	return t.records[len(t.records)-1].At - t.records[0].At
}

// Records returns a copy of the trace rows.
func (t *Trace) Records() []Record {
	out := make([]Record, len(t.records))
	copy(out, t.records)
	return out
}

// Source builds a replaying spe.Source from the trace. speedup scales the
// replay rate; the trace loops when exhausted, like the paper's sources
// replaying finite inputs over long runs.
func (t *Trace) Source(speedup float64) (spe.Source, error) {
	base := t.records[0].At
	times := make([]time.Duration, len(t.records))
	tuples := make([]spe.Tuple, len(t.records))
	for i, r := range t.records {
		times[i] = r.At - base
		tuples[i] = spe.Tuple{Key: r.Key, Value: r.Value}
	}
	return spe.NewTraceSource(times, tuples, speedup)
}

// csvHeader is the first row of the on-disk format.
var csvHeader = []string{"at_us", "key", "value"}

// Write serializes the trace as CSV.
func (t *Trace) Write(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, 3)
	for _, r := range t.records {
		row[0] = strconv.FormatInt(r.At.Microseconds(), 10)
		row[1] = strconv.FormatUint(r.Key, 10)
		row[2] = strconv.FormatFloat(r.Value, 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Read parses a CSV trace.
func Read(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if header[0] != csvHeader[0] || header[1] != csvHeader[1] || header[2] != csvHeader[2] {
		return nil, fmt.Errorf("trace: unexpected header %v", header)
	}
	var records []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read line %d: %w", line, err)
		}
		atUs, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d at_us: %w", line, err)
		}
		key, err := strconv.ParseUint(row[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d key: %w", line, err)
		}
		val, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d value: %w", line, err)
		}
		records = append(records, Record{
			At:    time.Duration(atUs) * time.Microsecond,
			Key:   key,
			Value: val,
		})
	}
	return New(records)
}
