package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"lachesis/internal/plot"
	"lachesis/internal/stats"
)

// Point aggregates repetitions of one (setup, rate).
type Point struct {
	Rate float64
	Reps []Result

	Throughput stats.Summary
	ProcMs     stats.Summary
	E2EMs      stats.Summary
	QSGoal     stats.Summary
	FCFSGoal   stats.Summary
	CPUUtil    float64
	MWCPUFrac  float64
}

// Series is one setup swept over rates.
type Series struct {
	Setup  Setup
	Points []Point
}

// Sweep runs every setup at every rate for reps repetitions.
func Sweep(setups []Setup, rates []float64, reps int, progress func(string)) ([]Series, error) {
	if reps < 1 {
		reps = 1
	}
	out := make([]Series, 0, len(setups))
	for _, s := range setups {
		series := Series{Setup: s}
		for _, rate := range rates {
			if progress != nil {
				progress(fmt.Sprintf("%s @ %.0f t/s", s.Name, rate))
			}
			p := Point{Rate: rate}
			for rep := 0; rep < reps; rep++ {
				r, err := Run(s, rate, rep)
				if err != nil {
					return nil, fmt.Errorf("run %s@%.0f rep %d: %w", s.Name, rate, rep, err)
				}
				p.Reps = append(p.Reps, r)
			}
			aggregate(&p)
			series.Points = append(series.Points, p)
		}
		out = append(out, series)
	}
	return out, nil
}

func aggregate(p *Point) {
	var tput, proc, e2e, qs, fcfs, util, mw []float64
	for _, r := range p.Reps {
		tput = append(tput, r.Throughput)
		proc = append(proc, r.MeanProc.Seconds()*1e3)
		e2e = append(e2e, r.MeanE2E.Seconds()*1e3)
		qs = append(qs, r.QSGoal)
		fcfs = append(fcfs, r.FCFSGoal*1e3)
		util = append(util, r.CPUUtil)
		mw = append(mw, r.MWCPUFrac)
	}
	p.Throughput, _ = stats.Summarize(tput)
	p.ProcMs, _ = stats.Summarize(proc)
	p.E2EMs, _ = stats.Summarize(e2e)
	p.QSGoal, _ = stats.Summarize(qs)
	p.FCFSGoal, _ = stats.Summarize(fcfs)
	p.CPUUtil = stats.Mean(util)
	p.MWCPUFrac = stats.Mean(mw)
}

// PrintPerformance prints the standard four-panel figure data (throughput,
// processing latency, end-to-end latency, QS goal) as one table, matching
// the panels of Figs. 5, 7, 9-12, 14, 16, 17.
func PrintPerformance(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-10s %-22s %10s %8s %12s %12s %10s %6s\n",
		"rate", "scheduler", "tput(t/s)", "ci95", "lat(ms)", "e2e(ms)", "qs-goal", "cpu")
	rates := ratesOf(series)
	for _, rate := range rates {
		for _, s := range series {
			p, ok := pointAt(s, rate)
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%-10.0f %-22s %10.1f %8.1f %12.2f %12.2f %10.2f %6.2f\n",
				rate, s.Setup.Name,
				p.Throughput.Mean, p.Throughput.CI95,
				p.ProcMs.Mean, p.E2EMs.Mean, p.QSGoal.Mean, p.CPUUtil)
		}
	}
	fmt.Fprintln(w)
	printCharts(w, series)
}

// printCharts renders the two headline panels (throughput; processing
// latency on a log axis) as ASCII charts, making saturation points and
// crossovers visible directly in the terminal.
func printCharts(w io.Writer, series []Series) {
	if len(series) == 0 || len(series[0].Points) < 2 {
		return // a single rate has no curve to draw
	}
	var tput, lat []plot.Series
	for _, s := range series {
		var xs, ys, ls []float64
		for _, p := range s.Points {
			xs = append(xs, p.Rate)
			ys = append(ys, p.Throughput.Mean)
			ls = append(ls, p.ProcMs.Mean)
		}
		tput = append(tput, plot.Series{Name: s.Setup.Name, X: xs, Y: ys})
		lat = append(lat, plot.Series{Name: s.Setup.Name, X: xs, Y: ls})
	}
	if err := plot.Render(w, plot.Config{
		Title: "throughput vs input rate", Width: 64, Height: 12,
		YLabel: "t/s", XLabel: "rate (t/s)",
	}, tput...); err == nil {
		fmt.Fprintln(w)
	}
	if err := plot.Render(w, plot.Config{
		Title: "processing latency vs input rate", Width: 64, Height: 12,
		YLabel: "ms", XLabel: "rate (t/s)", LogY: true,
	}, lat...); err == nil {
		fmt.Fprintln(w)
	}
}

// PrintLatencyDistributions prints letter-value (boxen) summaries of the
// processing-latency distributions, the data behind Fig. 13, plus the p99
// and p99.9 the paper quotes.
func PrintLatencyDistributions(w io.Writer, title string, series []Series, rate float64) {
	fmt.Fprintf(w, "# %s (rate %.0f t/s)\n", title, rate)
	fmt.Fprintf(w, "%-22s %10s %10s %10s %10s %10s %10s\n",
		"scheduler", "p50(ms)", "p75(ms)", "p99(ms)", "p99.9(ms)", "max(ms)", "samples")
	for _, s := range series {
		p, ok := pointAt(s, rate)
		if !ok {
			continue
		}
		var all []float64
		for _, r := range p.Reps {
			all = append(all, r.ProcSamples...)
		}
		if len(all) == 0 {
			fmt.Fprintf(w, "%-22s %10s\n", s.Setup.Name, "(no samples)")
			continue
		}
		q := func(v float64) float64 {
			x, err := stats.Quantile(all, v)
			if err != nil {
				return 0
			}
			return x * 1e3
		}
		fmt.Fprintf(w, "%-22s %10.2f %10.2f %10.2f %10.2f %10.2f %10d\n",
			s.Setup.Name, q(0.5), q(0.75), q(0.99), q(0.999), q(1), len(all))
	}
	// Letter values per scheduler.
	for _, s := range series {
		p, ok := pointAt(s, rate)
		if !ok {
			continue
		}
		var all []float64
		for _, r := range p.Reps {
			all = append(all, r.ProcSamples...)
		}
		lvs, err := stats.LetterValues(all, 8)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "letter-values %s:", s.Setup.Name)
		for _, lv := range lvs {
			fmt.Fprintf(w, " %s[%.2f,%.2f]ms", lv.Label, lv.Lower*1e3, lv.Upper*1e3)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// PrintQueueDistributions prints per-rate letter-value summaries of
// operator queue sizes pooled over operators and time — the data behind
// Figs. 6 and 8 — plus the largest single-operator mean (the bottleneck
// "diamond" of Fig. 8).
func PrintQueueDistributions(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-10s %-22s %10s %10s %10s %10s %14s\n",
		"rate", "scheduler", "p50", "p75", "p99", "max", "worst-op-mean")
	for _, rate := range ratesOf(series) {
		for _, s := range series {
			p, ok := pointAt(s, rate)
			if !ok {
				continue
			}
			var pooled []float64
			worst := 0.0
			for _, r := range p.Reps {
				for _, qs := range r.QueueSamples {
					pooled = append(pooled, qs...)
					if m := stats.Mean(qs); m > worst {
						worst = m
					}
				}
			}
			if len(pooled) == 0 {
				continue
			}
			q := func(v float64) float64 {
				x, err := stats.Quantile(pooled, v)
				if err != nil {
					return 0
				}
				return x
			}
			fmt.Fprintf(w, "%-10.0f %-22s %10.1f %10.1f %10.1f %10.1f %14.1f\n",
				rate, s.Setup.Name, q(0.5), q(0.75), q(0.99), q(1), worst)
		}
	}
	fmt.Fprintln(w)
}

// PrintPerQuery prints per-query throughput and latency (Fig. 18).
func PrintPerQuery(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-10s %-22s %-10s %-10s %12s %12s %12s\n",
		"rate", "scheduler", "engine", "query", "tput(t/s)", "lat(ms)", "e2e(ms)")
	for _, rate := range ratesOf(series) {
		for _, s := range series {
			p, ok := pointAt(s, rate)
			if !ok || len(p.Reps) == 0 {
				continue
			}
			// Average per-query results across reps.
			agg := make(map[string][]QueryResult)
			for _, r := range p.Reps {
				for q, qr := range r.PerQuery {
					agg[q] = append(agg[q], qr)
				}
			}
			names := make([]string, 0, len(agg))
			for q := range agg {
				names = append(names, q)
			}
			sort.Strings(names)
			for _, q := range names {
				var tput, proc, e2e float64
				for _, qr := range agg[q] {
					tput += qr.Throughput
					proc += qr.MeanProc.Seconds() * 1e3
					e2e += qr.MeanE2E.Seconds() * 1e3
				}
				n := float64(len(agg[q]))
				fmt.Fprintf(w, "%-10.2f %-22s %-10s %-10s %12.1f %12.2f %12.2f\n",
					rate, s.Setup.Name, agg[q][0].Engine, q, tput/n, proc/n, e2e/n)
			}
		}
	}
	fmt.Fprintln(w)
}

func ratesOf(series []Series) []float64 {
	seen := make(map[float64]bool)
	var out []float64
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.Rate] {
				seen[p.Rate] = true
				out = append(out, p.Rate)
			}
		}
	}
	sort.Float64s(out)
	return out
}

func pointAt(s Series, rate float64) (Point, bool) {
	for _, p := range s.Points {
		if p.Rate == rate {
			return p, true
		}
	}
	return Point{}, false
}

// Highlights computes the paper-style comparison highlights between a
// baseline series and a Lachesis series: max throughput gain and max
// latency factors across common rates (the "Highlights" column of
// Table 1).
type HighlightsResult struct {
	ThroughputGain float64 // best (lachesis/baseline - 1)
	LatencyFactor  float64 // best baseline/lachesis processing latency
	E2EFactor      float64 // best baseline/lachesis e2e latency
	AtRate         float64
}

// Highlights compares two series.
func Highlights(baseline, lachesis Series) HighlightsResult {
	var out HighlightsResult
	for _, rate := range ratesOf([]Series{baseline, lachesis}) {
		b, okB := pointAt(baseline, rate)
		l, okL := pointAt(lachesis, rate)
		if !okB || !okL {
			continue
		}
		if b.Throughput.Mean > 0 {
			if g := l.Throughput.Mean/b.Throughput.Mean - 1; g > out.ThroughputGain {
				out.ThroughputGain = g
			}
		}
		if l.ProcMs.Mean > 0 {
			if f := b.ProcMs.Mean / l.ProcMs.Mean; f > out.LatencyFactor {
				out.LatencyFactor = f
				out.AtRate = rate
			}
		}
		if l.E2EMs.Mean > 0 {
			if f := b.E2EMs.Mean / l.E2EMs.Mean; f > out.E2EFactor {
				out.E2EFactor = f
			}
		}
	}
	return out
}

// FormatDuration renders a duration rounded for tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", d.Seconds()*1e3)
	default:
		return fmt.Sprintf("%.0fus", d.Seconds()*1e6)
	}
}
