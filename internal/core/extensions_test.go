package core

import (
	"testing"
	"time"
)

// extFakeOS extends the fake OS with the optional capabilities.
type extFakeOS struct {
	*fakeOS
	quotas map[string]time.Duration
	rt     map[int]int // tid -> prio (0 = normal)
}

var (
	_ OSInterface     = (*extFakeOS)(nil)
	_ QuotaController = (*extFakeOS)(nil)
	_ RTController    = (*extFakeOS)(nil)
)

func newExtFakeOS() *extFakeOS {
	return &extFakeOS{
		fakeOS: newFakeOS(),
		quotas: make(map[string]time.Duration),
		rt:     make(map[int]int),
	}
}

func (f *extFakeOS) SetQuota(name string, quota, period time.Duration) error {
	f.quotas[name] = quota
	return nil
}
func (f *extFakeOS) SetRealtime(tid, prio int) error {
	f.rt[tid] = prio
	return nil
}
func (f *extFakeOS) SetNormal(tid int) error {
	f.rt[tid] = 0
	return nil
}

func TestQuotaTranslatorMapsPrioritiesToQuotas(t *testing.T) {
	os := newExtFakeOS()
	tr, err := NewQuotaTranslator(os, 4, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{
		Scale: ScaleLinear,
		Groups: map[string]Group{
			"hot-group":  {Priority: 10, Ops: []string{"hot"}},
			"cold-group": {Priority: 0, Ops: []string{"cold"}},
		},
	}
	if err := tr.Apply(sched, threadedEntities()); err != nil {
		t.Fatal(err)
	}
	// hi = 0.9 of 4 CPUs over a 100ms period = 360ms; lo = 0.1*4*100 = 40ms.
	if got := os.quotas["hot-group"]; got != 360*time.Millisecond {
		t.Errorf("hot quota = %v, want 360ms", got)
	}
	if got := os.quotas["cold-group"]; got != 40*time.Millisecond {
		t.Errorf("cold quota = %v, want 40ms", got)
	}
	if os.placed[11] != "hot-group" || os.placed[13] != "cold-group" {
		t.Errorf("placements = %v", os.placed)
	}
}

func TestQuotaTranslatorPerOpFallbackAndErrors(t *testing.T) {
	os := newExtFakeOS()
	tr, err := NewQuotaTranslator(os, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Apply(Schedule{Scale: ScaleLinear}, nil); err == nil {
		t.Error("empty schedule should fail")
	}
	sched := Schedule{Scale: ScaleLinear, Single: map[string]float64{"hot": 2, "cold": 1}}
	if err := tr.Apply(sched, threadedEntities()); err != nil {
		t.Fatal(err)
	}
	if len(os.quotas) != 2 {
		t.Errorf("quotas = %v", os.quotas)
	}
	// A plain fakeOS lacks the capability.
	if _, err := NewQuotaTranslator(newFakeOS(), 1, 0, 0); err == nil {
		t.Error("OS without QuotaController should be rejected")
	}
}

func TestRTTranslatorLiftsTopFraction(t *testing.T) {
	os := newExtFakeOS()
	tr, err := NewRTTranslator(os, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{
		Scale:  ScaleLinear,
		Single: map[string]float64{"hot": 9, "warm": 5, "cold": 1, "pooled": 7},
	}
	if err := tr.Apply(sched, threadedEntities()); err != nil {
		t.Fatal(err)
	}
	// 4 entities, top 50% = hot and pooled (7); pooled has no thread, so
	// effective RT set among threaded entities is hot (99).
	if os.rt[11] != 99 {
		t.Errorf("hot rt prio = %d, want 99", os.rt[11])
	}
	if os.rt[12] != 0 || os.rt[13] != 0 {
		t.Errorf("warm/cold should be normal: %v", os.rt)
	}
	if _, err := NewRTTranslator(newFakeOS(), 0.2); err == nil {
		t.Error("OS without RTController should be rejected")
	}
	if err := tr.Apply(Schedule{}, nil); err == nil {
		t.Error("empty schedule should fail")
	}
}

func TestSwitchedPolicy(t *testing.T) {
	// Below a queue threshold run FCFS (latency); above it run QS
	// (throughput) — the §4 runtime-switch scenario.
	cond := func(view *View) int {
		total := 0.0
		for _, v := range view.Metric(MetricQueueSize) {
			total += v
		}
		if total > 100 {
			return 1 // QS
		}
		return 0 // FCFS
	}
	sp, err := NewSwitchedPolicy(cond, NewFCFSPolicy(), NewQSPolicy())
	if err != nil {
		t.Fatal(err)
	}
	// Union of metric requirements.
	metricSet := map[string]bool{}
	for _, m := range sp.Metrics() {
		metricSet[m] = true
	}
	if !metricSet[MetricQueueSize] || !metricSet[MetricHeadWaitMs] {
		t.Errorf("metrics union = %v", sp.Metrics())
	}

	ents := linearEntities("a", "b")
	calm := viewWith(ents, map[string]EntityValues{
		MetricQueueSize:  {"a": 5, "b": 5},
		MetricHeadWaitMs: {"a": 100, "b": 1},
	})
	busy := viewWith(ents, map[string]EntityValues{
		MetricQueueSize:  {"a": 500, "b": 5},
		MetricHeadWaitMs: {"a": 1, "b": 100},
	})

	s1, err := sp.Schedule(calm)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Active() != 0 || s1.Single["a"] != 100 { // FCFS uses head wait
		t.Errorf("calm: active=%d schedule=%v", sp.Active(), s1.Single)
	}
	s2, err := sp.Schedule(busy)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Active() != 1 || s2.Single["a"] != 500 { // QS uses queue size
		t.Errorf("busy: active=%d schedule=%v", sp.Active(), s2.Single)
	}
	if sp.Switches() != 1 {
		t.Errorf("switches = %d, want 1", sp.Switches())
	}
	if _, err := NewSwitchedPolicy(nil, NewQSPolicy()); err == nil {
		t.Error("nil condition should fail")
	}
	if _, err := NewSwitchedPolicy(cond); err == nil {
		t.Error("no policies should fail")
	}
}
